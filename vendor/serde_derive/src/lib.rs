//! No-op derive macros for the offline serde stand-in.
//!
//! The stub `serde` crate gives [`Serialize`] a blanket implementation,
//! so the derives only need to (a) exist and (b) declare the `serde`
//! helper attribute so field annotations like `#[serde(skip, default)]`
//! parse. They expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
