//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded
//!   through SplitMix64 (`seed_from_u64`), matching rand's statistical
//!   quality though **not** its bit stream;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float
//!   ranges, [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! Everything is deterministic per seed; there is no OS entropy path.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a 64-bit word to a float in `[0, 1)` with 53 random bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (the stand-in for rand's
    /// `StdRng`; same statistical class, different bit stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            // A zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s[0] = 0x853c_49e6_748f_ea9b;
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Alias kept for API compatibility: a small fast generator.
    pub type SmallRng = StdRng;
}

pub mod distributions {
    //! Range-sampling machinery backing [`Rng::gen_range`](crate::Rng::gen_range).

    pub mod uniform {
        //! Uniform sampling over ranges.

        use crate::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A type samplable uniformly between two bounds.
        pub trait SampleUniform: PartialOrd + Copy {
            /// Uniform sample from `[lo, hi)` (`hi` included when
            /// `inclusive`).
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo_w = lo as i128;
                        let hi_w = hi as i128;
                        let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                        assert!(span > 0, "cannot sample from an empty range");
                        // Modulo draw; the bias is < 2⁻⁶⁴·span and
                        // irrelevant for simulation workloads.
                        let draw = (rng.next_u64() as u128 % span as u128) as i128;
                        (lo_w + draw) as $t
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        assert!(lo < hi || (_inclusive && lo == hi),
                            "cannot sample from an empty range");
                        let u = unit_f64(rng.next_u64()) as $t;
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }

        impl_sample_uniform_float!(f32, f64);

        /// A range usable with [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use crate::Rng;

    /// Shuffling and random picks over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&n));
            let m: u8 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&m));
        }
    }

    #[test]
    fn float_draws_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.05));
        assert!(draws.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..5000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 5000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x: f64 = rng.gen_range(-0.03..0.03);
            assert!((-0.03..0.03).contains(&x));
            let n: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }
}
