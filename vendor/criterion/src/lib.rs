//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the harness API the workspace's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`]) with a minimal measurement loop: each benchmark runs
//! a handful of timed iterations and prints the mean. There are no
//! statistics, warm-up phases, or reports — the point is that `cargo
//! bench` compiles and produces indicative numbers offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations measured per benchmark (beyond one untimed warm-up call).
const MEASURED_ITERS: u32 = 10;

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURED_ITERS;
    }
}

/// A parameterized benchmark identifier, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{param}", name.into()) }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the requested sample size (recorded, not used by the stub's
    /// fixed iteration loop).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the group sample size (recorded, not used).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let mean = if b.iters == 0 { Duration::ZERO } else { b.total / b.iters };
    println!("bench {name:<50} {:>12.3} µs/iter", mean.as_secs_f64() * 1e6);
}

/// Declares a bench group: both the plain and the `name/config/targets`
/// forms of criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| calls += 1));
        // One warm-up + MEASURED_ITERS timed calls.
        assert_eq!(calls, MEASURED_ITERS + 1);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| {
            b.iter(|| assert_eq!(n, 3));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
