//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` (the C-SERDE API guideline) but never performs actual
//! serialization — no format crate (serde_json, bincode, …) is a
//! dependency. This stub provides exactly enough surface to compile
//! those annotations offline:
//!
//! * [`Serialize`] is a marker trait with a blanket implementation;
//! * [`Deserialize`] is blanket-implemented to return an error (it is
//!   never invoked at runtime);
//! * [`Serializer`], [`Deserializer`], and [`de::Error`] exist so
//!   hand-written `#[serde(with = "...")]` shim modules typecheck;
//! * the derive macros (from the sibling `serde_derive` stub) expand to
//!   nothing and accept `#[serde(...)]` helper attributes.
//!
//! Swapping the real serde back in requires only restoring the
//! crates.io entries in the workspace manifest.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (blanket-implemented for everything).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// A data-format serializer (never instantiated by the stub).
pub trait Serializer: Sized {
    /// Output on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes the items of `iter` as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize;
}

/// A data-format deserializer (never instantiated by the stub).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

/// Deserializable types. Blanket-implemented to fail: the stub has no
/// data formats, so this can never be reached at runtime.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` (always an error under the stub).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de, T> Deserialize<'de> for T {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom(
            "the offline serde stand-in has no deserialization backend",
        ))
    }
}

pub mod ser {
    //! Serialization-side error trait.

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error trait.

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Annotated {
        #[serde(skip, default)]
        skipped: u32,
        #[serde(with = "shim")]
        shimmed: f64,
    }

    mod shim {
        use crate::{de::Error, Deserialize, Deserializer, Serializer};

        pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
            s.collect_seq(std::iter::once(*v))
        }

        pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
            let v = Vec::<f64>::deserialize(d)?;
            v.first().copied().ok_or_else(|| D::Error::custom("empty"))
        }
    }

    #[test]
    fn derives_compile_and_value_semantics_survive() {
        let a = Annotated { skipped: 1, shimmed: 2.0 };
        assert_eq!(a.clone(), a);
    }
}
