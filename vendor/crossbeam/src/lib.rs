//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The workspace uses two crossbeam facilities: scoped threads for
//! parallel experiment sweeps (std-native since Rust 1.63) and the
//! MPMC [`channel`]s the slot-pipeline runtime hands buffers over
//! (reimplemented on `Mutex` + `Condvar`). This stub maps
//! `crossbeam::thread::scope` onto
//! [`std::thread::scope`], preserving crossbeam's `Result` return (a
//! panicking child thread yields `Err(payload)` instead of unwinding
//! through the caller) and its closure shape (`scope.spawn(|scope| ..)`,
//! where the inner closure receives the scope again for nesting).
//!
//! One deliberate difference: the scope handle is passed **by value**
//! (it is `Copy`) rather than by reference. Call sites that ignore the
//! argument (`move |_| ...`) or nest spawns are source-compatible.

#![warn(missing_docs)]

pub mod channel;

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A handle for spawning threads that may borrow from the enclosing
    /// stack frame. `Copy`, so it can be moved into spawned closures for
    /// nested spawning.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a copy of the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(self)) }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    /// All spawned threads are joined before this returns. Returns
    /// `Err` with the panic payload if the closure or any unjoined
    /// spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::Mutex;

        #[test]
        fn threads_run_and_borrow_the_stack() {
            let out = Mutex::new(Vec::new());
            super::scope(|scope| {
                for i in 0..8 {
                    let out = &out;
                    scope.spawn(move |_| out.lock().unwrap().push(i * i));
                }
            })
            .expect("no thread panicked");
            let mut v = out.into_inner().unwrap();
            v.sort_unstable();
            assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        }

        #[test]
        fn nested_spawn_compiles_and_runs() {
            let hit = Mutex::new(false);
            super::scope(|scope| {
                let hit = &hit;
                scope.spawn(move |inner| {
                    inner.spawn(move |_| *hit.lock().unwrap() = true);
                });
            })
            .unwrap();
            assert!(*hit.lock().unwrap());
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn join_returns_thread_result() {
            let r = super::scope(|scope| {
                let h = scope.spawn(|_| 41 + 1);
                h.join().expect("child ok")
            })
            .unwrap();
            assert_eq!(r, 42);
        }
    }
}
