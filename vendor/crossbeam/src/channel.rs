//! Multi-producer multi-consumer channels, mirroring the
//! `crossbeam-channel` API surface the workspace uses.
//!
//! The stand-in is a `Mutex<VecDeque>` + two `Condvar`s. That is not
//! the lock-free segmented queue of the real crate, but the semantics
//! the callers rely on are preserved exactly:
//!
//! * **bounded capacity** — `send` on a full channel blocks until a
//!   receiver makes room (the backpressure the slot pipeline uses to
//!   stall gathering behind a slow solver);
//! * **disconnection** — when every `Sender` is dropped, `recv` drains
//!   the queue and then reports [`RecvError`]; when every `Receiver`
//!   is dropped, `send` reports [`SendError`] returning the rejected
//!   message;
//! * **FIFO per channel** — messages arrive in send order, which the
//!   runtime's determinism proof leans on for per-worker command
//!   ordering.
//!
//! Zero-capacity rendezvous channels are not implemented; `bounded(0)`
//! panics rather than silently buffering.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The sending half of a channel could not deliver: every receiver is
/// gone. The undelivered message is handed back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The receiving half found the channel empty **and** disconnected.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Channel currently empty; senders still connected.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

struct State<T> {
    queue: VecDeque<T>,
    /// `usize::MAX` encodes "unbounded".
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clonable for multi-producer use.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clonable for multi-consumer use.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `capacity` in-flight messages.
///
/// # Panics
///
/// Panics if `capacity` is zero (rendezvous channels are not part of
/// this stand-in).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "the crossbeam stub does not implement rendezvous channels");
    with_capacity(capacity)
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Delivers `message`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] returning the message if every receiver is gone.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(message));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(message);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel lock poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock poisoned").senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Takes the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is empty and every sender is
    /// dropped (queued messages are always drained first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock poisoned");
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        if let Some(message) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(message);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued (a point-in-time reading,
    /// used for queue-depth gauges).
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock poisoned").queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock poisoned").receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders so a blocked `send` can fail fast.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let unblocked = std::thread::scope(|s| {
            let h = s.spawn(move || {
                tx.send(2).unwrap(); // blocks until the recv below
                true
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap()
        });
        assert!(unblocked);
    }

    #[test]
    fn drop_of_all_senders_disconnects_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_of_all_receivers_fails_send_with_payload() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn unbounded_never_blocks() {
        let (tx, rx) = unbounded();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10_000);
        assert_eq!(rx.recv(), Ok(0));
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
