//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps [`std::sync::Mutex`] behind parking_lot's ergonomics: `lock()`
//! returns the guard directly (no `Result`), and poisoning from a
//! panicked holder is transparently cleared — matching parking_lot's
//! poison-free semantics. Only the `Mutex` surface the workspace uses
//! is provided.

#![warn(missing_docs)]

/// RAII guard releasing the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike std, never
    /// returns an error: poisoning is cleared, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
