//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the macro surface the workspace's property tests use —
//! [`proptest!`], [`prop_compose!`], [`prop_assert!`],
//! [`prop_assert_eq!`], [`crate::arbitrary::any`], range/tuple
//! strategies, and `prop::collection::vec` — on top of a deterministic
//! seeded generator. Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports its inputs verbatim;
//! * **derived seeding** — each test's RNG is seeded from a hash of the
//!   test name, so runs are bit-reproducible without a persistence
//!   file;
//! * strategies are plain closures over an RNG, not value trees.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's config: the number of cases per property.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Config {
        /// Random cases to execute per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// The RNG handed to strategies (re-exported so generated code can name
/// it).
pub type TestRng = StdRng;

/// Deterministic RNG for a named test: FNV-1a over the test path.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree: a strategy is anything
/// that can produce a value from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (retries; panics after 1000
    /// consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, whence }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// A strategy producing a fixed value (clones per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

mod ranges {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let mag = (u * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniform in `[lo, hi)`.
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    rng.gen_range(lo..hi)
                }
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod strategy {
    //! Re-exports under proptest's module layout.

    pub use super::{Just, Strategy};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::arbitrary::any;
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespace mirror: `prop::collection::vec`, `prop::num`, ….
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Error carried by `prop_assert!` failures inside a generated test
/// body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Asserts inside a `proptest!` body; failure aborts the case with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// `prop_assert!` for inequality with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice between strategies of one value type (boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
        > = vec![
            $({
                let s = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as _
            }),+
        ];
        $crate::FnStrategy::from_choices(choices)
    }};
}

/// A boxed generation closure, one arm of a [`prop_oneof!`].
pub type Choice<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A strategy backed by a closure (used by [`prop_compose!`] and
/// [`prop_oneof!`]).
pub struct FnStrategy<T> {
    f: Choice<T>,
}

impl<T: 'static> FnStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { f: Box::new(f) }
    }

    /// Uniform choice over boxed generation closures.
    pub fn from_choices(choices: Vec<Choice<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self::new(move |rng| {
            use rand::Rng;
            let i = rng.gen_range(0..choices.len());
            choices[i](rng)
        })
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Defines a named strategy function from named sub-strategies (the
/// proptest composition macro; no shrinking).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} falsified at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        concat!($(stringify!($arg), " "),+),
                    );
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_point()(x in 0.0f64..1.0, y in 0.0f64..1.0) -> (f64, f64) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 1usize..10) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn composed_strategies_work(p in arb_point(), flag in any::<bool>()) {
            prop_assert!(p.0 >= 0.0 && p.0 < 1.0, "x out of range: {}", p.0);
            prop_assert!(p.1 >= 0.0 && p.1 < 1.0);
            prop_assert!(flag || !flag);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..=100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b <= 100));
        }

        #[test]
        fn tuples_generate(t in (1u32..100, 0.0f64..1.0)) {
            prop_assert!(t.0 >= 1 && t.0 < 100);
            prop_assert_eq!(t.1.is_finite(), true);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
