//! # lpvs — low-power video streaming at the network edge
//!
//! Façade crate re-exporting the whole LPVS workspace. See the
//! individual crates for details:
//!
//! * [`survey`] — low-battery-anxiety survey synthesis and curve extraction
//! * [`display`] — LCD/OLED power models and energy-saving transforms
//! * [`media`] — video/chunk/content substrate and transform encoder
//! * [`trace`] — Twitch-like live-streaming workload traces
//! * [`solver`] — simplex + branch-and-bound ILP (replaces CPLEX/Gurobi)
//! * [`bayes`] — conjugate Bayesian estimation of power-reduction ratios
//! * [`edge`] — edge servers, virtual clusters, devices and batteries
//! * [`core`] — the LPVS scheduler (two-phase heuristic, paper §IV–V)
//! * [`runtime`] — staged slot pipeline (gather ∥ solve ∥ apply) with
//!   shard-local Bayes banks and graceful sequential fallback
//! * [`emulator`] — trace-driven emulation and experiment drivers
//! * [`obs`] — tracing spans, metrics registry, and telemetry sinks

#![warn(missing_docs)]

pub use lpvs_bayes as bayes;
pub use lpvs_core as core;
pub use lpvs_display as display;
pub use lpvs_edge as edge;
pub use lpvs_emulator as emulator;
pub use lpvs_media as media;
pub use lpvs_obs as obs;
pub use lpvs_runtime as runtime;
pub use lpvs_solver as solver;
pub use lpvs_survey as survey;
pub use lpvs_trace as trace;
