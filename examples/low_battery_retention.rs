//! Customer retention: how much longer do low-battery viewers keep
//! watching when their streams are transformed? (The paper's Fig. 9
//! and the headline "+39 % watching time" claim.)
//!
//! Run with: `cargo run --release --example low_battery_retention`

use lpvs::core::baseline::Policy;
use lpvs::emulator::engine::EmulatorConfig;
use lpvs::emulator::experiment::run_pair;

fn main() {
    let config = EmulatorConfig {
        devices: 60,
        slots: 48, // four emulated hours so most low-battery users finish
        seed: 99,
        server_streams: 100,
        lambda: 1.0,
        ..EmulatorConfig::default()
    };
    let (with, without) = run_pair(config, Policy::Lpvs);

    // The paper's Fig. 9 cohort: served by LPVS, starting at ≤ 40 %.
    let cohort: Vec<usize> = with
        .low_battery_devices(0.40)
        .into_iter()
        .filter(|&i| with.ever_selected[i])
        .collect();

    println!("{:>7} | {:>9} | {:>12} | {:>12} | {:>8}", "device", "start", "TPV w/o", "TPV w/", "extra");
    println!("{}", "-".repeat(62));
    let mut sum_with = 0.0;
    let mut sum_without = 0.0;
    for &i in &cohort {
        let w = with.watch_minutes[i];
        let wo = without.watch_minutes[i];
        sum_with += w;
        sum_without += wo;
        println!(
            "{:>7} | {:>8.0}% | {:>8.1} min | {:>8.1} min | {:>6.1}%",
            i,
            100.0 * with.initial_battery[i],
            wo,
            w,
            if wo > 0.0 { 100.0 * (w - wo) / wo } else { 0.0 }
        );
    }
    if cohort.is_empty() {
        println!("(no low-battery users in this draw — try another seed)");
        return;
    }
    let mean_with = sum_with / cohort.len() as f64;
    let mean_without = sum_without / cohort.len() as f64;
    println!("{}", "-".repeat(62));
    println!(
        "mean time-per-viewer: {mean_without:.1} → {mean_with:.1} min  \
         (+{:.1} min, +{:.1}%)",
        mean_with - mean_without,
        100.0 * (mean_with - mean_without) / mean_without
    );
    println!("paper: 42.3 → 58.7 min (+16.4 min, +38.8%)");
}
