//! Quickstart: schedule one slot of low-power video streaming.
//!
//! Builds a small virtual cluster, extracts the anxiety curve from a
//! synthetic survey cohort, runs the LPVS scheduler once, and prints
//! who gets their stream transformed and why.
//!
//! Run with: `cargo run --example quickstart`

use lpvs::core::baseline::{Policy, SelectionPolicy};
use lpvs::core::objective::objective_value;
use lpvs::core::problem::{DeviceRequest, SlotProblem};
use lpvs::core::scheduler::LpvsScheduler;
use lpvs::survey::extraction::extract_curve;
use lpvs::survey::generator::SurveyGenerator;

fn main() {
    // 1. The anxiety model: survey 2,032 users, extract Fig. 2's curve.
    let cohort = SurveyGenerator::paper_cohort(2024).generate();
    let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
    println!("anxiety at 10% battery: {:.2}", curve.phi(0.10));
    println!("anxiety at 80% battery: {:.2}", curve.phi(0.80));
    println!("sharpest anxiety rise at {}% battery\n", curve.sharpest_rise());

    // 2. A slot problem: six devices, edge capacity for three 720p
    //    transforms. Battery capacity 15.4 Wh = 55,440 J.
    let cap = 55_440.0;
    let mut problem = SlotProblem::new(3.0, 1.0, 1.0, curve);
    let fleet = [
        ("dying gamer", 0.07, 1.3, 0.42),
        ("commuter", 0.18, 1.1, 0.35),
        ("office desk", 0.95, 1.5, 0.45),
        ("couch, evening", 0.55, 1.2, 0.30),
        ("low and bright", 0.12, 1.6, 0.40),
        ("fresh charge", 0.88, 0.9, 0.25),
    ];
    for (_, battery, watts, gamma) in fleet {
        problem.push(DeviceRequest::uniform(
            watts,
            10.0,
            30,
            battery * cap,
            cap,
            gamma,
            1.0,
            0.11,
        ));
    }

    // 3. Schedule the slot.
    let schedule = LpvsScheduler::paper_default()
        .schedule(&problem)
        .expect("scheduling a feasible slot");
    println!("{:>16} | {:>8} | {:>6} | {:>6} | transform?", "device", "battery", "watts", "gamma");
    println!("{}", "-".repeat(58));
    for ((name, battery, watts, gamma), &chosen) in fleet.iter().zip(&schedule.selected) {
        println!(
            "{:>16} | {:>7.0}% | {:>6.2} | {:>6.2} | {}",
            name,
            battery * 100.0,
            watts,
            gamma,
            if chosen { "yes" } else { "no" }
        );
    }
    println!(
        "\nenergy saved this slot: {:.0} J, objective {:.1}",
        schedule.stats.energy_saved_j, schedule.stats.objective
    );

    // 4. Compare against a random selection, the §III-C argument.
    let random = Policy::Random { seed: 1 }.select(&problem);
    println!(
        "LPVS objective {:.1} vs random selection {:.1}",
        schedule.stats.objective,
        objective_value(&problem, &random)
    );
}
