//! ABR meets display power: one viewer rides a fluctuating cellular
//! link; the ABR controller moves them up and down the bitrate ladder,
//! and each rung change moves the transform's compute cost and the
//! display's power draw — the inputs LPVS schedules on.
//!
//! Run with: `cargo run --example abr_session`

use lpvs::display::quality::QualityBudget;
use lpvs::display::spec::DisplaySpec;
use lpvs::media::abr::AbrController;
use lpvs::media::content::{ContentModel, Genre};
use lpvs::media::cost::transform_compute_units;
use lpvs::media::encoder::TransformEncoder;
use lpvs::media::ladder::BitrateLadder;

fn main() {
    // A 10-minute link trace: good start, mid-session congestion,
    // recovery (kbit/s per 30-second epoch).
    let link_kbps = [
        9_000.0, 9_500.0, 8_000.0, 7_500.0, 2_500.0, 1_800.0, 1_500.0, 2_000.0, 2_200.0,
        5_000.0, 7_000.0, 8_500.0, 9_000.0, 9_500.0, 11_000.0, 12_000.0, 12_500.0,
        12_000.0, 11_500.0, 12_000.0,
    ];

    let mut abr = AbrController::new(BitrateLadder::default());
    let encoder = TransformEncoder::new(QualityBudget::default());
    let content = ContentModel::new(Genre::Sports, 12);
    let stats = content.chunk_stats(link_kbps.len());

    println!(
        "{:>6} | {:>10} | {:>7} | {:>8} | {:>9} | {:>9} | {:>7}",
        "epoch", "link kbps", "buffer", "rung", "disp (W)", "saved (W)", "g cost"
    );
    println!("{}", "-".repeat(74));
    for (epoch, (&kbps, frame)) in link_kbps.iter().zip(&stats).enumerate() {
        let resolution = abr.next_resolution(kbps, 30.0);
        // The viewer's panel matches the stream rung they can decode.
        let spec = DisplaySpec::oled_phone(resolution);
        let chunk = lpvs::media::chunk::Chunk::new(
            lpvs::media::chunk::ChunkId(epoch as u32),
            30.0,
            frame.clone(),
            BitrateLadder::default().bitrate_kbps(resolution),
        );
        let encoded = encoder.encode_chunk(&chunk, &spec);
        let before = spec.power_watts(frame);
        let after = encoded.outcome.power_watts(&spec);
        println!(
            "{:>6} | {:>10.0} | {:>6.1}s | {:>8} | {:>9.3} | {:>9.3} | {:>7.2}",
            epoch,
            kbps,
            abr.buffer_secs(),
            resolution.short_name(),
            before,
            before - after,
            transform_compute_units(resolution, 30.0),
        );
    }
    println!(
        "\nReading: congestion pushes the viewer down the ladder — lower rungs \
         draw less display\npower but also cost the edge less compute to \
         transform, which is exactly the coupling\nthe LPVS capacity \
         constraints (6)–(7) price in."
    );
}
