//! Edge scheduling under pressure: a full emulation of one virtual
//! cluster whose size exceeds the edge server's transform capacity,
//! swept over the provider's λ knob (the paper's Fig. 8 scenario).
//!
//! Run with: `cargo run --release --example edge_scheduling`

use lpvs::core::baseline::Policy;
use lpvs::emulator::engine::EmulatorConfig;
use lpvs::emulator::experiment::run_pair;

fn main() {
    let sizes = [120usize, 200];
    let lambdas = [0.5, 2.0];
    println!("edge server: 100 concurrent 720p transforms (Nokia AirFrame class)\n");
    println!(
        "{:>8} | {:>6} | {:>14} | {:>18} | {:>9}",
        "VC size", "λ", "energy saving", "anxiety reduction", "abandoned"
    );
    println!("{}", "-".repeat(68));
    for size in sizes {
        for lambda in lambdas {
            let config = EmulatorConfig {
                devices: size,
                slots: 12, // one emulated hour
                seed: 7 ^ size as u64,
                lambda,
                server_streams: 100,
                ..EmulatorConfig::default()
            };
            let (with, without) = run_pair(config, Policy::Lpvs);
            println!(
                "{:>8} | {:>6.1} | {:>13.2}% | {:>17.2}% | {:>4} vs {:>3}",
                size,
                lambda,
                100.0 * with.display_saving_ratio(),
                100.0 * with.anxiety_reduction_vs(&without),
                with.abandonments(),
                without.abandonments(),
            );
        }
    }
    println!(
        "\nReading: the saving ratio falls as the cluster outgrows the fixed \
         transform capacity,\nand a larger λ shifts the server toward anxious \
         (low-battery) viewers."
    );
}
