//! Survey analysis: regenerate the paper's §III findings from a
//! synthetic cohort — LBA prevalence, the anxiety curve's shape, and
//! the video-abandonment anchors.
//!
//! Run with: `cargo run --example survey_analysis`

use lpvs::survey::curve::AnxietyCurve;
use lpvs::survey::extraction::extract_curve;
use lpvs::survey::generator::SurveyGenerator;
use lpvs::survey::summary::SurveySummary;

fn main() {
    let cohort = SurveyGenerator::paper_cohort(1).generate();
    let summary = SurveySummary::from_cohort(&cohort);

    println!("respondents: {}", summary.respondents);
    println!(
        "suffering low-battery anxiety: {:.2}%  (paper: 91.88%)",
        100.0 * summary.lba_prevalence
    );
    println!(
        "audience lost once battery hits 20%: {:.1}%  (paper: >20%)",
        100.0 * summary.giveup_at_or_above(20)
    );
    println!(
        "audience lost once battery hits 10%: {:.1}%  (paper: ~50%)\n",
        100.0 * summary.giveup_at_or_above(10)
    );

    // The Fig. 2 curve, as ASCII art.
    let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
    let linear = AnxietyCurve::linear();
    println!("anxiety degree vs battery level ('#' survey curve, '.' linear reference)");
    for row in 0..10 {
        let threshold = 1.0 - (row as f64 + 0.5) / 10.0;
        let mut line = String::with_capacity(52);
        for level in (2..=100).step_by(2) {
            let survey_here = curve.level(level) >= threshold;
            let linear_here = linear.level(level) >= threshold;
            line.push(match (survey_here, linear_here) {
                (true, _) => '#',
                (false, true) => '.',
                (false, false) => ' ',
            });
        }
        println!("{:>4.1} |{line}", threshold + 0.05);
    }
    println!("     +{}", "-".repeat(50));
    println!("      2%{}100%", " ".repeat(42));
    println!(
        "\nsharpest rise at {}% battery (the icon-color threshold); \
         convexity above 20%: {:+.5}, below: {:+.5}",
        curve.sharpest_rise(),
        curve.mean_curvature(25, 95),
        curve.mean_curvature(2, 19),
    );
}
