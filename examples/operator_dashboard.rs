//! Operator's view of one scheduling slot: who got the transform and
//! why, what the edge capacity went to, what each stream's power
//! profile looks like — and the slot's telemetry (a Perfetto-loadable
//! Chrome trace, metrics in Prometheus exposition, JSONL span export,
//! and the blackbox flight-recorder depth).
//!
//! Run with: `cargo run --example operator_dashboard`
//!
//! Writes `obs_trace.json` (open it at <https://ui.perfetto.dev>),
//! `obs_events.jsonl`, and `obs_metrics.prom` to the current
//! directory.
//!
//! With `--scrape <addr>` it renders a *running* `lpvs-serve` instead
//! of an in-process snapshot: pulls `/metrics` over plain TCP, parses
//! the Prometheus text back into a metrics snapshot, and prints the
//! operator tables (`cargo run --example operator_dashboard --
//! --scrape localhost:7070`).

use lpvs::core::explain::{explain, Reason};
use lpvs::core::fleet::DeviceFleet;
use lpvs::core::problem::{DeviceRequest, SlotProblem};
use lpvs::core::scheduler::LpvsScheduler;
use lpvs::display::profile::PowerProfile;
use lpvs::display::spec::{DisplayKind, DisplaySpec, Resolution};
use lpvs::edge::fleet::FleetScheduler;
use lpvs::edge::server::EdgeServer;
use lpvs::edge::slot::SlotBudget;
use lpvs::media::content::{ContentModel, Genre};
use lpvs::obs::sink;
use lpvs::survey::curve::AnxietyCurve;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--scrape") {
        let addr = args.get(pos + 1).unwrap_or_else(|| {
            eprintln!("--scrape needs an address (host:port of a running lpvs-serve)");
            std::process::exit(2);
        });
        let text = lpvs::obs::dashboard::scrape(addr).unwrap_or_else(|e| {
            eprintln!("scrape {addr} failed: {e}");
            std::process::exit(1);
        });
        let snapshot = lpvs::obs::dashboard::parse_prometheus(&text).unwrap_or_else(|e| {
            eprintln!("could not parse exposition text from {addr}: {e}");
            std::process::exit(1);
        });
        print!("{}", lpvs::obs::dashboard::render_dashboard(&snapshot, addr));
        return;
    }

    let recorder = lpvs::obs::init();
    let cap = 55_440.0;
    let curve = AnxietyCurve::paper_shape();

    // Eight viewers with varied panels, genres and batteries; edge
    // capacity for roughly half of the requested pixel throughput.
    let fleet: [(&str, DisplayKind, Resolution, Genre, f64); 8] = [
        ("night gamer", DisplayKind::Oled, Resolution::FHD, Genre::Gaming, 0.09),
        ("sports bar", DisplayKind::Lcd, Resolution::FHD, Genre::Sports, 0.77),
        ("commuter", DisplayKind::Oled, Resolution::HD, Genre::Talk, 0.22),
        ("film night", DisplayKind::Oled, Resolution::QHD, Genre::Movie, 0.55),
        ("concert feed", DisplayKind::Oled, Resolution::HD, Genre::Music, 0.15),
        ("office lunch", DisplayKind::Lcd, Resolution::HD, Genre::Talk, 0.88),
        ("budget phone", DisplayKind::Lcd, Resolution::SD, Genre::Gaming, 0.31),
        ("almost dead", DisplayKind::Oled, Resolution::HD, Genre::Movie, 0.004),
    ];

    let mut problem = SlotProblem::new(6.0, 2.0, 1.0, curve.clone());
    let mut profiles = Vec::new();
    for (i, &(_, kind, resolution, genre, battery)) in fleet.iter().enumerate() {
        let spec = match kind {
            DisplayKind::Oled => DisplaySpec::oled_phone(resolution),
            DisplayKind::Lcd => DisplaySpec::lcd_phone(resolution),
        };
        let stats = ContentModel::new(genre, i as u64).chunk_stats(30);
        let rates: Vec<f64> = stats.iter().map(|s| spec.power_watts(s) + 0.558).collect();
        profiles.push(PowerProfile::of(&stats, 10.0, &spec));
        problem.push(DeviceRequest::new(
            rates,
            vec![10.0; 30],
            battery * cap,
            cap,
            0.31,
            lpvs::media::cost::transform_compute_units(resolution, 30.0),
            0.11,
        ));
    }

    let schedule = LpvsScheduler::paper_default().schedule_resilient(
        &problem,
        None,
        &SlotBudget::unbounded(),
    );
    let explanation = explain(&problem, &schedule.selected);

    println!(
        "{:>13} | {:>5} | {:>6} | {:>8} | {:>7} | {:>18} | power profile",
        "viewer", "panel", "rung", "battery", "anxiety", "decision"
    );
    println!("{}", "-".repeat(110));
    for (i, &(name, kind, resolution, _, battery)) in fleet.iter().enumerate() {
        let decision = match explanation.reasons[i] {
            Reason::Selected { saving_j, .. } => format!("transform (−{saving_j:.0} J)"),
            Reason::EnergyInfeasible => "skip: battery".to_owned(),
            Reason::LostOnCapacity { .. } => "skip: capacity".to_owned(),
            Reason::NoBenefit => "skip: no benefit".to_owned(),
        };
        println!(
            "{:>13} | {:>5} | {:>6} | {:>7.0}% | {:>7.2} | {:>18} | {}",
            name,
            kind.to_string(),
            resolution.short_name(),
            battery * 100.0,
            curve.phi(battery),
            decision,
            profiles[i].sparkline(),
        );
    }
    println!("{}", "-".repeat(110));
    println!("{}", explanation.summary());
    println!(
        "slot: {:.0} J saved, objective {:.0}, tier {}, {} B&B nodes / {} pivots, \
         scheduled in {:?}",
        schedule.stats.energy_saved_j,
        schedule.stats.objective,
        schedule.stats.degradation,
        schedule.stats.phase1_nodes,
        schedule.stats.phase1_pivots,
        schedule.stats.runtime
    );

    // Drive the same fleet through the 2-shard scoped-thread scheduler
    // so the trace shows the cross-thread handoff: each `fleet.shard`
    // span runs on a worker thread yet is parented under `fleet.slot`.
    let device_fleet = DeviceFleet::from_problem(&problem);
    let server = EdgeServer::new(6.0, 2.0);
    let fleet_schedule = FleetScheduler::with_shards(2).schedule(
        &device_fleet,
        &server,
        1.0,
        &curve,
        None,
        &SlotBudget::unbounded(),
    );
    println!(
        "\n2-shard fleet pass: {:.0} J saved across {} shards",
        fleet_schedule.shards.iter().map(|s| s.stats.energy_saved_j).sum::<f64>(),
        fleet_schedule.shards.len(),
    );

    // --- Telemetry ---------------------------------------------------
    lpvs::obs::set_enabled(false);
    let events = recorder.events();
    let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
    let traces: std::collections::BTreeSet<u64> = events.iter().map(|e| e.trace).collect();
    let orphans = events
        .iter()
        .filter(|e| e.parent.is_none() && events.iter().any(|r| r.id != e.id && r.trace == e.trace))
        .count();
    println!(
        "\ntrace: {} spans over {} threads in {} traces ({} roots with children)",
        events.len(),
        threads.len(),
        traces.len(),
        orphans,
    );
    println!(
        "flight recorder: {}/{} blackbox events retained",
        recorder.flight().depth(),
        recorder.flight().capacity(),
    );

    let metrics = recorder.metrics().snapshot();
    println!("\nmetrics (Prometheus exposition):");
    print!("{}", sink::render_prometheus(&metrics));

    std::fs::write("obs_trace.json", sink::events_to_chrome_trace(&events))
        .expect("write obs_trace.json");
    std::fs::write("obs_events.jsonl", sink::events_to_jsonl(&events))
        .expect("write obs_events.jsonl");
    std::fs::write("obs_metrics.prom", sink::render_prometheus(&metrics))
        .expect("write obs_metrics.prom");
    println!(
        "\nwrote obs_trace.json ({} spans — open at https://ui.perfetto.dev), \
         obs_events.jsonl, obs_metrics.prom",
        events.len()
    );
}
