//! Operator's view of one scheduling slot: who got the transform and
//! why, what the edge capacity went to, what each stream's power
//! profile looks like — and the slot's telemetry (span tree, metrics
//! in Prometheus exposition, JSONL span export).
//!
//! Run with: `cargo run --example operator_dashboard`
//!
//! Writes `obs_events.jsonl` and `obs_metrics.prom` to the current
//! directory.

use lpvs::core::explain::{explain, Reason};
use lpvs::core::problem::{DeviceRequest, SlotProblem};
use lpvs::core::scheduler::LpvsScheduler;
use lpvs::display::profile::PowerProfile;
use lpvs::display::spec::{DisplayKind, DisplaySpec, Resolution};
use lpvs::edge::slot::SlotBudget;
use lpvs::media::content::{ContentModel, Genre};
use lpvs::obs::{sink, SpanEvent};
use lpvs::survey::curve::AnxietyCurve;

fn main() {
    let recorder = lpvs::obs::init();
    let cap = 55_440.0;
    let curve = AnxietyCurve::paper_shape();

    // Eight viewers with varied panels, genres and batteries; edge
    // capacity for roughly half of the requested pixel throughput.
    let fleet: [(&str, DisplayKind, Resolution, Genre, f64); 8] = [
        ("night gamer", DisplayKind::Oled, Resolution::FHD, Genre::Gaming, 0.09),
        ("sports bar", DisplayKind::Lcd, Resolution::FHD, Genre::Sports, 0.77),
        ("commuter", DisplayKind::Oled, Resolution::HD, Genre::Talk, 0.22),
        ("film night", DisplayKind::Oled, Resolution::QHD, Genre::Movie, 0.55),
        ("concert feed", DisplayKind::Oled, Resolution::HD, Genre::Music, 0.15),
        ("office lunch", DisplayKind::Lcd, Resolution::HD, Genre::Talk, 0.88),
        ("budget phone", DisplayKind::Lcd, Resolution::SD, Genre::Gaming, 0.31),
        ("almost dead", DisplayKind::Oled, Resolution::HD, Genre::Movie, 0.004),
    ];

    let mut problem = SlotProblem::new(6.0, 2.0, 1.0, curve.clone());
    let mut profiles = Vec::new();
    for (i, &(_, kind, resolution, genre, battery)) in fleet.iter().enumerate() {
        let spec = match kind {
            DisplayKind::Oled => DisplaySpec::oled_phone(resolution),
            DisplayKind::Lcd => DisplaySpec::lcd_phone(resolution),
        };
        let stats = ContentModel::new(genre, i as u64).chunk_stats(30);
        let rates: Vec<f64> = stats.iter().map(|s| spec.power_watts(s) + 0.558).collect();
        profiles.push(PowerProfile::of(&stats, 10.0, &spec));
        problem.push(DeviceRequest::new(
            rates,
            vec![10.0; 30],
            battery * cap,
            cap,
            0.31,
            lpvs::media::cost::transform_compute_units(resolution, 30.0),
            0.11,
        ));
    }

    let schedule = LpvsScheduler::paper_default().schedule_resilient(
        &problem,
        None,
        &SlotBudget::unbounded(),
    );
    let explanation = explain(&problem, &schedule.selected);

    println!(
        "{:>13} | {:>5} | {:>6} | {:>8} | {:>7} | {:>18} | power profile",
        "viewer", "panel", "rung", "battery", "anxiety", "decision"
    );
    println!("{}", "-".repeat(110));
    for (i, &(name, kind, resolution, _, battery)) in fleet.iter().enumerate() {
        let decision = match explanation.reasons[i] {
            Reason::Selected { saving_j, .. } => format!("transform (−{saving_j:.0} J)"),
            Reason::EnergyInfeasible => "skip: battery".to_owned(),
            Reason::LostOnCapacity { .. } => "skip: capacity".to_owned(),
            Reason::NoBenefit => "skip: no benefit".to_owned(),
        };
        println!(
            "{:>13} | {:>5} | {:>6} | {:>7.0}% | {:>7.2} | {:>18} | {}",
            name,
            kind.to_string(),
            resolution.short_name(),
            battery * 100.0,
            curve.phi(battery),
            decision,
            profiles[i].sparkline(),
        );
    }
    println!("{}", "-".repeat(110));
    println!("{}", explanation.summary());
    println!(
        "slot: {:.0} J saved, objective {:.0}, tier {}, {} B&B nodes / {} pivots, \
         scheduled in {:?}",
        schedule.stats.energy_saved_j,
        schedule.stats.objective,
        schedule.stats.degradation,
        schedule.stats.phase1_nodes,
        schedule.stats.phase1_pivots,
        schedule.stats.runtime
    );

    // --- Telemetry ---------------------------------------------------
    lpvs::obs::set_enabled(false);
    let events = recorder.events();
    println!("\nspan tree (μs):");
    print_span_tree(&events, None, 1);

    let metrics = recorder.metrics().snapshot();
    println!("\nmetrics (Prometheus exposition):");
    print!("{}", sink::render_prometheus(&metrics));

    std::fs::write("obs_events.jsonl", sink::events_to_jsonl(&events))
        .expect("write obs_events.jsonl");
    std::fs::write("obs_metrics.prom", sink::render_prometheus(&metrics))
        .expect("write obs_metrics.prom");
    println!("\nwrote obs_events.jsonl ({} spans) and obs_metrics.prom", events.len());
}

/// Prints spans nested under `parent`, in start order.
fn print_span_tree(events: &[SpanEvent], parent: Option<u64>, depth: usize) {
    let mut children: Vec<&SpanEvent> =
        events.iter().filter(|e| e.parent == parent).collect();
    children.sort_by_key(|e| e.start_us);
    for span in children {
        println!(
            "{:indent$}{} — {} μs{}",
            "",
            span.name,
            span.duration_us,
            if span.fields.is_empty() {
                String::new()
            } else {
                format!(
                    "  [{}]",
                    span.fields
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            },
            indent = depth * 2
        );
        print_span_tree(events, Some(span.id), depth + 1);
    }
}
