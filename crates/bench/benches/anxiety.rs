//! Hot-path microbenchmarks: anxiety-curve evaluation and Bayesian γ
//! updates — both run once per device per chunk/slot inside the
//! scheduler loop.

use criterion::{criterion_group, criterion_main, Criterion};
use lpvs_bayes::GammaEstimator;
use lpvs_survey::curve::AnxietyCurve;
use lpvs_survey::extraction::extract_curve;
use lpvs_survey::generator::SurveyGenerator;
use std::hint::black_box;

fn bench_phi(c: &mut Criterion) {
    let curve = AnxietyCurve::paper_shape();
    c.bench_function("phi_interpolation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += curve.phi(black_box(i as f64 / 1000.0));
            }
            acc
        });
    });
}

fn bench_extraction(c: &mut Criterion) {
    let cohort = SurveyGenerator::paper_cohort(11).generate();
    let answers: Vec<u8> = cohort.iter().map(|p| p.charge_level).collect();
    c.bench_function("curve_extraction_2032", |b| {
        b.iter(|| extract_curve(black_box(&answers).iter().copied()));
    });
}

fn bench_gamma_updates(c: &mut Criterion) {
    c.bench_function("gamma_observe_and_expect", |b| {
        b.iter(|| {
            let mut est = GammaEstimator::paper_default();
            for i in 0..50 {
                est.observe(black_box(0.25 + 0.002 * i as f64));
                black_box(est.expected());
            }
            est
        });
    });
}

criterion_group!(benches, bench_phi, bench_extraction, bench_gamma_updates);
criterion_main!(benches);
