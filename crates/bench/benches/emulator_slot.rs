//! Whole-emulation throughput: one hour of a mid-size virtual cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use std::hint::black_box;

fn bench_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulation");
    group.sample_size(10);
    for (name, policy) in [("lpvs", Policy::Lpvs), ("no_transform", Policy::NoTransform)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = EmulatorConfig {
                    devices: 60,
                    slots: 12,
                    seed: 9,
                    ..EmulatorConfig::default()
                };
                black_box(Emulator::new(config, policy).run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emulation);
criterion_main!(benches);
