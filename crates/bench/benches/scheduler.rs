//! Scheduler runtime across cluster sizes (the Fig. 10 hot path), plus
//! the solver-path ablation (exact ILP vs. greedy knapsack).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpvs_core::scheduler::LpvsScheduler;
use lpvs_emulator::experiment::synthetic_problem;
use std::hint::black_box;

fn bench_schedule_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    for &n in &[100usize, 500, 1000, 2000] {
        let problem = synthetic_problem(n, 100.0, 1.0, 5);
        group.bench_with_input(BenchmarkId::new("lpvs", n), &problem, |b, p| {
            let scheduler = LpvsScheduler::paper_default();
            b.iter(|| scheduler.schedule(black_box(p)).unwrap());
        });
    }
    group.finish();
}

fn bench_solver_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solver");
    let problem = synthetic_problem(500, 50.0, 1.0, 6);
    group.bench_function("exact_ilp", |b| {
        let scheduler = LpvsScheduler::phase1_only();
        b.iter(|| scheduler.schedule(black_box(&problem)).unwrap());
    });
    group.bench_function("greedy_knapsack", |b| {
        let scheduler = LpvsScheduler::greedy();
        b.iter(|| scheduler.schedule(black_box(&problem)).unwrap());
    });
    group.finish();
}

fn bench_phase2_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_phase2_runtime");
    let problem = synthetic_problem(500, 50.0, 2.0, 7);
    group.bench_function("phase1_only", |b| {
        let scheduler = LpvsScheduler::phase1_only();
        b.iter(|| scheduler.schedule(black_box(&problem)).unwrap());
    });
    group.bench_function("phase1_plus_phase2", |b| {
        let scheduler = LpvsScheduler::paper_default();
        b.iter(|| scheduler.schedule(black_box(&problem)).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedule_sizes, bench_solver_paths, bench_phase2_cost
}
criterion_main!(benches);
