//! Batched vs per-row throughput of the two hot fleet kernels,
//! constraint-11 feasibility and the eq.-13 objective.
//!
//! These dominate the incremental Phase-2 pass over a dirty frontier —
//! every candidate swap re-evaluates both. Three variants per kernel:
//! `batched` (the columnar batch kernels, AVX2 where detected),
//! `columnar` (per-row walks over the SoA columns), and `scalar` (the
//! same arithmetic over pre-materialized [`DeviceRequest`] rows). The
//! committed artifact lives in `BENCH_kernels.json` via the
//! `fleet-kernels-baseline` binary; this bench is for interactive
//! exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use lpvs_core::compact::compact_device;
use lpvs_core::fleet::{DeviceFleet, FleetDevice};
use lpvs_core::objective::device_objective;
use lpvs_core::problem::DeviceRequest;
use lpvs_core::{device_objective_batch, transform_feasible_batch, Select};
use lpvs_survey::curve::AnxietyCurve;
use std::hint::black_box;

const DEVICES: usize = 4096;
const CHUNKS: usize = 30;

fn corpus() -> (DeviceFleet, Vec<DeviceRequest>) {
    let mut fleet = DeviceFleet::with_capacity(DEVICES, CHUNKS);
    for d in 0..DEVICES {
        fleet.push(FleetDevice::from_request(DeviceRequest::uniform(
            0.8 + 0.05 * (d % 7) as f64,
            10.0,
            CHUNKS,
            2_000.0 + 37.0 * (d % 101) as f64,
            55_440.0,
            0.1 + 0.006 * (d % 97) as f64,
            1.0,
            0.1,
        )));
    }
    let requests = (0..DEVICES).map(|d| fleet.device_request(d)).collect();
    (fleet, requests)
}

fn bench_fleet_kernels(c: &mut Criterion) {
    let (fleet, requests) = corpus();
    let curve = AnxietyCurve::paper_shape();
    let lambda = 1.0;

    let cols = fleet.columns();
    let indices: Vec<usize> = (0..DEVICES).collect();
    let sel: Vec<bool> = (0..DEVICES).map(|d| d % 2 == 0).collect();

    let mut group = c.benchmark_group("fleet_kernels");
    group.bench_function("transform_feasible/batched", |b| {
        let mut flags = Vec::with_capacity(DEVICES);
        b.iter(|| {
            flags.clear();
            transform_feasible_batch(black_box(&cols), &indices, &mut flags);
            black_box(&flags);
        });
    });
    group.bench_function("transform_feasible/columnar", |b| {
        b.iter(|| {
            let mut feasible = 0usize;
            for d in 0..DEVICES {
                feasible += usize::from(black_box(&fleet).transform_feasible(d));
            }
            black_box(feasible)
        });
    });
    group.bench_function("transform_feasible/scalar", |b| {
        b.iter(|| {
            let mut feasible = 0usize;
            for request in black_box(&requests) {
                feasible += usize::from(compact_device(request).transform_feasible);
            }
            black_box(feasible)
        });
    });
    group.bench_function("device_objective/batched", |b| {
        let mut values = Vec::with_capacity(DEVICES);
        b.iter(|| {
            values.clear();
            device_objective_batch(
                black_box(&cols),
                &indices,
                Select::PerRow(&sel),
                lambda,
                &curve,
                &mut values,
            );
            black_box(&values);
        });
    });
    group.bench_function("device_objective/columnar", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for d in 0..DEVICES {
                total += black_box(&fleet).device_objective(d, d % 2 == 0, lambda, &curve);
            }
            black_box(total)
        });
    });
    group.bench_function("device_objective/scalar", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (d, request) in black_box(&requests).iter().enumerate() {
                total += device_objective(request, d % 2 == 0, lambda, &curve);
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_kernels);
criterion_main!(benches);
