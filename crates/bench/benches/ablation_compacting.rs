//! Ablation: information compacting (eq. 11) vs. walking the chunk
//! recursion (eqs. 4–5) for per-device feasibility — the §V-B speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpvs_core::compact::{chunk_level_feasible, compact_device};
use lpvs_emulator::experiment::synthetic_problem;
use std::hint::black_box;

fn bench_compacting(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility");
    for &n in &[500usize, 2000] {
        let problem = synthetic_problem(n, 100.0, 1.0, 11);
        group.bench_with_input(
            BenchmarkId::new("compacted", n),
            &problem,
            |b, p| {
                b.iter(|| {
                    for r in &p.requests {
                        black_box(compact_device(black_box(r)));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chunk_recursion", n),
            &problem,
            |b, p| {
                b.iter(|| {
                    for r in &p.requests {
                        black_box(chunk_level_feasible(black_box(r), true));
                        black_box(chunk_level_feasible(black_box(r), false));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compacting);
criterion_main!(benches);
