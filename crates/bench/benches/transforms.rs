//! Per-chunk transform throughput — the paper's motivation for doing
//! this work at the edge is exactly that these are too expensive for
//! phones; the edge must sustain ~100 concurrent streams.

use criterion::{criterion_group, criterion_main, Criterion};
use lpvs_bench::genre_corpus;
use lpvs_display::quality::QualityBudget;
use lpvs_display::spec::{DisplaySpec, Resolution};
use lpvs_display::transform::{BacklightScaling, ColorTransform, SubpixelShutoff, Transform};
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let corpus = genre_corpus();
    let budget = QualityBudget::default();
    let lcd = DisplaySpec::lcd_phone(Resolution::FHD);
    let oled = DisplaySpec::oled_phone(Resolution::FHD);

    let mut group = c.benchmark_group("transform_corpus");
    group.bench_function("backlight_scaling", |b| {
        let t = BacklightScaling::new(budget);
        b.iter(|| {
            for frame in &corpus {
                black_box(t.apply(black_box(frame), &lcd));
            }
        });
    });
    group.bench_function("color_transform", |b| {
        let t = ColorTransform::new(budget);
        b.iter(|| {
            for frame in &corpus {
                black_box(t.apply(black_box(frame), &oled));
            }
        });
    });
    group.bench_function("subpixel_shutoff", |b| {
        let t = SubpixelShutoff::new(budget);
        b.iter(|| {
            for frame in &corpus {
                black_box(t.apply(black_box(frame), &oled));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
