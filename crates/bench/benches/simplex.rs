//! LP relaxation throughput of the bounded-variable simplex — the
//! inner loop of every branch-and-bound node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lpvs_solver::{LinearProgram, Relation};
use std::hint::black_box;

/// Builds the LP relaxation of an n-item, 2-row knapsack (the LPVS
/// Phase-1 shape).
fn knapsack_relaxation(n: usize, seed: u64) -> LinearProgram {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let values: Vec<f64> = (0..n).map(|_| 10.0 + 90.0 * next()).collect();
    let w1: Vec<f64> = (0..n).map(|_| 0.4 + 2.0 * next()).collect();
    let w2: Vec<f64> = (0..n).map(|_| 0.05 + 0.2 * next()).collect();
    let mut lp = LinearProgram::maximize(values).expect("finite values");
    lp.add_row(w1, Relation::Le, n as f64 * 0.25).expect("row");
    lp.add_row(w2, Relation::Le, n as f64 * 0.03).expect("row");
    for v in 0..n {
        lp.set_bounds(v, 0.0, 1.0).expect("bounds");
    }
    lp
}

fn bench_relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_relaxation");
    for &n in &[100usize, 500, 2000, 5000] {
        let lp = knapsack_relaxation(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| black_box(lp).solve().unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_relaxation
}
criterion_main!(benches);
