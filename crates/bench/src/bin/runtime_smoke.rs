//! CI smoke for the staged runtime's supervised recovery: a pipelined
//! trace-driven run over two shards with 10% stage faults, *repeated*
//! worker deaths (each faulted shard dies again on its first respawn),
//! and deliberately corrupted checkpoint files must absorb every death
//! through the checkpoint/respawn ladder — no sequential fallback —
//! and still reproduce the sequential engine bit-for-bit. A fault-free
//! control run pins the healthy path, and a faulted replay pins
//! determinism: worker death and checkpoint corruption are both
//! hash-derived, so the whole recovery story reproduces exactly.
//!
//! Leaves telemetry behind for CI artifacts: `obs_trace.json` (the
//! faulted run's Perfetto-loadable trace) and `obs_flight.jsonl` (one
//! blackbox flight recording per worker death).

use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{CheckpointSpec, Emulator, EmulatorConfig};
use lpvs_emulator::FaultConfig;
use lpvs_trace::generator::TraceGenerator;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lpvs-runtime-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    // The busiest eligible live session of the paper-calibrated trace,
    // selected exactly as `experiment::trace_driven` does.
    let trace = TraceGenerator::paper_scale(2024).generate();
    let (channel, viewers, slots) = trace
        .sessions()
        .filter_map(|(c, s)| {
            let viewers = s.mean_viewers().round() as usize;
            ((20..=500).contains(&viewers))
                .then(|| (c.id().0, viewers, (s.duration_slots() as usize).clamp(1, 24)))
        })
        .max_by_key(|&(id, viewers, _)| (viewers, std::cmp::Reverse(id)))
        .expect("paper-scale trace has eligible sessions");
    println!("session: channel {channel}, {viewers} viewers, {slots} slots, 2 shards");

    let config = EmulatorConfig {
        devices: viewers,
        slots,
        seed: 31 ^ u64::from(channel),
        server_streams: 100,
        lambda: 1.0,
        num_edges: 2,
        one_slot_ahead: true,
        pipelined: true,
        ..EmulatorConfig::default()
    };

    // Control: the healthy pipeline serves the whole session.
    let clean = Emulator::new(config, Policy::Lpvs).run();
    let summary = clean.runtime.clone().expect("pipelined run reports a runtime summary");
    assert!(summary.pipelined && summary.shards == 2, "control run must be pipelined ×2");
    assert_eq!(summary.recovery.fell_back, None, "control run must not fall back");
    assert_eq!(summary.workers_lost, 0, "control run must keep both workers");
    assert_eq!(clean.slots.len(), slots, "control run must cover the horizon");
    println!("control: {} slots pipelined, no fallback", clean.slots.len());

    // The sequential reference the recovered run must match bit-for-bit
    // (stage faults and checkpoints are pipeline-only concepts; the
    // sequential engine ignores them).
    let sequential =
        Emulator::new(EmulatorConfig { pipelined: false, ..config }, Policy::Lpvs).run();

    // Kill-and-restore: 10% per-(slot, shard) stage faults with
    // `repeat: 1` (every faulted shard dies *again* on its first
    // respawn), checkpoints every 2 slots, and a 25% chance each
    // written checkpoint is corrupted on disk. The supervisor must ride
    // the full ladder — checksum-reject, older generation, journal
    // replay, respawn, re-dispatch — without ever falling back.
    let faulted_config = EmulatorConfig {
        faults: FaultConfig {
            stage_fault_rate: 0.10,
            stage_fault_repeat: 1,
            checkpoint_corrupt_rate: 0.25,
            ..FaultConfig::none()
        },
        ..config
    };
    let spec = |dir| CheckpointSpec { interval: 2, ..CheckpointSpec::new(dir) };
    // Trace the faulted run only: reset so the control and sequential
    // runs' spans don't dilute the artifact.
    let recorder = lpvs_obs::init();
    recorder.reset();
    let faulted = Emulator::new(faulted_config, Policy::Lpvs)
        .with_checkpoints(spec(scratch_dir("faulted")))
        .run();
    lpvs_obs::set_enabled(false);
    let span_events = recorder.drain_events();
    let summary = faulted.runtime.clone().expect("faulted run reports a runtime summary");
    assert!(summary.workers_lost > 0, "10% stage faults over {slots}x2 must kill a worker");
    assert_eq!(
        summary.recovery.fell_back, None,
        "supervised recovery must absorb every worker death"
    );
    let recovery = &summary.recovery;
    assert_eq!(recovery.total_deaths() as usize, summary.workers_lost);
    assert!(
        recovery.shards.iter().any(|s| s.retries >= 2),
        "repeat faults must force at least one shard through two respawns"
    );
    assert!(recovery.checkpoints_written > 0, "interval-2 checkpointing must write snapshots");
    assert!(
        recovery.checkpoints_corrupted > 0,
        "a 25% corruption rate over {} checkpoints must corrupt one",
        recovery.checkpoints_written
    );
    assert_eq!(faulted.slots.len(), slots, "faulted run must still cover the horizon");
    assert!(
        faulted.slots.iter().all(|s| s.watching == 0 || s.degradation.is_some()),
        "every watched slot must record a degradation tier"
    );
    println!(
        "faulted: {} death(s), {} respawn(s), {} checkpoint(s) written ({} corrupted), \
         {} generation(s) rejected, no fallback",
        recovery.total_deaths(),
        recovery.shards.iter().map(|s| s.retries).sum::<u32>(),
        recovery.checkpoints_written,
        recovery.checkpoints_corrupted,
        recovery.generations_rejected,
    );

    // The recovered run is not merely complete — it is the same
    // computation: bit-identical to the sequential one-slot-ahead
    // engine despite every death and corrupted snapshot along the way.
    assert_eq!(faulted.gamma_posteriors, sequential.gamma_posteriors);
    assert_eq!(faulted.display_energy_j, sequential.display_energy_j);
    assert_eq!(faulted.total_energy_j, sequential.total_energy_j);
    assert_eq!(faulted.final_battery, sequential.final_battery);
    assert_eq!(faulted.gave_up, sequential.gave_up);
    println!("recovered run is bit-identical to the sequential engine");

    // Stage faults and corruption are hash-derived, not sampled: the
    // replay must reproduce the whole recovery story bit-for-bit.
    let replay = Emulator::new(faulted_config, Policy::Lpvs)
        .with_checkpoints(spec(scratch_dir("replay")))
        .run();
    let replay_summary = replay.runtime.clone().expect("summary");
    assert_eq!(replay_summary.recovery, summary.recovery);
    assert_eq!(replay.gamma_posteriors, faulted.gamma_posteriors);
    assert_eq!(replay.display_energy_j, faulted.display_energy_j);
    println!("replay: recovery report and results reproduce bit-for-bit");

    // CI artifacts: the faulted run's causal trace and the blackbox
    // recordings its worker deaths left behind.
    assert!(!summary.recovery.flight.is_empty(), "deaths must leave flight recordings");
    std::fs::write("obs_trace.json", lpvs_obs::sink::events_to_chrome_trace(&span_events))
        .expect("write obs_trace.json");
    std::fs::write("obs_flight.jsonl", lpvs_runtime::flight_to_jsonl(&summary.recovery.flight))
        .expect("write obs_flight.jsonl");
    println!(
        "wrote obs_trace.json ({} spans) and obs_flight.jsonl ({} recordings)",
        span_events.len(),
        summary.recovery.flight.len(),
    );
    println!("runtime smoke OK");
}
