//! CI smoke for the staged runtime's graceful degradation: a pipelined
//! trace-driven run over two shards with 10% stage faults must lose a
//! worker, fall back to the sequential engine, and still complete its
//! full horizon. A fault-free control run over the same session pins
//! the healthy path (no fallback, no workers lost), and a faulted
//! replay pins determinism — worker death is hash-derived, so the
//! fallback slot reproduces exactly.

use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use lpvs_emulator::FaultConfig;
use lpvs_trace::generator::TraceGenerator;

fn main() {
    // The busiest eligible live session of the paper-calibrated trace,
    // selected exactly as `experiment::trace_driven` does.
    let trace = TraceGenerator::paper_scale(2024).generate();
    let (channel, viewers, slots) = trace
        .sessions()
        .filter_map(|(c, s)| {
            let viewers = s.mean_viewers().round() as usize;
            ((20..=500).contains(&viewers))
                .then(|| (c.id().0, viewers, (s.duration_slots() as usize).clamp(1, 24)))
        })
        .max_by_key(|&(id, viewers, _)| (viewers, std::cmp::Reverse(id)))
        .expect("paper-scale trace has eligible sessions");
    println!("session: channel {channel}, {viewers} viewers, {slots} slots, 2 shards");

    let config = EmulatorConfig {
        devices: viewers,
        slots,
        seed: 31 ^ u64::from(channel),
        server_streams: 100,
        lambda: 1.0,
        num_edges: 2,
        pipelined: true,
        ..EmulatorConfig::default()
    };

    // Control: the healthy pipeline serves the whole session.
    let clean = Emulator::new(config, Policy::Lpvs).run();
    let summary = clean.runtime.expect("pipelined run reports a runtime summary");
    assert!(summary.pipelined && summary.shards == 2, "control run must be pipelined ×2");
    assert_eq!(summary.fell_back, None, "control run must not fall back");
    assert_eq!(summary.workers_lost, 0, "control run must keep both workers");
    assert_eq!(clean.slots.len(), slots, "control run must cover the horizon");
    println!("control: {} slots pipelined, no fallback", clean.slots.len());

    // 10% per-(slot, shard) stage faults: a worker dies, the hub drains
    // the in-flight slot, merges the shard banks, and finishes inline.
    let faulted_config = EmulatorConfig {
        faults: FaultConfig { stage_fault_rate: 0.10, ..FaultConfig::none() },
        ..config
    };
    let faulted = Emulator::new(faulted_config, Policy::Lpvs).run();
    let summary = faulted.runtime.expect("faulted run reports a runtime summary");
    assert!(summary.workers_lost > 0, "10% stage faults over {slots}x2 must kill a worker");
    let fell_back = summary
        .fell_back
        .expect("losing a worker must trigger the sequential fallback");
    assert_eq!(faulted.slots.len(), slots, "faulted run must still cover the horizon");
    assert!(
        faulted.slots.iter().all(|s| s.watching == 0 || s.degradation.is_some()),
        "every watched slot must record a degradation tier"
    );
    println!(
        "faulted: lost {} worker(s), fell back at slot {fell_back}, completed {}/{slots} slots",
        summary.workers_lost,
        faulted.slots.len()
    );

    // Stage faults are hash-derived, not sampled: the replay must
    // reproduce the fallback slot and the report bit-for-bit.
    let replay = Emulator::new(faulted_config, Policy::Lpvs).run();
    assert_eq!(replay.runtime.expect("summary").fell_back, Some(fell_back));
    assert_eq!(replay.gamma_posteriors, faulted.gamma_posteriors);
    assert_eq!(replay.display_energy_j, faulted.display_energy_j);
    println!("replay: fallback slot and report reproduce bit-for-bit");
    println!("runtime smoke OK");
}
