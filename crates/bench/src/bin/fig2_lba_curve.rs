//! Regenerates Fig. 2: the low-battery-anxiety curve extracted from a
//! 2,032-respondent cohort, with the linear reference and the shape
//! diagnostics the paper calls out.

use lpvs_survey::curve::AnxietyCurve;
use lpvs_survey::extraction::extract_curve;
use lpvs_survey::generator::SurveyGenerator;

fn main() {
    let cohort = SurveyGenerator::paper_cohort(2019).generate();
    let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
    let linear = AnxietyCurve::linear();

    println!("Fig. 2 — anxiety degree vs battery level (2,032 synthetic respondents)\n");
    println!("{:>8} | {:>14} | {:>8}", "battery", "anxiety degree", "linear");
    println!("{}", "-".repeat(38));
    for level in (5..=100).step_by(5) {
        println!(
            "{:>7}% | {:>14.3} | {:>8.3}",
            level,
            curve.level(level),
            linear.level(level)
        );
    }
    println!("{}", "-".repeat(38));
    println!("sharpest rise when battery drops to: {}%  (paper: 20%)", curve.sharpest_rise());
    println!(
        "curvature above 20%: {:+.6} (convex > 0)   (paper: convex)",
        curve.mean_curvature(25, 95)
    );
    println!(
        "curvature below 20%: {:+.6} (concave < 0)  (paper: concave)",
        curve.mean_curvature(2, 19)
    );
    let lba = cohort.iter().filter(|p| p.suffers_lba).count();
    println!(
        "respondents suffering LBA: {}/{} = {:.2}%  (paper: 1,867/2,032 = 91.88%)",
        lba,
        cohort.len(),
        100.0 * lba as f64 / cohort.len() as f64
    );
}
