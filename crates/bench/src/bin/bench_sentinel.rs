//! `bench-sentinel` — the bench regression gate.
//!
//! Reads the committed baseline manifest (`bench_baselines.json`) and
//! compares every guarded metric in the committed `BENCH_*.json`
//! artifacts against its band. Exits nonzero on any regression, so CI
//! can gate on it.
//!
//! ```text
//! cargo run --release -p lpvs-bench --bin bench-sentinel
//! cargo run --release -p lpvs-bench --bin bench-sentinel -- --selftest
//! cargo run --release -p lpvs-bench --bin bench-sentinel -- \
//!     --manifest bench_baselines.json --dir .
//! ```
//!
//! `--selftest` proves the sentinel bites: for every entry it doctors
//! the value past the threshold and asserts the check fails, then
//! asserts the committed baseline itself passes.

use lpvs_bench::sentinel::{check, parse_manifest, run, Verdict};
use lpvs_obs::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut manifest = PathBuf::from("bench_baselines.json");
    let mut dir = PathBuf::from(".");
    let mut selftest = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => manifest = args.next().expect("--manifest takes a path").into(),
            "--dir" => dir = args.next().expect("--dir takes a directory").into(),
            "--selftest" => selftest = true,
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match std::fs::read_to_string(&manifest) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench-sentinel: cannot read {}: {err}", manifest.display());
            return ExitCode::FAILURE;
        }
    };
    let entries = match Json::parse(&text).map_err(|e| e.to_string()).and_then(|doc| parse_manifest(&doc)) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("bench-sentinel: bad manifest {}: {err}", manifest.display());
            return ExitCode::FAILURE;
        }
    };
    if entries.is_empty() {
        eprintln!("bench-sentinel: manifest has no entries — nothing guarded");
        return ExitCode::FAILURE;
    }

    if selftest {
        // Doctor each metric past its band and demand a failure; a
        // sentinel that cannot fail is not guarding anything.
        for entry in &entries {
            let doctored = entry.doctored();
            if entry.passes(doctored) {
                eprintln!(
                    "selftest FAIL: doctored {}:{} = {doctored} slipped past the band",
                    entry.file, entry.path
                );
                return ExitCode::FAILURE;
            }
            if !entry.passes(entry.baseline) {
                eprintln!(
                    "selftest FAIL: committed baseline {}:{} fails its own band",
                    entry.file, entry.path
                );
                return ExitCode::FAILURE;
            }
            // End-to-end: a doctored document must produce a failing
            // verdict through the same path the real check takes.
            let doc = Json::obj([("doctored", Json::Num(doctored))]);
            let entry_on_doc = lpvs_bench::sentinel::BaselineEntry {
                path: "doctored".into(),
                ..entry.clone()
            };
            let verdict = check(&entry_on_doc, &doc);
            if verdict.pass {
                eprintln!("selftest FAIL: {verdict}");
                return ExitCode::FAILURE;
            }
        }
        println!("bench-sentinel selftest: {} entries, every doctored value caught", entries.len());
        return ExitCode::SUCCESS;
    }

    let verdicts: Vec<Verdict> = run(&entries, &dir);
    let mut failed = 0usize;
    for v in &verdicts {
        println!("{v}");
        if !v.pass {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("bench-sentinel: {failed}/{} metrics regressed", verdicts.len());
        return ExitCode::FAILURE;
    }
    println!("bench-sentinel: {} metrics within their bands", verdicts.len());
    ExitCode::SUCCESS
}
