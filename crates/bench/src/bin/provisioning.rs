//! Edge sizing study: the marginal value of edge capacity across
//! virtual-cluster sizes — the provisioning question the paper's fixed
//! "≈ 100 streams" sizing leaves open, answered with the Phase-1 LP's
//! shadow prices.

use lpvs_core::provision::price_capacity;
use lpvs_emulator::experiment::synthetic_problem;

fn main() {
    println!("Edge provisioning — marginal value of compute capacity\n");
    println!(
        "{:>8} | {:>10} | {:>20} | {:>18}",
        "VC size", "capacity", "J per compute unit", "saving bound (J)"
    );
    println!("{}", "-".repeat(66));
    for &n in &[100usize, 200, 400] {
        for &cap in &[25.0f64, 50.0, 100.0, 200.0, 400.0] {
            let mut problem = synthetic_problem(n, cap, 1.0, 2025);
            problem.compute_capacity = cap;
            let prices = price_capacity(&problem).expect("relaxation is feasible");
            println!(
                "{:>8} | {:>10.0} | {:>20.2} | {:>18.0}",
                n, cap, prices.compute_j_per_unit, prices.saving_bound_j
            );
        }
        println!("{}", "-".repeat(66));
    }
    println!(
        "reading: capacity is valuable while the cluster saturates it and free \
         once every\nfeasible device fits — the knee is where an operator stops \
         adding servers."
    );
}
