//! Ablation: Bayesian γ learning vs. a fixed prior vs. a clairvoyant
//! oracle (DESIGN.md §5, paper Remark 2 / §V-D).
//!
//! Under a tight server the scheduler must rank devices by expected
//! savings; wrong γ estimates misallocate the budget. The oracle
//! upper-bounds what estimation can achieve, the fixed prior is the
//! no-learning floor, and the Bayesian estimator should close most of
//! the gap after a few slots of observations.

use lpvs_bench::pct;
use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig, GammaMode};

fn main() {
    println!("Ablation — γ estimation: fixed prior vs Bayesian vs oracle\n");
    let base = EmulatorConfig {
        devices: 150,
        slots: 12,
        seed: 17,
        lambda: 1.0,
        server_streams: 30,
        ..EmulatorConfig::default()
    };
    let baseline = Emulator::new(base, Policy::NoTransform).run();

    println!(
        "{:>22} | {:>14} | {:>18}",
        "γ mode", "energy saving", "anxiety reduction"
    );
    println!("{}", "-".repeat(62));
    for (name, mode) in [
        ("fixed prior (0.31)", GammaMode::Fixed(0.31)),
        ("Bayesian (paper)", GammaMode::Learned),
        ("oracle", GammaMode::Oracle),
    ] {
        let report =
            Emulator::new(EmulatorConfig { gamma_mode: mode, ..base }, Policy::Lpvs).run();
        println!(
            "{:>22} | {:>14} | {:>18}",
            name,
            pct(report.display_saving_ratio()),
            pct(report.anxiety_reduction_vs(&baseline)),
        );
    }
    println!(
        "\nreading: the oracle upper-bounds both metrics; after a few observed \
         slots the\nBayesian estimator closes most of the anxiety-reduction gap \
         to the oracle, while a\nfixed prior cannot tell big savers from small \
         ones when ranking under tight capacity."
    );
}
