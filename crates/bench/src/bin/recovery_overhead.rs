//! Checkpoint overhead and restore latency of the supervised-recovery
//! subsystem.
//!
//! Sweeps the checkpoint interval over a pipelined emulator run —
//! `off` (no store) as the baseline, then every 16, 8, 4, 2, and 1
//! slots — and reports the wall-clock overhead each interval adds.
//! Checkpointing must be *semantically* free (the sweep cross-checks
//! that every interval reproduces the baseline's γ posteriors
//! bit-for-bit) and *temporally* cheap: at the default interval of 8
//! the overhead target is ≤ 5% of slot wall-time.
//!
//! A store-level microbench also times the restore path itself — seal,
//! persist, `restore_latest` — at fleet scale, since end-to-end runs
//! only exercise it when a worker actually dies.
//!
//! Writes `BENCH_recovery.json` at the repository root. `--smoke` runs
//! a reduced sweep for CI (no overhead assertion: shared runners are
//! too noisy for a 5% wall-clock bound).

use lpvs_bayes::codec::bank_to_bytes;
use lpvs_bayes::{BayesBank, GammaEstimator};
use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{CheckpointSpec, Emulator, EmulatorConfig};
use lpvs_emulator::EmulationReport;
use lpvs_obs::json::Json;
use lpvs_runtime::{CheckpointConfig, CheckpointStore};
use std::time::Instant;

/// Wall-time overhead target at the default interval.
const TARGET_OVERHEAD_PCT: f64 = 5.0;
const DEFAULT_INTERVAL: usize = 8;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lpvs-recovery-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Row {
    interval: Option<usize>,
    secs: f64,
    checkpoints: usize,
    report: EmulationReport,
}

fn run_row(config: EmulatorConfig, interval: Option<usize>) -> Row {
    let mut emu = Emulator::new(config, Policy::Lpvs);
    if let Some(interval) = interval {
        emu = emu.with_checkpoints(CheckpointSpec {
            interval,
            ..CheckpointSpec::new(scratch_dir(&format!("sweep-{interval}")))
        });
    }
    let t = Instant::now();
    let report = emu.run();
    let secs = t.elapsed().as_secs_f64();
    let checkpoints =
        report.runtime.as_ref().map_or(0, |s| s.recovery.checkpoints_written);
    Row { interval, secs, checkpoints, report }
}

/// Times the restore path at shard scale: a learned bank of `devices`
/// estimators is sealed and persisted, then restored (checksum walk +
/// decode) repeatedly.
fn restore_latency_ms(devices: usize) -> f64 {
    let dir = scratch_dir("restore");
    let config = CheckpointConfig::new(&dir);
    let mut store = CheckpointStore::create(&config, 1).expect("store");
    let mut estimators = vec![GammaEstimator::paper_default(); devices];
    for (d, est) in estimators.iter_mut().enumerate() {
        let _ = est.try_observe(0.2 + 0.5 * (d as f64 / devices as f64));
    }
    let bank = BayesBank::from_estimators(estimators);
    store.begin_round(0, vec![0]);
    store.persist_shard(0, 0, &bank_to_bytes(&bank), None, None).expect("persist");
    let iterations = 20;
    let t = Instant::now();
    for _ in 0..iterations {
        let (_, snapshot) = store.restore_latest(0).expect("restore");
        assert_eq!(snapshot.bank.len(), devices);
    }
    let ms = t.elapsed().as_secs_f64() * 1e3 / iterations as f64;
    let _ = std::fs::remove_dir_all(&dir);
    ms
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let devices = if smoke { 2_000 } else { 20_000 };
    let slots = if smoke { 4 } else { 12 };
    let intervals: &[Option<usize>] = if smoke {
        &[None, Some(DEFAULT_INTERVAL), Some(2)]
    } else {
        &[None, Some(16), Some(8), Some(4), Some(2), Some(1)]
    };
    let config = EmulatorConfig {
        devices,
        slots,
        seed: 4242,
        server_streams: 2 * devices / 5,
        lambda: 1.0,
        one_slot_ahead: true,
        num_edges: 4,
        pipelined: true,
        ..EmulatorConfig::default()
    };
    println!(
        "Recovery overhead — checkpoint-interval sweep, {devices} devices × {slots} slots, \
         4 shards{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:>9} {:>9} {:>12} {:>10}", "interval", "secs", "checkpoints", "overhead");

    let mut rows: Vec<Row> = Vec::new();
    for &interval in intervals {
        let row = run_row(config, interval);
        let overhead = rows
            .first()
            .map(|base: &Row| 100.0 * (row.secs - base.secs) / base.secs);
        println!(
            "{:>9} {:>9.3} {:>12} {:>10}",
            row.interval.map_or("off".into(), |i| i.to_string()),
            row.secs,
            row.checkpoints,
            overhead.map_or("—".into(), |o| format!("{o:+.2}%")),
        );
        rows.push(row);
    }
    let base = &rows[0];
    for row in &rows[1..] {
        // Checkpointing may cost time, never bits.
        assert_eq!(
            row.report.gamma_posteriors, base.report.gamma_posteriors,
            "interval {:?} perturbed the γ posteriors",
            row.interval
        );
        assert_eq!(
            row.report.display_energy_j, base.report.display_energy_j,
            "interval {:?} perturbed the energy accounting",
            row.interval
        );
        assert!(row.checkpoints > 0, "interval {:?} wrote no checkpoints", row.interval);
    }
    println!("\nevery interval bit-identical to the no-checkpoint baseline ✓");

    let restore_ms = restore_latency_ms(devices / 4);
    println!("restore latency ({} devices/shard): {restore_ms:.3} ms", devices / 4);

    let at_default = rows
        .iter()
        .find(|r| r.interval == Some(DEFAULT_INTERVAL))
        .expect("sweep covers the default interval");
    let overhead_pct = 100.0 * (at_default.secs - base.secs) / base.secs;
    let meets_target = overhead_pct <= TARGET_OVERHEAD_PCT;
    println!(
        "overhead at default interval {DEFAULT_INTERVAL}: {overhead_pct:+.2}% \
         (target ≤ {TARGET_OVERHEAD_PCT}%)"
    );

    let artifact = Json::obj([
        ("bench", Json::Str("recovery_overhead".into())),
        ("smoke", Json::Bool(smoke)),
        ("devices", Json::Num(devices as f64)),
        ("slots", Json::Num(slots as f64)),
        ("shards", Json::Num(4.0)),
        ("target_overhead_pct", Json::Num(TARGET_OVERHEAD_PCT)),
        ("overhead_pct_at_default", Json::Num(overhead_pct)),
        ("default_interval", Json::Num(DEFAULT_INTERVAL as f64)),
        ("restore_latency_ms", Json::Num(restore_ms)),
        ("meets_target", Json::Bool(meets_target)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            (
                                "interval",
                                r.interval.map_or(Json::Null, |i| Json::Num(i as f64)),
                            ),
                            ("secs", Json::Num(r.secs)),
                            ("checkpoints", Json::Num(r.checkpoints as f64)),
                            (
                                "overhead_pct",
                                Json::Num(100.0 * (r.secs - base.secs) / base.secs),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_recovery.json");
    println!("wrote {path}");
    if !smoke {
        assert!(
            meets_target,
            "checkpoint overhead at interval {DEFAULT_INTERVAL} exceeds \
             {TARGET_OVERHEAD_PCT}%: {overhead_pct:+.2}%"
        );
    }
}
