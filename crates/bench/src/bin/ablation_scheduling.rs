//! Ablation: scheduling modes — instant vs. one-slot-ahead decisions
//! (paper §VI-B.2's "one-slot-ahead" working mode), and prefetch window
//! policies bounding the available chunks `K_m` (paper eq. 1).

use lpvs_bench::pct;
use lpvs_core::baseline::Policy;
use lpvs_edge::cache::PrefetchPolicy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};

fn main() {
    let base = EmulatorConfig {
        devices: 120,
        slots: 12,
        seed: 29,
        lambda: 1.0,
        server_streams: 40,
        ..EmulatorConfig::default()
    };
    println!("Ablation — scheduling mode and prefetch window\n");
    println!(
        "{:>34} | {:>14} | {:>18} | {:>8}",
        "variant", "energy saving", "anxiety reduction", "churn"
    );
    println!("{}", "-".repeat(84));
    let variants: [(&str, EmulatorConfig); 5] = [
        ("instant, full prefetch", base),
        ("one-slot-ahead, full prefetch", EmulatorConfig { one_slot_ahead: true, ..base }),
        (
            "instant, 10-chunk window",
            EmulatorConfig { prefetch: PrefetchPolicy::Window { chunks: 10 }, ..base },
        ),
        (
            "instant, popularity-boosted",
            EmulatorConfig {
                prefetch: PrefetchPolicy::PopularityBoosted {
                    base: 8,
                    per_hundred_viewers: 4,
                    max_chunks: 30,
                },
                ..base
            },
        ),
        (
            "one-slot-ahead, 10-chunk window",
            EmulatorConfig {
                one_slot_ahead: true,
                prefetch: PrefetchPolicy::Window { chunks: 10 },
                ..base
            },
        ),
    ];
    for (name, config) in variants {
        // Pair each variant with its own no-transform baseline so the
        // comparison isolates the scheduling knob.
        let baseline = Emulator::new(config, Policy::NoTransform).run();
        let report = Emulator::new(config, Policy::Lpvs).run();
        println!(
            "{:>34} | {:>14} | {:>18} | {:>8}",
            name,
            pct(report.display_saving_ratio()),
            pct(report.anxiety_reduction_vs(&baseline)),
            report
                .mean_churn()
                .map(pct)
                .unwrap_or_else(|| "-".to_owned()),
        );
    }
    println!(
        "\nreading: one-slot-ahead staleness costs a fraction of a point of \
         saving (Remark 1's\npremise — batteries move little within 5 \
         minutes); tighter prefetch windows shrink the\nschedulable window \
         K_m and with it the absolute savings, not the selection logic."
    );
}
