//! Regenerates Fig. 5: the histogram of live-session durations in the
//! (synthetic) Twitch-like dataset after the ≤ 10 h filter.

use lpvs_trace::generator::TraceGenerator;
use lpvs_trace::histogram::DurationHistogram;
use lpvs_trace::summary::TraceSummary;

fn main() {
    let trace = TraceGenerator::paper_scale(2014).generate();
    let summary = TraceSummary::from_trace(&trace);
    let hist = DurationHistogram::from_trace(&trace, 30.0);

    println!("Fig. 5 — histogram of video session durations\n");
    let max_count = hist.counts().iter().copied().max().unwrap_or(1);
    for (lo, hi, count) in hist.rows() {
        let bar_len = (60 * count + max_count / 2) / max_count;
        println!(
            "{:>4.0}-{:<4.0} min | {:>5} | {}",
            lo,
            hi,
            count,
            "#".repeat(bar_len)
        );
    }
    println!();
    println!(
        "channels: {}  (paper: 1,566)    sessions: {}  (paper: 4,761)",
        summary.channels, summary.sessions
    );
    println!(
        "mean session: {:.0} min   median: {:.0} min   all ≤ 600 min after filtering",
        summary.mean_session_minutes, summary.median_session_minutes
    );
    println!(
        "total broadcast time: {:.0} h   peak single-slot viewers: {}",
        summary.total_broadcast_minutes / 60.0,
        summary.peak_viewers
    );
}
