//! Regenerates Table I: the published display power-saving strategies
//! with their claimed ranges, next to the savings *measured* by this
//! repository's transform implementations on a mixed content corpus.

use lpvs_bench::{genre_corpus, pct};
use lpvs_display::spec::{DisplayKind, DisplaySpec, Resolution};
use lpvs_display::strategy::{average_band, TABLE_I};

fn main() {
    let corpus = genre_corpus();
    let lcd = DisplaySpec::lcd_phone(Resolution::FHD);
    let oled = DisplaySpec::oled_phone(Resolution::FHD);

    println!("Table I — power-saving strategies (claimed vs measured)\n");
    println!(
        "{:>5} | {:<38} | {:>13} | {:>9}",
        "panel", "strategy", "claimed", "measured"
    );
    println!("{}", "-".repeat(75));
    for s in TABLE_I {
        let spec = match s.kind {
            DisplayKind::Lcd => &lcd,
            DisplayKind::Oled => &oled,
        };
        let measured = s.measured_saving(&corpus, spec);
        println!(
            "{:>5} | {:<38} | {:>5}-{:<6} | {:>9}",
            s.kind.to_string(),
            format!("{} {}", s.name, s.reference),
            pct(s.claimed_min),
            pct(s.claimed_max),
            pct(measured),
        );
    }
    let (lo, hi) = average_band();
    println!("{}", "-".repeat(75));
    println!(
        "average claimed band: {}-{}  (paper: 13%-49%; the Bayesian prior's [γ_L, γ_U])",
        pct(lo),
        pct(hi)
    );
}
