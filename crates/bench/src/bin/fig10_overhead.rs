//! Regenerates Fig. 10: LPVS scheduler running time vs. virtual-cluster
//! size, with the linear fit the paper reports — plus the telemetry
//! overhead check (recording disabled vs. enabled on the same slots).
//!
//! Writes `BENCH_fig10.json` at the repository root. `--smoke` runs a
//! reduced sweep for CI.

use lpvs_core::scheduler::LpvsScheduler;
use lpvs_edge::slot::SlotBudget;
use lpvs_emulator::experiment::{overhead, synthetic_problem};
use lpvs_emulator::report::render_overhead;
use lpvs_obs::json::Json;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[100, 250]
    } else {
        &[250, 500, 1000, 2000, 3000, 4000, 5000]
    };
    println!(
        "Fig. 10 — scheduler running time vs VC size{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let (rows, fit) = overhead(sizes, 2023);
    print!("{}", render_overhead(&rows, &fit));
    let slot_budget = 300.0;
    let capacity = if fit.slope > 0.0 {
        ((slot_budget - fit.intercept) / fit.slope) as u64
    } else {
        u64::MAX
    };
    println!(
        "\nextrapolated devices schedulable within one 5-minute slot: {capacity} \
         (paper: >5,000)"
    );

    // Telemetry overhead: the same slot problem scheduled with the
    // recorder off (NoopRecorder fast path: one atomic load per
    // instrumented site) and on (spans + histograms collected).
    let probe_n = if smoke { 200 } else { 1000 };
    let probe = ObsProbe::measure(probe_n);
    println!(
        "\ntelemetry overhead at N={probe_n}: disabled {:.6} s/slot, \
         enabled {:.6} s/slot ({:+.2} %), {} span events/slot",
        probe.noop_secs,
        probe.enabled_secs,
        probe.overhead_pct(),
        probe.events_per_run,
    );

    let artifact = Json::obj([
        ("figure", Json::Str("fig10".into())),
        ("smoke", Json::Bool(smoke)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("devices", Json::Num(r.devices as f64)),
                            ("runtime_secs", Json::Num(r.runtime_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fit",
            Json::obj([
                ("slope", Json::Num(fit.slope)),
                ("intercept", Json::Num(fit.intercept)),
                ("r_squared", Json::Num(fit.r_squared)),
            ]),
        ),
        ("extrapolated_capacity", Json::Num(capacity as f64)),
        (
            "obs_overhead",
            Json::obj([
                ("devices", Json::Num(probe_n as f64)),
                ("noop_secs", Json::Num(probe.noop_secs)),
                ("enabled_secs", Json::Num(probe.enabled_secs)),
                ("overhead_pct", Json::Num(probe.overhead_pct())),
                ("events_per_run", Json::Num(probe.events_per_run as f64)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig10.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_fig10.json");
    println!("wrote {path}");
}

/// Paired timing of the resilient scheduler with recording off and on.
struct ObsProbe {
    noop_secs: f64,
    enabled_secs: f64,
    events_per_run: usize,
}

impl ObsProbe {
    fn measure(n: usize) -> Self {
        let scheduler = LpvsScheduler::paper_default();
        let problem = synthetic_problem(n, 0.4 * n as f64, 1.0, 77);
        let budget = SlotBudget::unbounded();
        let reps = 5;
        // Warm-up (page in the problem, stabilize caches).
        let _ = scheduler.schedule_resilient(&problem, None, &budget);

        lpvs_obs::set_enabled(false);
        let t = Instant::now();
        for _ in 0..reps {
            let _ = scheduler.schedule_resilient(&problem, None, &budget);
        }
        let noop_secs = t.elapsed().as_secs_f64() / reps as f64;

        let recorder = lpvs_obs::init();
        recorder.reset();
        let t = Instant::now();
        for _ in 0..reps {
            let _ = scheduler.schedule_resilient(&problem, None, &budget);
        }
        let enabled_secs = t.elapsed().as_secs_f64() / reps as f64;
        let events_per_run = recorder.event_count() / reps;
        lpvs_obs::set_enabled(false);
        Self { noop_secs, enabled_secs, events_per_run }
    }

    fn overhead_pct(&self) -> f64 {
        if self.noop_secs <= 0.0 {
            return 0.0;
        }
        100.0 * (self.enabled_secs - self.noop_secs) / self.noop_secs
    }
}
