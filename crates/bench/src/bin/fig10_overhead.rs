//! Regenerates Fig. 10: LPVS scheduler running time vs. virtual-cluster
//! size, with the linear fit the paper reports.

use lpvs_emulator::experiment::overhead;
use lpvs_emulator::report::render_overhead;

fn main() {
    println!("Fig. 10 — scheduler running time vs VC size\n");
    let sizes = [250, 500, 1000, 2000, 3000, 4000, 5000];
    let (rows, fit) = overhead(&sizes, 2023);
    print!("{}", render_overhead(&rows, &fit));
    let slot_budget = 300.0;
    let capacity = if fit.slope > 0.0 {
        ((slot_budget - fit.intercept) / fit.slope) as u64
    } else {
        u64::MAX
    };
    println!(
        "\nextrapolated devices schedulable within one 5-minute slot: {capacity} \
         (paper: >5,000)"
    );
}
