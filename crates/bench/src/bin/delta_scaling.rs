//! Steady-state cost of delta-aware solving at provider scale.
//!
//! Drives the [`SyntheticDriver`] — a persistent fleet with a seeded
//! per-slot mutation schedule — through the pipelined runtime twice per
//! regime: once with deltas enabled (dirty frontiers shipped, workers
//! ride the reuse/incremental paths) and once with the *identical*
//! workload forced down the cold path. Two regimes bracket the design
//! space:
//!
//! - **steady**: 1% of the fleet mutates per slot — the paper's
//!   steady-state case, where almost every row's Phase-1 answer is
//!   still valid. The delta path must make these slots ≥ 10× cheaper
//!   at 100k devices.
//! - **churn**: half the fleet mutates per slot — past the incremental
//!   fraction gate, so every slot solves cold *through* the delta
//!   machinery. The bookkeeping must cost ≤ 5% over plain cold.
//!
//! Per-slot solve times come from the report's slot-resolved runtimes
//! with slot 0 excluded (the first solve is cold by construction in
//! both modes). Writes `BENCH_delta.json` at the repository root.
//! `--smoke` runs a reduced sweep for CI (no ratio assertions: shared
//! runners are too noisy for wall-clock bounds).

use lpvs_edge::fleet::{FleetConfig, Partitioner};
use lpvs_obs::json::Json;
use lpvs_runtime::{RuntimeConfig, SlotRuntime, SyntheticConfig, SyntheticDriver};

const SHARDS: usize = 4;
const STEADY_FRACTION: f64 = 0.01;
const CHURN_FRACTION: f64 = 0.5;
/// Steady-state slots must be at least this much cheaper than cold.
const TARGET_SPEEDUP: f64 = 10.0;
/// Churn-heavy slots may cost at most this ratio of plain cold.
const TARGET_CHURN_RATIO: f64 = 1.05;

/// Mean per-slot solve seconds over the steady-state tail (slot 0 — the
/// unavoidable all-dirty cold solve — excluded).
fn tail_slot_secs(devices: usize, slots: usize, fraction: f64, delta_enabled: bool) -> f64 {
    let mut config = SyntheticConfig::steady(devices, slots, 4242);
    config.mutation_fraction = fraction;
    config.delta_enabled = delta_enabled;
    let mut driver = SyntheticDriver::new(config);
    let estimators = driver.estimators();
    let runtime = SlotRuntime::new(RuntimeConfig {
        fleet: FleetConfig {
            num_shards: SHARDS,
            partitioner: Partitioner::Locality,
            ..FleetConfig::default()
        },
        ..RuntimeConfig::default()
    });
    let report = runtime.run(&mut driver, estimators);
    assert_eq!(report.summary.solved_slots, slots, "every slot must dispatch a solve");
    let tail: Vec<f64> = report
        .slot_solve_runtimes
        .iter()
        .filter(|(slot, _)| *slot > 0)
        .map(|(_, runtime)| runtime.as_secs_f64())
        .collect();
    assert!(!tail.is_empty(), "horizon too short to have a steady-state tail");
    tail.iter().sum::<f64>() / tail.len() as f64
}

struct Row {
    devices: usize,
    regime: &'static str,
    fraction: f64,
    cold_secs: f64,
    delta_secs: f64,
}

impl Row {
    /// Cold-per-delta: > 1 means the delta path is cheaper.
    fn speedup(&self) -> f64 {
        self.cold_secs / self.delta_secs
    }

    /// Delta-per-cold: the bookkeeping overhead ratio.
    fn ratio(&self) -> f64 {
        self.delta_secs / self.cold_secs
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[2_000] } else { &[10_000, 100_000] };
    let slots = if smoke { 4 } else { 8 };
    println!(
        "Delta scaling — steady-state slot cost, cold vs delta-aware, \
         {SHARDS} shards × {slots} slots{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:>9} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "devices", "regime", "mutation", "cold (s)", "delta (s)", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &devices in sizes {
        for (regime, fraction) in [("steady", STEADY_FRACTION), ("churn", CHURN_FRACTION)] {
            let cold_secs = tail_slot_secs(devices, slots, fraction, false);
            let delta_secs = tail_slot_secs(devices, slots, fraction, true);
            let row = Row { devices, regime, fraction, cold_secs, delta_secs };
            println!(
                "{:>9} {:>8} {:>10} {:>12.6} {:>12.6} {:>8.2}x",
                row.devices,
                row.regime,
                format!("{:.0}%", 100.0 * row.fraction),
                row.cold_secs,
                row.delta_secs,
                row.speedup(),
            );
            rows.push(row);
        }
    }

    let largest = *sizes.last().expect("nonempty sweep");
    let steady = rows
        .iter()
        .find(|r| r.devices == largest && r.regime == "steady")
        .expect("steady row at the largest size");
    let churn = rows
        .iter()
        .find(|r| r.devices == largest && r.regime == "churn")
        .expect("churn row at the largest size");
    println!(
        "\nN={largest}: steady-state speedup {:.2}x (target ≥ {TARGET_SPEEDUP}x), \
         churn ratio {:.3} (target ≤ {TARGET_CHURN_RATIO})",
        steady.speedup(),
        churn.ratio(),
    );

    let artifact = Json::obj([
        ("bench", Json::Str("delta_scaling".into())),
        ("smoke", Json::Bool(smoke)),
        ("shards", Json::Num(SHARDS as f64)),
        ("slots", Json::Num(slots as f64)),
        ("target_speedup", Json::Num(TARGET_SPEEDUP)),
        ("target_churn_ratio", Json::Num(TARGET_CHURN_RATIO)),
        ("steady_speedup_at_largest", Json::Num(steady.speedup())),
        ("churn_ratio_at_largest", Json::Num(churn.ratio())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("devices", Json::Num(r.devices as f64)),
                            ("regime", Json::Str(r.regime.into())),
                            ("mutation_fraction", Json::Num(r.fraction)),
                            ("cold_slot_secs", Json::Num(r.cold_secs)),
                            ("delta_slot_secs", Json::Num(r.delta_secs)),
                            ("speedup", Json::Num(r.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_delta.json");
    println!("wrote {path}");

    if !smoke {
        assert!(
            steady.speedup() >= TARGET_SPEEDUP,
            "steady-state slots are only {:.2}x cheaper than cold (target {TARGET_SPEEDUP}x)",
            steady.speedup()
        );
        assert!(
            churn.ratio() <= TARGET_CHURN_RATIO,
            "churn-heavy delta bookkeeping costs {:.3}x cold (target {TARGET_CHURN_RATIO}x)",
            churn.ratio()
        );
    }
}
