//! Columnar-vs-scalar baseline for the two hot fleet kernels, as a
//! committed artifact.
//!
//! The criterion bench (`benches/fleet_kernels.rs`) measures the same
//! kernels interactively; this binary pins the columnar advantage into
//! `BENCH_kernels.json` so the bench sentinel can gate regressions: the
//! SoA [`DeviceFleet::transform_feasible`] / [`DeviceFleet::device_objective`]
//! sweeps must stay ahead of the same arithmetic over pre-materialized
//! [`DeviceRequest`] rows. The delta is pure memory layout (SoA columns
//! vs AoS rows), not algorithm — a ratio collapse means someone broke
//! the columnar layout.
//!
//! [`DeviceFleet::transform_feasible`]: lpvs_core::fleet::DeviceFleet::transform_feasible
//! [`DeviceFleet::device_objective`]: lpvs_core::fleet::DeviceFleet::device_objective
//! [`DeviceRequest`]: lpvs_core::problem::DeviceRequest

use lpvs_core::compact::compact_device;
use lpvs_core::fleet::{DeviceFleet, FleetDevice};
use lpvs_core::objective::device_objective;
use lpvs_core::problem::DeviceRequest;
use lpvs_obs::json::Json;
use lpvs_survey::curve::AnxietyCurve;
use std::hint::black_box;
use std::time::Instant;

const DEVICES: usize = 4096;
const CHUNKS: usize = 30;

fn corpus() -> (DeviceFleet, Vec<DeviceRequest>) {
    let mut fleet = DeviceFleet::with_capacity(DEVICES, CHUNKS);
    for d in 0..DEVICES {
        fleet.push(FleetDevice::from_request(DeviceRequest::uniform(
            0.8 + 0.05 * (d % 7) as f64,
            10.0,
            CHUNKS,
            2_000.0 + 37.0 * (d % 101) as f64,
            55_440.0,
            0.1 + 0.006 * (d % 97) as f64,
            1.0,
            0.1,
        )));
    }
    let requests = (0..DEVICES).map(|d| fleet.device_request(d)).collect();
    (fleet, requests)
}

/// Median seconds per pass over `iters` timed passes (after warmup).
fn median_secs(iters: usize, mut pass: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        pass();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            pass();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Kernel {
    name: &'static str,
    columnar_secs: f64,
    scalar_secs: f64,
}

impl Kernel {
    /// Scalar-per-columnar: > 1 means the columnar layout wins.
    fn advantage(&self) -> f64 {
        self.scalar_secs / self.columnar_secs
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 40 } else { 200 };
    let (fleet, requests) = corpus();
    let curve = AnxietyCurve::paper_shape();
    let lambda = 1.0;

    let kernels = vec![
        Kernel {
            name: "transform_feasible",
            columnar_secs: median_secs(iters, || {
                let mut feasible = 0usize;
                for d in 0..DEVICES {
                    feasible += usize::from(black_box(&fleet).transform_feasible(d));
                }
                black_box(feasible);
            }),
            scalar_secs: median_secs(iters, || {
                let mut feasible = 0usize;
                for request in black_box(&requests) {
                    feasible += usize::from(compact_device(request).transform_feasible);
                }
                black_box(feasible);
            }),
        },
        Kernel {
            name: "device_objective",
            columnar_secs: median_secs(iters, || {
                let mut total = 0.0;
                for d in 0..DEVICES {
                    total += black_box(&fleet).device_objective(d, d % 2 == 0, lambda, &curve);
                }
                black_box(total);
            }),
            scalar_secs: median_secs(iters, || {
                let mut total = 0.0;
                for (d, request) in black_box(&requests).iter().enumerate() {
                    total += device_objective(request, d % 2 == 0, lambda, &curve);
                }
                black_box(total);
            }),
        },
    ];

    println!("Fleet kernel baselines — {DEVICES} devices × {CHUNKS} chunks, median of {iters}\n");
    println!("{:>20} {:>14} {:>14} {:>10}", "kernel", "columnar (s)", "scalar (s)", "advantage");
    for k in &kernels {
        println!(
            "{:>20} {:>14.9} {:>14.9} {:>9.2}x",
            k.name,
            k.columnar_secs,
            k.scalar_secs,
            k.advantage()
        );
    }

    let artifact = Json::obj([
        ("bench", Json::Str("fleet_kernels_baseline".into())),
        ("smoke", Json::Bool(smoke)),
        ("devices", Json::Num(DEVICES as f64)),
        ("chunks", Json::Num(CHUNKS as f64)),
        ("iters", Json::Num(iters as f64)),
        (
            "kernels",
            Json::Arr(
                kernels
                    .iter()
                    .map(|k| {
                        Json::obj([
                            ("name", Json::Str(k.name.into())),
                            ("columnar_secs", Json::Num(k.columnar_secs)),
                            ("scalar_secs", Json::Num(k.scalar_secs)),
                            ("scalar_over_columnar", Json::Num(k.advantage())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}
