//! Batched-vs-scalar baseline for the two hot fleet kernels, as a
//! committed artifact.
//!
//! The criterion bench (`benches/fleet_kernels.rs`) measures the same
//! kernels interactively; this binary pins the batched-columnar
//! advantage into `BENCH_kernels.json` so the bench sentinel can gate
//! regressions. Three legs per kernel:
//!
//! * **batched** — [`transform_feasible_batch`] / [`device_objective_batch`]
//!   over [`FleetColumns`], on whatever kernel path is active (AVX2
//!   where detected, unless `LPVS_KERNELS` overrides it);
//! * **scalar** — the same batch entry points forced onto the portable
//!   scalar fallback via [`set_forced_path`];
//! * **row** — the original per-row path: the same arithmetic over
//!   pre-materialized [`DeviceRequest`] rows ([`compact_device`] /
//!   [`device_objective`]).
//!
//! The sweep covers fleet sizes {4k, 64k, 256k} × chunk distributions
//! {short: 8, long: 30, mixed: 1–30}, recording per-shape ratios. The
//! **headline** shape (4096 devices × long) is the corpus this artifact
//! has always measured; its ratios carry the sentinel gates: batched
//! must beat the row path ≥2× on `transform_feasible` and ≥1.5× on
//! `device_objective`, and the forced-scalar fallback must stay within
//! 1.1× of the row path (`row_over_scalar ≥ 1/1.1`).
//!
//! `--smoke` restricts the sweep to the 4k shapes with fewer timed
//! passes; `--out <path>` redirects the artifact (so CI's forced-scalar
//! rerun does not clobber the committed file).
//!
//! [`transform_feasible_batch`]: lpvs_core::transform_feasible_batch
//! [`device_objective_batch`]: lpvs_core::device_objective_batch
//! [`FleetColumns`]: lpvs_core::FleetColumns
//! [`set_forced_path`]: lpvs_core::set_forced_path
//! [`DeviceRequest`]: lpvs_core::problem::DeviceRequest
//! [`compact_device`]: lpvs_core::compact::compact_device
//! [`device_objective`]: lpvs_core::objective::device_objective

use lpvs_core::compact::compact_device;
use lpvs_core::fleet::{DeviceFleet, FleetDevice};
use lpvs_core::objective::device_objective;
use lpvs_core::problem::DeviceRequest;
use lpvs_core::{
    active_path, detected_path, device_objective_batch, set_forced_path, transform_feasible_batch,
    KernelPath, Select,
};
use lpvs_obs::json::Json;
use lpvs_survey::curve::AnxietyCurve;
use std::hint::black_box;
use std::time::Instant;

/// The shape whose ratios carry the sentinel gates — the 4096×30
/// corpus this artifact has measured since it was introduced.
const HEADLINE: (usize, Dist) = (4096, Dist::Long);

#[derive(Clone, Copy, PartialEq)]
enum Dist {
    /// Every device holds 8 chunks — per-group overhead dominates.
    Short,
    /// Every device holds 30 chunks (the paper's slot horizon).
    Long,
    /// Chunk counts cycle 1–30 — ragged lanes, scalar finishes.
    Mixed,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Short => "short",
            Dist::Long => "long",
            Dist::Mixed => "mixed",
        }
    }

    fn chunks(self, device: usize) -> usize {
        match self {
            Dist::Short => 8,
            Dist::Long => 30,
            Dist::Mixed => 1 + device % 30,
        }
    }
}

fn corpus(devices: usize, dist: Dist) -> (DeviceFleet, Vec<DeviceRequest>) {
    let mut fleet = DeviceFleet::with_capacity(devices, 30);
    for d in 0..devices {
        fleet.push(FleetDevice::from_request(DeviceRequest::uniform(
            0.8 + 0.05 * (d % 7) as f64,
            10.0,
            dist.chunks(d),
            2_000.0 + 37.0 * (d % 101) as f64,
            55_440.0,
            0.1 + 0.006 * (d % 97) as f64,
            1.0,
            0.1,
        )));
    }
    let requests = (0..devices).map(|d| fleet.device_request(d)).collect();
    (fleet, requests)
}

/// 5th-percentile seconds per pass over `iters` timed passes (after
/// warmup). The low percentile, not the median: these passes run on
/// shared machines where scheduler interference inflates most samples,
/// and the near-minimum is the stable estimate of what the kernel
/// actually costs.
fn p05_secs(iters: usize, mut pass: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        pass();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            pass();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 20]
}

struct Legs {
    name: &'static str,
    batched_secs: f64,
    scalar_secs: f64,
    row_secs: f64,
}

impl Legs {
    /// Row-per-batched: > 1 means the batched kernel beats the old
    /// per-row path.
    fn row_over_batched(&self) -> f64 {
        self.row_secs / self.batched_secs
    }

    /// Row-per-scalar: ≥ 1/1.1 means the portable scalar fallback is
    /// within 1.1× of the old per-row path.
    fn row_over_scalar(&self) -> f64 {
        self.row_secs / self.scalar_secs
    }

    /// Scalar-per-batched: the vector path's edge over the portable
    /// batch kernel on this shape.
    fn scalar_over_batched(&self) -> f64 {
        self.scalar_secs / self.batched_secs
    }

    fn json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.into())),
            ("batched_secs", Json::Num(self.batched_secs)),
            ("scalar_secs", Json::Num(self.scalar_secs)),
            ("row_secs", Json::Num(self.row_secs)),
            ("row_over_batched", Json::Num(self.row_over_batched())),
            ("row_over_scalar", Json::Num(self.row_over_scalar())),
            ("scalar_over_batched", Json::Num(self.scalar_over_batched())),
        ])
    }
}

fn measure_shape(devices: usize, dist: Dist, iters: usize, curve: &AnxietyCurve) -> [Legs; 2] {
    let (fleet, requests) = corpus(devices, dist);
    let cols = fleet.columns();
    let indices: Vec<usize> = (0..devices).collect();
    let sel: Vec<bool> = (0..devices).map(|d| d % 2 == 0).collect();
    let lambda = 1.0;

    let mut flags = Vec::new();
    let feasible_batched = p05_secs(iters, || {
        flags.clear();
        transform_feasible_batch(black_box(&cols), &indices, &mut flags);
        black_box(&flags);
    });
    set_forced_path(Some(KernelPath::Scalar));
    let feasible_scalar = p05_secs(iters, || {
        flags.clear();
        transform_feasible_batch(black_box(&cols), &indices, &mut flags);
        black_box(&flags);
    });
    set_forced_path(None);
    let feasible_row = p05_secs(iters, || {
        let mut n = 0usize;
        for request in black_box(&requests) {
            n += usize::from(compact_device(request).transform_feasible);
        }
        black_box(n);
    });

    let mut values = Vec::new();
    let objective_batched = p05_secs(iters, || {
        values.clear();
        device_objective_batch(
            black_box(&cols),
            &indices,
            Select::PerRow(&sel),
            lambda,
            curve,
            &mut values,
        );
        black_box(&values);
    });
    set_forced_path(Some(KernelPath::Scalar));
    let objective_scalar = p05_secs(iters, || {
        values.clear();
        device_objective_batch(
            black_box(&cols),
            &indices,
            Select::PerRow(&sel),
            lambda,
            curve,
            &mut values,
        );
        black_box(&values);
    });
    set_forced_path(None);
    let objective_row = p05_secs(iters, || {
        let mut total = 0.0;
        for (d, request) in black_box(&requests).iter().enumerate() {
            total += device_objective(request, d % 2 == 0, lambda, curve);
        }
        black_box(total);
    });

    [
        Legs {
            name: "transform_feasible",
            batched_secs: feasible_batched,
            scalar_secs: feasible_scalar,
            row_secs: feasible_row,
        },
        Legs {
            name: "device_objective",
            batched_secs: objective_batched,
            scalar_secs: objective_scalar,
            row_secs: objective_row,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
        });

    let sizes: &[(usize, usize)] = if smoke {
        &[(4096, 60)]
    } else {
        &[(4096, 200), (65_536, 40), (262_144, 12)]
    };
    let dists = [Dist::Short, Dist::Long, Dist::Mixed];
    let curve = AnxietyCurve::paper_shape();

    println!(
        "Fleet kernel baselines — batched path {}, detected {}\n",
        active_path().name(),
        detected_path().name()
    );
    println!(
        "{:>8} {:>6} {:>20} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "devices", "dist", "kernel", "batched (s)", "scalar (s)", "row (s)", "row/bat", "row/scal"
    );

    let mut shapes = Vec::new();
    let mut headline: Option<Json> = None;
    for &(devices, iters) in sizes {
        for dist in dists {
            let legs = measure_shape(devices, dist, iters, &curve);
            for leg in &legs {
                println!(
                    "{:>8} {:>6} {:>20} {:>13.9} {:>13.9} {:>13.9} {:>8.2}x {:>8.2}x",
                    devices,
                    dist.name(),
                    leg.name,
                    leg.batched_secs,
                    leg.scalar_secs,
                    leg.row_secs,
                    leg.row_over_batched(),
                    leg.row_over_scalar(),
                );
            }
            if (devices, dist) == HEADLINE {
                headline = Some(Json::obj([
                    ("devices", Json::Num(devices as f64)),
                    ("dist", Json::Str(dist.name().into())),
                    ("chunks", Json::Num(30.0)),
                    ("transform_feasible", legs[0].json()),
                    ("device_objective", legs[1].json()),
                ]));
            }
            shapes.push(Json::obj([
                ("devices", Json::Num(devices as f64)),
                ("dist", Json::Str(dist.name().into())),
                ("iters", Json::Num(iters as f64)),
                ("kernels", Json::Arr(legs.iter().map(Legs::json).collect())),
            ]));
        }
    }

    let artifact = Json::obj([
        ("bench", Json::Str("fleet_kernels_baseline".into())),
        ("smoke", Json::Bool(smoke)),
        ("batched_path", Json::Str(active_path().name().into())),
        ("detected_path", Json::Str(detected_path().name().into())),
        ("headline", headline.expect("headline shape measured")),
        ("shapes", Json::Arr(shapes)),
    ]);
    std::fs::write(&out, format!("{artifact}\n")).expect("write kernel baseline artifact");
    println!("\nwrote {out}");
}
