//! Regenerates Fig. 8: energy saving (a) and anxiety reduction (b)
//! under limited edge resource (VC sizes 100–500 against a 100-stream
//! server), swept over the regularization parameter λ.

use lpvs_emulator::experiment::limited_capacity;
use lpvs_emulator::report::render_limited;

fn main() {
    println!("Fig. 8 — LPVS under limited edge resource (λ sweep)\n");
    // λ is provider-chosen and the paper leaves its units/values
    // unspecified (Remark 3); with duration-weighted objectives (λ in
    // J per anxiety-second) the balance shifts visibly over this range.
    let rows = limited_capacity(&[100, 200, 300, 400, 500], &[1.0, 25.0, 50.0, 100.0], 12, 2021);
    print!("{}", render_limited(&rows));
    println!(
        "shape checks (paper): saving falls with VC size; a larger λ trades \
         energy saving\nfor anxiety reduction."
    );
}
