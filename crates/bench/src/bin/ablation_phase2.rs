//! Ablation: what does Phase-2 (anxiety-driven swapping) buy over the
//! pure Phase-1 ILP? (DESIGN.md §5.)
//!
//! The comparison runs paired emulations under a *tight* server, where
//! selection actually matters, and reports realized energy and anxiety
//! for both scheduler variants.

use lpvs_bench::pct;
use lpvs_core::baseline::Policy;
use lpvs_core::scheduler::LpvsScheduler;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use lpvs_emulator::experiment::synthetic_problem;

fn main() {
    println!("Ablation — Phase-2 swapping on/off\n");

    // (1) Single-slot objective comparison on synthetic problems.
    println!("single-slot objective (eq. 13), capacity 25 units, N = 120:");
    println!("{:>8} | {:>14} | {:>14} | {:>12}", "λ", "phase-1 only", "with phase-2", "improvement");
    println!("{}", "-".repeat(58));
    // Within a single slot the anxiety term is second-order (battery
    // moves < 1 %), so swaps engage only once λ is large enough to make
    // anxiety competitive with per-slot energy differences.
    for lambda in [1.0, 25.0, 50.0, 100.0, 200.0] {
        let problem = synthetic_problem(120, 25.0, lambda, 77);
        let p1 = LpvsScheduler::phase1_only().schedule(&problem).unwrap();
        let full = LpvsScheduler::paper_default().schedule(&problem).unwrap();
        println!(
            "{:>8.1} | {:>14.1} | {:>14.1} | {:>11}",
            lambda,
            p1.stats.objective,
            full.stats.objective,
            pct((p1.stats.objective - full.stats.objective) / p1.stats.objective),
        );
    }

    // (2) Whole-emulation effect on anxiety, tight server.
    println!("\nemulated hour, 150 devices, 30-stream server, λ = 50:");
    let config = EmulatorConfig {
        devices: 150,
        slots: 12,
        seed: 4,
        lambda: 50.0,
        server_streams: 30,
        ..EmulatorConfig::default()
    };
    let baseline = Emulator::new(config, Policy::NoTransform).run();
    let full = Emulator::new(config, Policy::Lpvs).run();
    let p1_report = Emulator::new(config, Policy::LpvsPhase1Only).run();
    println!(
        "{:>22} | {:>14} | {:>18}",
        "variant", "energy saving", "anxiety reduction"
    );
    println!("{}", "-".repeat(62));
    for (name, report) in [
        ("phase-1 only", &p1_report),
        ("full LPVS (P1+P2)", &full),
    ] {
        println!(
            "{:>22} | {:>14} | {:>18}",
            name,
            pct(report.display_saving_ratio()),
            pct(report.anxiety_reduction_vs(&baseline)),
        );
    }
    println!(
        "\nreading: Phase-2 gives up a little energy saving to serve anxious \
         viewers,\nimproving the joint objective at every λ and the anxiety \
         reduction under pressure."
    );
}
