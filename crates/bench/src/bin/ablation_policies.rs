//! Ablation: LPVS against the selection baselines of §III-C
//! (DESIGN.md §5) under a tight server, where *who* gets the transform
//! matters.

use lpvs_bench::pct;
use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};

fn main() {
    println!("Ablation — selection policies under a 30-stream server, 150 devices\n");
    let config = EmulatorConfig {
        devices: 150,
        slots: 12,
        seed: 23,
        lambda: 1.0,
        server_streams: 30,
        ..EmulatorConfig::default()
    };
    let baseline = Emulator::new(config, Policy::NoTransform).run();

    println!(
        "{:>16} | {:>14} | {:>18} | {:>10}",
        "policy", "energy saving", "anxiety reduction", "abandoned"
    );
    println!("{}", "-".repeat(70));
    for policy in [
        Policy::Random { seed: 1 },
        Policy::LowestBattery,
        Policy::HighestSaving,
        Policy::Lpvs,
    ] {
        let report = Emulator::new(config, policy).run();
        println!(
            "{:>16} | {:>14} | {:>18} | {:>4} vs {:>3}",
            match policy {
                Policy::Random { .. } => "random",
                Policy::LowestBattery => "lowest-battery",
                Policy::HighestSaving => "highest-saving",
                Policy::Lpvs => "LPVS",
                _ => unreachable!(),
            },
            pct(report.display_saving_ratio()),
            pct(report.anxiety_reduction_vs(&baseline)),
            report.abandonments(),
            baseline.abandonments(),
        );
    }
    println!(
        "\nreading (§III-C): random selection wastes capacity on insensitive \
         users;\nLPVS matches the greedy saver on energy while serving the \
         anxious ones."
    );
}
