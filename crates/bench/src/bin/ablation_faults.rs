//! Fault ablation: sweeps a uniform per-slot fault rate (device
//! disconnects, corrupt γ telemetry, edge brownouts, solver-budget
//! cuts) and reports how much of the Fig. 7 headline survives, plus
//! how often the scheduler's degradation ladder had to leave its
//! exact solver.

use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use lpvs_emulator::experiment::fault_sweep;
use lpvs_emulator::faults::FaultConfig;
use lpvs_emulator::report::{render_degradation, render_faults};

fn main() {
    println!("Fault ablation — LPVS under injected faults\n");
    let rows = fault_sweep(&[0.0, 0.05, 0.10, 0.20, 0.30], 50, 24, 2020);
    print!("{}", render_faults(&rows));

    // Per-tier ledger of a representative 10 % run (the acceptance
    // operating point).
    let config = EmulatorConfig {
        devices: 50,
        slots: 24,
        seed: 2020,
        server_streams: 300,
        faults: FaultConfig::uniform(0.10, 2020 ^ 0xFA17),
        ..EmulatorConfig::default()
    };
    let report = Emulator::new(config, Policy::Lpvs).run();
    println!("\nat the 10% operating point:");
    print!("{}", render_degradation(&report));
}
