//! Fault ablation: sweeps a uniform per-slot fault rate (device
//! disconnects, corrupt γ telemetry, edge brownouts, solver-budget
//! cuts) and reports how much of the Fig. 7 headline survives, plus
//! how often the scheduler's degradation ladder had to leave its
//! exact solver.
//!
//! Writes `BENCH_faults.json` at the repository root. `--smoke` runs a
//! reduced sweep for CI.

use lpvs_core::baseline::Policy;
use lpvs_core::scheduler::Degradation;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use lpvs_emulator::experiment::fault_sweep;
use lpvs_emulator::faults::FaultConfig;
use lpvs_emulator::report::{render_degradation, render_faults};
use lpvs_obs::json::Json;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, devices, slots): (&[f64], usize, usize) = if smoke {
        (&[0.0, 0.10], 16, 8)
    } else {
        (&[0.0, 0.05, 0.10, 0.20, 0.30], 50, 24)
    };
    println!(
        "Fault ablation — LPVS under injected faults{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let rows = fault_sweep(rates, devices, slots, 2020);
    print!("{}", render_faults(&rows));

    // Per-tier ledger of a representative 10 % run (the acceptance
    // operating point), with the telemetry recorder on so the run also
    // exercises the per-tier latency histograms.
    let recorder = lpvs_obs::init();
    recorder.reset();
    let config = EmulatorConfig {
        devices,
        slots,
        seed: 2020,
        server_streams: 6 * devices,
        faults: FaultConfig::uniform(0.10, 2020 ^ 0xFA17),
        ..EmulatorConfig::default()
    };
    let report = Emulator::new(config, Policy::Lpvs).run();
    lpvs_obs::set_enabled(false);
    println!("\nat the 10% operating point:");
    print!("{}", render_degradation(&report));

    let snapshot = report.obs.clone().unwrap_or_default();
    let tiers = Json::Obj(
        Degradation::ALL
            .iter()
            .map(|tier| {
                let name = tier.label().replace('-', "_");
                let count = snapshot
                    .metrics
                    .counter(&format!("sched_tier_{name}_total"))
                    .unwrap_or(0);
                (name, Json::Num(count as f64))
            })
            .collect(),
    );
    let artifact = Json::obj([
        ("figure", Json::Str("ablation_faults".into())),
        ("smoke", Json::Bool(smoke)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("fault_rate", Json::Num(r.fault_rate)),
                            ("energy_saving", Json::Num(r.energy_saving)),
                            ("anxiety_reduction", Json::Num(r.anxiety_reduction)),
                            ("degraded_slots", Json::Num(r.degraded_slots as f64)),
                            ("total_slots", Json::Num(r.total_slots as f64)),
                            (
                                "recovery_slots",
                                match r.recovery_slots {
                                    Some(v) => Json::Num(v),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "operating_point",
            Json::obj([
                ("fault_rate", Json::Num(0.10)),
                ("degraded_slots", Json::Num(report.degraded_slots() as f64)),
                ("tier_counts", tiers),
                ("span_events", Json::Num(snapshot.span_events as f64)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_faults.json");
    println!("wrote {path}");
}
