//! Loopback stress harness for `lpvs-serve`: where does the service
//! saturate, and how does it behave past that point?
//!
//! Boots an in-process server (interval slot clock, so the slot
//! pipeline runs concurrently with the load), admits a diurnal session
//! population, then replays telemetry at ramped offered rates whose
//! instantaneous intensity follows the [`diurnal_factor`] envelope —
//! one compressed trace day per load level, the same shape
//! `lpvs-trace` gives capacity studies.
//!
//! Per level it reports achieved throughput, p50/p99 request latency,
//! the shed fraction (429s from the bounded connection and op queues),
//! and the 5xx count. The acceptance claims this binary checks:
//!
//! * **below saturation**: zero 5xx — overload never turns into server
//!   errors;
//! * **beyond saturation**: the server *sheds* (429 fraction grows) but
//!   never hangs — every request is answered inside the client timeout.
//!
//! Writes `BENCH_serve.json` at the repository root; the committed
//! smoke numbers (`smoke.p99_secs`, `smoke.shed_fraction`) are gated by
//! the bench sentinel. `--smoke` runs the single smoke operating point
//! for CI.
//!
//! [`diurnal_factor`]: lpvs_trace::diurnal::diurnal_factor

use lpvs_obs::json::Json;
use lpvs_serve::{serve, ServeConfig, TickMode};
use lpvs_trace::diurnal::{diurnal_factor, SLOTS_PER_DAY};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Diurnal envelope: prime time carries 3x the dawn trough.
const TROUGH: f64 = 0.5;
const PEAK: f64 = 1.5;
/// A level whose shed fraction exceeds this is saturated.
const SATURATION_SHED: f64 = 0.05;

/// One request over one connection; returns `(status, seconds)`.
fn timed_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, f64)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok()?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nhost: stress\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    Some((status, started.elapsed().as_secs_f64()))
}

struct LevelStats {
    rps_target: f64,
    total: u64,
    shed: u64,
    http_5xx: u64,
    transport_errors: u64,
    achieved_rps: f64,
    p50_secs: f64,
    p99_secs: f64,
}

impl LevelStats {
    fn shed_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.shed as f64 / self.total as f64
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Offers ~`rps` telemetry requests for `secs`, intensity following one
/// compressed diurnal day, across `clients` threads.
fn run_level(addr: SocketAddr, rps: f64, secs: f64, clients: usize, devices: usize) -> LevelStats {
    let end = Instant::now() + Duration::from_secs_f64(secs);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies: Vec<f64> = Vec::new();
                    let (mut total, mut shed, mut errs_5xx, mut transport) = (0u64, 0u64, 0u64, 0u64);
                    let mut i = c;
                    while Instant::now() < end {
                        // Map elapsed time onto one diurnal day so the
                        // offered intensity breathes like a real trace.
                        let frac = 1.0 - (end - Instant::now()).as_secs_f64() / secs;
                        let slot = (frac * SLOTS_PER_DAY as f64) as u64;
                        let factor = diurnal_factor(slot, TROUGH, PEAK);
                        let device = i % devices;
                        let body = format!(
                            "{{\"device\":{device},\"energy_j\":{},\"observed\":{:.3}}}",
                            12000 + (i % 9000),
                            0.3 + 0.0001 * (i % 1000) as f64
                        );
                        match timed_request(addr, "POST", "/v1/telemetry", &body) {
                            Some((status, latency)) => {
                                total += 1;
                                latencies.push(latency);
                                match status {
                                    429 => shed += 1,
                                    500..=599 => errs_5xx += 1,
                                    _ => {}
                                }
                            }
                            None => transport += 1,
                        }
                        i += clients;
                        // Pace to the diurnally-modulated offered rate;
                        // below sleep granularity just burst.
                        let interval = clients as f64 / (rps * factor);
                        if interval > 0.000_5 {
                            std::thread::sleep(Duration::from_secs_f64(interval.min(0.25)));
                        }
                    }
                    (latencies, total, shed, errs_5xx, transport)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = Vec::new();
    let (mut total, mut shed, mut http_5xx, mut transport_errors) = (0u64, 0u64, 0u64, 0u64);
    for (l, t, s, e, x) in results {
        latencies.extend(l);
        total += t;
        shed += s;
        http_5xx += e;
        transport_errors += x;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    LevelStats {
        rps_target: rps,
        total,
        shed,
        http_5xx,
        transport_errors,
        achieved_rps: total as f64 / elapsed,
        p50_secs: percentile(&latencies, 0.50),
        p99_secs: percentile(&latencies, 0.99),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let devices = if smoke { 64 } else { 256 };
    let clients = if smoke { 4 } else { 8 };
    let level_secs = if smoke { 2.0 } else { 3.0 };
    let levels: &[f64] = if smoke { &[300.0] } else { &[250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0] };

    // A deliberately tight operating envelope: a 100 ms slot clock
    // draining a 256-deep op queue bounds sustainable ingest at about
    // 2.5k ops/s — the sweep crosses that, so the artifact shows both
    // regimes (clean service below, graceful shedding beyond).
    let mut config = ServeConfig::loopback(devices);
    config.tick = TickMode::Interval(Duration::from_millis(100));
    config.http_workers = 4;
    config.conn_queue = 64;
    config.ops_queue = 256;
    let handle = serve(config).expect("bind loopback server");
    let addr = handle.addr;

    // Wait for the slot loop to go live, then admit the session
    // population the telemetry stream will mutate.
    loop {
        if let Some((200, _)) = timed_request(addr, "GET", "/healthz", "") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut admitted = 0usize;
    for device in 0..devices {
        let body = format!(
            "{{\"action\":\"arrive\",\"device\":{device},\"energy_j\":{},\"gamma\":0.3}}",
            15000 + 50 * device
        );
        match timed_request(addr, "POST", "/v1/sessions", &body) {
            Some((202, _)) => admitted += 1,
            Some((429, _)) => break, // admission-controlled edge is full
            other => panic!("arrival for {device} failed: {other:?}"),
        }
    }
    println!(
        "serve_stress — {devices} devices ({admitted} admitted), {clients} clients, \
         diurnal envelope [{TROUGH}, {PEAK}]{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>6} {:>10} {:>10} {:>8}",
        "offered", "achieved", "total", "shed", "5xx", "p50 (ms)", "p99 (ms)", "shed %"
    );

    let mut rows: Vec<LevelStats> = Vec::new();
    let mut saturation_rps: Option<f64> = None;
    for &rps in levels {
        let stats = run_level(addr, rps, level_secs, clients, devices);
        println!(
            "{:>10.0} {:>10.0} {:>8} {:>8} {:>6} {:>10.2} {:>10.2} {:>7.1}%",
            stats.rps_target,
            stats.achieved_rps,
            stats.total,
            stats.shed,
            stats.http_5xx,
            1e3 * stats.p50_secs,
            1e3 * stats.p99_secs,
            100.0 * stats.shed_fraction(),
        );
        if saturation_rps.is_none() && stats.shed_fraction() > SATURATION_SHED {
            saturation_rps = Some(stats.rps_target);
        }
        // Below saturation the service must answer without server
        // errors; beyond it, it sheds — it never converts load into 5xx.
        if saturation_rps.is_none() || saturation_rps == Some(stats.rps_target) {
            assert_eq!(stats.http_5xx, 0, "5xx below saturation at {rps} rps");
        }
        rows.push(stats);
    }

    // Graceful drain: every in-flight slot joins, the final checkpoint
    // round seals (a kill here would resume bit-identically).
    let _ = timed_request(addr, "POST", "/v1/shutdown", "{}");
    handle.join();

    let smoke_row = &rows[0];
    match saturation_rps {
        Some(rps) => println!("\nsaturation at ~{rps:.0} rps offered (shed > {SATURATION_SHED})"),
        None => println!("\nno saturation within the swept levels"),
    }

    let artifact = Json::obj([
        ("bench", Json::Str("serve_stress".into())),
        ("smoke_mode", Json::Bool(smoke)),
        ("devices", Json::Num(devices as f64)),
        ("admitted", Json::Num(admitted as f64)),
        ("clients", Json::Num(clients as f64)),
        ("diurnal_trough", Json::Num(TROUGH)),
        ("diurnal_peak", Json::Num(PEAK)),
        (
            "saturation_rps",
            saturation_rps.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "smoke",
            Json::obj([
                ("rps_target", Json::Num(smoke_row.rps_target)),
                ("achieved_rps", Json::Num(smoke_row.achieved_rps)),
                ("p50_secs", Json::Num(smoke_row.p50_secs)),
                ("p99_secs", Json::Num(smoke_row.p99_secs)),
                ("shed_fraction", Json::Num(smoke_row.shed_fraction())),
                ("http_5xx", Json::Num(smoke_row.http_5xx as f64)),
            ]),
        ),
        (
            "levels",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("rps_target", Json::Num(r.rps_target)),
                            ("achieved_rps", Json::Num(r.achieved_rps)),
                            ("total", Json::Num(r.total as f64)),
                            ("shed", Json::Num(r.shed as f64)),
                            ("http_5xx", Json::Num(r.http_5xx as f64)),
                            ("transport_errors", Json::Num(r.transport_errors as f64)),
                            ("p50_secs", Json::Num(r.p50_secs)),
                            ("p99_secs", Json::Num(r.p99_secs)),
                            ("shed_fraction", Json::Num(r.shed_fraction())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
