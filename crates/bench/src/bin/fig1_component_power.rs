//! Regenerates Fig. 1: per-component smartphone power during video
//! playback, for an LCD and an OLED phone.

use lpvs_display::component::{ComponentBudget, PhoneComponent};
use lpvs_display::spec::DisplayKind;

fn main() {
    println!("Fig. 1 — component power during video playback (mW)\n");
    println!(
        "{:>10} | {:>9} | {:>9} | {:>7} | {:>7}",
        "component", "LCD phone", "OLED phone", "LCD %", "OLED %"
    );
    println!("{}", "-".repeat(56));
    let lcd = ComponentBudget::video_playback(DisplayKind::Lcd);
    let oled = ComponentBudget::video_playback(DisplayKind::Oled);
    for c in PhoneComponent::ALL {
        println!(
            "{:>10} | {:>9.0} | {:>10.0} | {:>6.1}% | {:>6.1}%",
            c.to_string(),
            lcd.milliwatts(c),
            oled.milliwatts(c),
            100.0 * lcd.fraction(c),
            100.0 * oled.fraction(c),
        );
    }
    println!("{}", "-".repeat(56));
    println!(
        "{:>10} | {:>9.0} | {:>10.0} |",
        "total",
        lcd.total_mw(),
        oled.total_mw()
    );
    println!(
        "\nshape check: display dominates on both phones \
         (LCD {:.0}%, OLED {:.0}% of total) — the paper's Fig. 1 takeaway.",
        100.0 * lcd.fraction(PhoneComponent::Display),
        100.0 * oled.fraction(PhoneComponent::Display),
    );
}
