//! Regenerates Table II: survey cohort composition (counts and
//! percentages) next to the published frequencies.

use lpvs_survey::generator::SurveyGenerator;
use lpvs_survey::summary::SurveySummary;

/// Published Table II frequencies, in `table2_rows` order.
const PAPER: [(&str, usize); 16] = [
    ("Male", 1095),
    ("Female", 937),
    ("Under18", 9),
    ("From18To25", 888),
    ("From25To35", 460),
    ("From35To45", 250),
    ("From45To65", 119),
    ("Student", 1024),
    ("GovInst", 271),
    ("Company", 434),
    ("Freelance", 144),
    ("Other", 159),
    ("IPhone", 737),
    ("Huawei", 682),
    ("Xiaomi", 228),
    ("Other", 385),
];

fn main() {
    let cohort = SurveyGenerator::paper_cohort(2032).generate();
    let summary = SurveySummary::from_cohort(&cohort);

    println!("Table II — survey subjects and frequencies (N = 2,032)\n");
    println!(
        "{:<14} | {:>9} | {:>8} | {:>9} | {:>8}",
        "subject", "measured", "%", "paper", "%"
    );
    println!("{}", "-".repeat(60));
    for ((label, count, percent), (paper_label, paper_count)) in
        summary.table2_rows().into_iter().zip(PAPER)
    {
        debug_assert_eq!(label, paper_label);
        println!(
            "{:<14} | {:>9} | {:>7.2}% | {:>9} | {:>7.2}%",
            label,
            count,
            percent,
            paper_count,
            100.0 * paper_count as f64 / 2032.0
        );
    }
    println!("{}", "-".repeat(60));
    println!(
        "LBA prevalence: {:.2}%  (paper: 91.88%)   mean charge level: {:.1}%",
        100.0 * summary.lba_prevalence,
        summary.mean_charge_level
    );
}
