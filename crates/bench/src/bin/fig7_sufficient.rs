//! Regenerates Fig. 7: energy saving and anxiety reduction under
//! sufficient edge resource (VC sizes 50–100, all within the server's
//! 100-stream transform budget).

use lpvs_emulator::experiment::sufficient_capacity;
use lpvs_emulator::report::render_sufficient;

fn main() {
    println!("Fig. 7 — LPVS under sufficient edge resource\n");
    // The paper's group sizes: 50 to 100. Two emulated hours each.
    let rows = sufficient_capacity(&[50, 60, 70, 80, 90, 100], 24, 2020);
    print!("{}", render_sufficient(&rows));
}
