//! Regenerates Fig. 9: time-per-viewer (TPV) of low-battery users with
//! and without LPVS, under sufficient edge capacity.

use lpvs_emulator::experiment::retention_with_model;
use lpvs_emulator::report::render_tpv;

fn main() {
    println!("Fig. 9 — time per viewer of low-battery users\n");
    // 80 viewers, a 10-hour horizon so every low-battery user reaches
    // their give-up threshold.
    println!("(a) full device model (display + radio/CPU floor):\n");
    let tpv = retention_with_model(80, 120, 2022, false);
    print!("{}", render_tpv(&tpv));
    println!("\n(b) paper's energy model (γ applies to the whole power rate):\n");
    let tpv = retention_with_model(80, 120, 2022, true);
    print!("{}", render_tpv(&tpv));
    println!(
        "\nreading: under the paper's own energy model the gain lands on the \
         reported ~39%;\nthe full device model attenuates it by the untouched \
         non-display floor."
    );
}
