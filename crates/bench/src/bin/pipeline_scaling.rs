//! Slot throughput: the sequential engine vs. the staged
//! [`lpvs-runtime`] pipeline (gather ∥ solve ∥ apply) at emulator
//! scale.
//!
//! Three rows per fleet size decompose the win:
//!
//! * `seq ×1` — the paper's engine: one monolithic solve per slot, the
//!   whole loop serial (the acceptance baseline);
//! * `seq ×4` — the same serial loop over the 4-shard
//!   `FleetScheduler`, isolating the sharded-solve shrink;
//! * `pipe ×4` — the staged pipeline with persistent shard workers and
//!   shard-local Bayes banks.
//!
//! On a single-core host the pipelined win is the solver's superlinear
//! terms shrinking with the shard size (the overlap of gather(t+1) and
//! apply(t−1) with solve(t) adds nothing without a second core); with
//! more cores the stages and the per-shard solves overlap too. Every
//! row runs one-slot-ahead, so `seq ×4` and `pipe ×4` must agree
//! bit-for-bit — the bench cross-checks the determinism suite on the
//! way past.
//!
//! Writes `BENCH_pipeline.json` at the repository root. `--smoke` runs
//! the 10k fleet only for CI.

use lpvs_bench::pct;
use lpvs_core::baseline::Policy;
use lpvs_emulator::engine::{Emulator, EmulatorConfig};
use lpvs_emulator::EmulationReport;
use lpvs_obs::json::Json;
use std::time::Instant;

struct Row {
    devices: usize,
    shards: usize,
    pipelined: bool,
    slots: usize,
    secs: f64,
    energy_saving: f64,
    report: EmulationReport,
}

impl Row {
    fn slots_per_sec(&self) -> f64 {
        self.slots as f64 / self.secs
    }

    fn label(&self) -> String {
        format!("{} ×{}", if self.pipelined { "pipe" } else { "seq" }, self.shards)
    }
}

fn run_row(devices: usize, slots: usize, shards: usize, pipelined: bool) -> Row {
    let config = EmulatorConfig {
        devices,
        slots,
        seed: 4242,
        // Capacity-limited at 40% of the fleet, like the fleet bench.
        server_streams: 2 * devices / 5,
        lambda: 1.0,
        one_slot_ahead: true,
        num_edges: shards,
        pipelined,
        ..EmulatorConfig::default()
    };
    let emu = Emulator::new(config, Policy::Lpvs);
    let t = Instant::now();
    let report = emu.run();
    let secs = t.elapsed().as_secs_f64();
    Row {
        devices,
        shards,
        pipelined,
        slots,
        secs,
        energy_saving: report.display_saving_ratio(),
        report,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[10_000] } else { &[10_000, 100_000] };
    let slots = if smoke { 3 } else { 5 };
    println!(
        "Pipeline scaling — slot throughput, sequential engine vs staged runtime{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:>9} {:>8} {:>6} {:>9} {:>11} {:>9}",
        "devices", "mode", "slots", "secs", "slots/sec", "saving"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut headline: Vec<(usize, f64)> = Vec::new();
    for &n in sizes {
        for (shards, pipelined) in [(1, false), (4, false), (4, true)] {
            let row = run_row(n, slots, shards, pipelined);
            println!(
                "{:>9} {:>8} {:>6} {:>9.3} {:>11.4} {:>9}",
                row.devices,
                row.label(),
                row.slots,
                row.secs,
                row.slots_per_sec(),
                pct(row.energy_saving),
            );
            rows.push(row);
        }
        let by = |p: bool, k: usize| {
            rows.iter()
                .find(|r| r.devices == n && r.pipelined == p && r.shards == k)
                .expect("row just pushed")
        };
        let (seq1, seq4, pipe4) = (by(false, 1), by(false, 4), by(true, 4));
        // Same shard count, same slot-ahead lag: the pipeline may only
        // change *when* work happens, never *what* is computed.
        assert_eq!(
            seq4.report.gamma_posteriors, pipe4.report.gamma_posteriors,
            "pipelined γ posteriors diverged from the sequential engine at N={n}"
        );
        assert_eq!(
            seq4.report.display_energy_j, pipe4.report.display_energy_j,
            "pipelined display energy diverged from the sequential engine at N={n}"
        );
        let speedup = pipe4.slots_per_sec() / seq1.slots_per_sec();
        println!(
            "  N={n}: seq ×1 {:.4} slots/s, pipe ×4 {:.4} slots/s — {:.2}x (bit-identical ✓)\n",
            seq1.slots_per_sec(),
            pipe4.slots_per_sec(),
            speedup
        );
        headline.push((n, speedup));
    }

    let (&(top_n, top_speedup), target) =
        (headline.last().expect("at least one size"), 1.3f64);
    let artifact = Json::obj([
        ("bench", Json::Str("pipeline_scaling".into())),
        ("smoke", Json::Bool(smoke)),
        ("target_speedup", Json::Num(target)),
        ("speedup_at_largest", Json::Num(top_speedup)),
        ("largest_devices", Json::Num(top_n as f64)),
        ("meets_target", Json::Bool(top_speedup >= target)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("devices", Json::Num(r.devices as f64)),
                            ("shards", Json::Num(r.shards as f64)),
                            ("pipelined", Json::Bool(r.pipelined)),
                            ("slots", Json::Num(r.slots as f64)),
                            ("secs", Json::Num(r.secs)),
                            ("slots_per_sec", Json::Num(r.slots_per_sec())),
                            ("energy_saving", Json::Num(r.energy_saving)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
    if !smoke {
        assert!(
            top_speedup >= target,
            "pipelined runtime below the {target}x target at {top_n} devices: {top_speedup:.2}x"
        );
    }
}
