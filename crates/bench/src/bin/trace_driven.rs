//! Trace-driven end-to-end run: virtual clusters formed from the
//! busiest live sessions of the (synthetic, paper-calibrated) Twitch
//! trace, as in the paper's §VI-B emulation setup.

use lpvs_bench::pct;
use lpvs_emulator::experiment::trace_driven;
use lpvs_trace::generator::TraceGenerator;
use lpvs_trace::summary::TraceSummary;

fn main() {
    let trace = TraceGenerator::paper_scale(2024).generate();
    let summary = TraceSummary::from_trace(&trace);
    println!(
        "trace: {} channels, {} sessions (paper: 1,566 / 4,761)\n",
        summary.channels, summary.sessions
    );

    let report = trace_driven(&trace, 12, 24, 31);
    println!(
        "{:>8} | {:>8} | {:>6} | {:>14} | {:>18}",
        "channel", "viewers", "slots", "energy saving", "anxiety reduction"
    );
    println!("{}", "-".repeat(66));
    for r in &report.rows {
        println!(
            "{:>8} | {:>8} | {:>6} | {:>14} | {:>18}",
            r.channel,
            r.viewers,
            r.slots,
            pct(r.energy_saving),
            pct(r.anxiety_reduction),
        );
    }
    println!("{}", "-".repeat(66));
    println!(
        "viewer-slot-weighted: energy saving {}, anxiety reduction {}",
        pct(report.weighted_energy_saving),
        pct(report.weighted_anxiety_reduction),
    );
}
