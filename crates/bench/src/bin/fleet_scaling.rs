//! Fleet-scale scheduling latency: the monolithic scheduler vs. the
//! sharded [`FleetScheduler`] at provider-scale device counts.
//!
//! For each fleet size the slot is solved once monolithically
//! (`schedule_resilient` over the whole problem) and once per shard
//! count (partition → per-shard solve → bounded rebalance). On a
//! single-core host the sharded win comes from the solver's
//! superlinear terms shrinking with the shard size, not from
//! parallelism; with more cores the per-shard solves overlap too.
//!
//! Writes `BENCH_fleet.json` at the repository root. `--smoke` runs a
//! reduced sweep for CI.

use lpvs_core::budget::SlotBudget;
use lpvs_core::fleet::DeviceFleet;
use lpvs_core::scheduler::LpvsScheduler;
use lpvs_edge::fleet::{FleetConfig, FleetScheduler, Partitioner};
use lpvs_edge::server::EdgeServer;
use lpvs_emulator::experiment::synthetic_problem;
use lpvs_obs::json::Json;
use std::time::Instant;

struct Row {
    devices: usize,
    shards: usize,
    secs: f64,
    selected: usize,
    migrations: usize,
    energy_saved_j: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = &[10_000, 100_000];
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let reps = if smoke { 1 } else { 3 };
    println!(
        "Fleet scaling — slot latency vs shard count{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:>9} {:>7} {:>10} {:>9} {:>11} {:>13}", "devices", "shards", "secs", "selected", "migrations", "saved (J)");

    let budget = SlotBudget::unbounded();
    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let problem = synthetic_problem(n, 0.4 * n as f64, 1.0, 4242);
        let fleet = DeviceFleet::from_problem(&problem);
        let server = EdgeServer::new(problem.compute_capacity, problem.storage_capacity_gb);
        let curve = problem.curve.clone();

        // Monolithic baseline: the whole slot through one scheduler.
        // Smoke skips warm-up — a single cold solve per point keeps the
        // CI run under two minutes and the comparison stays paired
        // (every point is equally cold).
        let scheduler = LpvsScheduler::paper_default();
        if !smoke {
            let _ = scheduler.schedule_resilient(&problem, None, &budget);
        }
        let t = Instant::now();
        let mut mono = scheduler.schedule_resilient(&problem, None, &budget);
        for _ in 1..reps {
            mono = scheduler.schedule_resilient(&problem, None, &budget);
        }
        let mono_secs = t.elapsed().as_secs_f64() / reps as f64;
        rows.push(Row {
            devices: n,
            shards: 1,
            secs: mono_secs,
            selected: mono.num_selected(),
            migrations: 0,
            energy_saved_j: mono.stats.energy_saved_j,
        });
        print_row(rows.last().unwrap());

        for &k in shard_counts.iter().filter(|&&k| k > 1) {
            let sharded = FleetScheduler::new(FleetConfig {
                num_shards: k,
                partitioner: Partitioner::Locality,
                ..FleetConfig::default()
            });
            if !smoke {
                let _ = sharded.schedule(&fleet, &server, problem.lambda, &curve, None, &budget);
            }
            let t = Instant::now();
            let mut out = sharded.schedule(&fleet, &server, problem.lambda, &curve, None, &budget);
            for _ in 1..reps {
                out = sharded.schedule(&fleet, &server, problem.lambda, &curve, None, &budget);
            }
            rows.push(Row {
                devices: n,
                shards: k,
                secs: t.elapsed().as_secs_f64() / reps as f64,
                selected: out.num_selected(),
                migrations: out.migrations,
                energy_saved_j: out.energy_saved_j,
            });
            print_row(rows.last().unwrap());
        }

        let best = rows
            .iter()
            .filter(|r| r.devices == n && r.shards > 1)
            .map(|r| r.secs)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  N={n}: monolithic {:.4} s, best sharded {:.4} s (speedup {:.2}x)\n",
            mono_secs,
            best,
            mono_secs / best
        );
    }

    let artifact = Json::obj([
        ("bench", Json::Str("fleet_scaling".into())),
        ("smoke", Json::Bool(smoke)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("devices", Json::Num(r.devices as f64)),
                            ("shards", Json::Num(r.shards as f64)),
                            ("secs", Json::Num(r.secs)),
                            ("selected", Json::Num(r.selected as f64)),
                            ("migrations", Json::Num(r.migrations as f64)),
                            ("energy_saved_j", Json::Num(r.energy_saved_j)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, format!("{artifact}\n")).expect("write BENCH_fleet.json");
    println!("wrote {path}");
}

fn print_row(r: &Row) {
    println!(
        "{:>9} {:>7} {:>10.4} {:>9} {:>11} {:>13.1}",
        r.devices, r.shards, r.secs, r.selected, r.migrations, r.energy_saved_j
    );
}
