//! The bench regression sentinel.
//!
//! Compares each committed `BENCH_*.json` against a committed baseline
//! manifest (`bench_baselines.json` at the repository root) and reports
//! any metric that regressed past its threshold. A metric regresses
//! when it moved in its bad direction by more than
//! `|baseline| * tolerance_pct / 100 + slack_abs` — the relative term
//! scales with the metric, the absolute slack keeps near-zero and
//! negative baselines (e.g. a *negative* checkpoint overhead) from
//! collapsing to a zero-width band.
//!
//! The manifest is data, not code: adding a guarded metric is one JSON
//! entry naming the file, a dotted path into it (`rows[3].secs`,
//! `obs_overhead.overhead_pct`), the bad direction, and the band.

use lpvs_obs::json::Json;
use std::fmt;
use std::path::Path;

/// Which way a metric is allowed to move freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Lower is better: regression when the value *rises* past the
    /// threshold (runtimes, overheads, latencies).
    Lower,
    /// Higher is better: regression when the value *falls* below the
    /// threshold (speedups, savings, fit quality).
    Higher,
}

impl Direction {
    fn parse(tag: &str) -> Result<Self, String> {
        match tag {
            "lower" => Ok(Direction::Lower),
            "higher" => Ok(Direction::Higher),
            other => Err(format!("unknown direction {other:?} (expected \"lower\"/\"higher\")")),
        }
    }
}

/// One guarded metric from the baseline manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Bench artifact the metric lives in, relative to the check dir.
    pub file: String,
    /// Dotted path into the artifact: object keys separated by `.`,
    /// array elements as `[idx]` (e.g. `rows[3].secs`).
    pub path: String,
    /// The direction the metric is allowed to improve in.
    pub direction: Direction,
    /// Committed reference value.
    pub baseline: f64,
    /// Allowed relative drift, in percent of `|baseline|`.
    pub tolerance_pct: f64,
    /// Allowed absolute drift, added on top of the relative band.
    pub slack_abs: f64,
}

impl BaselineEntry {
    /// The value past which the metric counts as regressed.
    pub fn threshold(&self) -> f64 {
        let margin = self.baseline.abs() * self.tolerance_pct / 100.0 + self.slack_abs;
        match self.direction {
            Direction::Lower => self.baseline + margin,
            Direction::Higher => self.baseline - margin,
        }
    }

    /// Whether `value` is within the allowed band.
    pub fn passes(&self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        match self.direction {
            Direction::Lower => value <= self.threshold(),
            Direction::Higher => value >= self.threshold(),
        }
    }

    /// A value guaranteed to fail this entry — used by `--selftest` to
    /// prove the sentinel actually bites.
    pub fn doctored(&self) -> f64 {
        let past = self.baseline.abs() * self.tolerance_pct / 100.0 + self.slack_abs + 1.0;
        match self.direction {
            Direction::Lower => self.baseline + 2.0 * past,
            Direction::Higher => self.baseline - 2.0 * past,
        }
    }
}

/// Outcome of checking one manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The entry that was checked.
    pub entry: BaselineEntry,
    /// The value found in the artifact, if it could be read.
    pub value: Option<f64>,
    /// Whether the metric is within its band. Missing files/paths fail:
    /// a sentinel that silently skips is no sentinel.
    pub pass: bool,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.pass { "ok  " } else { "FAIL" };
        let arrow = match self.entry.direction {
            Direction::Lower => "<=",
            Direction::Higher => ">=",
        };
        match self.value {
            Some(v) => write!(
                f,
                "{state} {}:{} = {v:.6} (need {arrow} {:.6}, baseline {:.6})",
                self.entry.file,
                self.entry.path,
                self.entry.threshold(),
                self.entry.baseline,
            ),
            None => write!(f, "{state} {}:{} = <missing>", self.entry.file, self.entry.path),
        }
    }
}

/// Resolves a dotted path (`rows[3].secs`) into a JSON document.
pub fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = doc;
    for segment in path.split('.') {
        let (key, indices) = match segment.find('[') {
            Some(open) => (&segment[..open], &segment[open..]),
            None => (segment, ""),
        };
        if !key.is_empty() {
            cur = cur.get(key)?;
        }
        let mut rest = indices;
        while let Some(stripped) = rest.strip_prefix('[') {
            let close = stripped.find(']')?;
            let idx: usize = stripped[..close].parse().ok()?;
            cur = cur.as_arr()?.get(idx)?;
            rest = &stripped[close + 1..];
        }
    }
    Some(cur)
}

/// Parses the baseline manifest (`{"entries": [...]}`).
pub fn parse_manifest(doc: &Json) -> Result<Vec<BaselineEntry>, String> {
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("manifest has no \"entries\" array")?;
    let mut out = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let field = |k: &str| e.get(k).ok_or_else(|| format!("entry {i} missing \"{k}\""));
        let num = |k: &str| {
            field(k)?.as_f64().ok_or_else(|| format!("entry {i} field \"{k}\" is not a number"))
        };
        out.push(BaselineEntry {
            file: field("file")?
                .as_str()
                .ok_or_else(|| format!("entry {i} field \"file\" is not a string"))?
                .to_owned(),
            path: field("path")?
                .as_str()
                .ok_or_else(|| format!("entry {i} field \"path\" is not a string"))?
                .to_owned(),
            direction: Direction::parse(
                field("direction")?
                    .as_str()
                    .ok_or_else(|| format!("entry {i} field \"direction\" is not a string"))?,
            )?,
            baseline: num("baseline")?,
            tolerance_pct: num("tolerance_pct")?,
            slack_abs: num("slack_abs")?,
        });
    }
    Ok(out)
}

/// Checks one entry against an already-parsed artifact document.
pub fn check(entry: &BaselineEntry, doc: &Json) -> Verdict {
    let value = lookup(doc, &entry.path).and_then(Json::as_f64);
    let pass = value.is_some_and(|v| entry.passes(v));
    Verdict { entry: entry.clone(), value, pass }
}

/// Checks every manifest entry against the artifacts in `dir`. Files
/// are parsed once each; unreadable files fail their entries.
pub fn run(entries: &[BaselineEntry], dir: &Path) -> Vec<Verdict> {
    let mut docs: Vec<(String, Option<Json>)> = Vec::new();
    entries
        .iter()
        .map(|entry| {
            let doc = match docs.iter().find(|(name, _)| *name == entry.file) {
                Some((_, doc)) => doc.clone(),
                None => {
                    let doc = std::fs::read_to_string(dir.join(&entry.file))
                        .ok()
                        .and_then(|text| Json::parse(&text).ok());
                    docs.push((entry.file.clone(), doc.clone()));
                    doc
                }
            };
            match doc {
                Some(doc) => check(entry, &doc),
                None => Verdict { entry: entry.clone(), value: None, pass: false },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::parse(
            r#"{"rows":[{"secs":1.5,"saved":10.0},{"secs":3.25,"saved":20.0}],
                "nested":{"overhead_pct":-19.17},"speedup":3.5}"#,
        )
        .unwrap()
    }

    fn entry(path: &str, direction: Direction, baseline: f64, tol: f64, slack: f64) -> BaselineEntry {
        BaselineEntry {
            file: "BENCH_test.json".into(),
            path: path.into(),
            direction,
            baseline,
            tolerance_pct: tol,
            slack_abs: slack,
        }
    }

    #[test]
    fn lookup_resolves_dots_and_indices() {
        let d = doc();
        assert_eq!(lookup(&d, "rows[1].secs").and_then(Json::as_f64), Some(3.25));
        assert_eq!(lookup(&d, "nested.overhead_pct").and_then(Json::as_f64), Some(-19.17));
        assert_eq!(lookup(&d, "speedup").and_then(Json::as_f64), Some(3.5));
        assert!(lookup(&d, "rows[9].secs").is_none());
        assert!(lookup(&d, "rows[1].missing").is_none());
    }

    #[test]
    fn lower_is_better_band() {
        let e = entry("rows[1].secs", Direction::Lower, 3.25, 20.0, 0.1);
        // threshold = 3.25 + 0.65 + 0.1 = 4.0
        assert!((e.threshold() - 4.0).abs() < 1e-12);
        assert!(e.passes(3.9));
        assert!(e.passes(1.0)); // improvements always pass
        assert!(!e.passes(4.1));
        assert!(!e.passes(f64::NAN));
    }

    #[test]
    fn higher_is_better_band() {
        let e = entry("speedup", Direction::Higher, 3.5, 20.0, 0.0);
        assert!(e.passes(3.0));
        assert!(e.passes(9.0));
        assert!(!e.passes(2.7));
    }

    #[test]
    fn negative_baseline_keeps_a_usable_band_via_slack() {
        // A negative overhead (checkpointing *speeds up* the run) must
        // still allow crossing to slightly positive before failing.
        let e = entry("nested.overhead_pct", Direction::Lower, -19.17, 0.0, 25.0);
        assert!(e.passes(5.0));
        assert!(!e.passes(6.5));
    }

    #[test]
    fn doctored_values_always_fail() {
        for e in [
            entry("rows[1].secs", Direction::Lower, 3.25, 20.0, 0.1),
            entry("speedup", Direction::Higher, 3.5, 20.0, 0.0),
            entry("nested.overhead_pct", Direction::Lower, -19.17, 0.0, 25.0),
        ] {
            assert!(!e.passes(e.doctored()), "doctored value slipped past {e:?}");
            assert!(e.passes(e.baseline), "baseline itself must pass {e:?}");
        }
    }

    #[test]
    fn check_flags_missing_paths() {
        let e = entry("rows[1].gone", Direction::Lower, 1.0, 10.0, 0.0);
        let v = check(&e, &doc());
        assert!(!v.pass);
        assert_eq!(v.value, None);
    }

    #[test]
    fn manifest_round_trip() {
        let text = r#"{"entries":[
            {"file":"BENCH_a.json","path":"rows[0].secs","direction":"lower",
             "baseline":1.5,"tolerance_pct":50.0,"slack_abs":0.5}
        ]}"#;
        let entries = parse_manifest(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].direction, Direction::Lower);
        assert_eq!(entries[0].path, "rows[0].secs");
        let bad = r#"{"entries":[{"file":"x","path":"y","direction":"sideways",
             "baseline":0,"tolerance_pct":0,"slack_abs":0}]}"#;
        assert!(parse_manifest(&Json::parse(bad).unwrap()).is_err());
    }
}
