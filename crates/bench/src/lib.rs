//! # lpvs-bench — the benchmark harness
//!
//! One binary per table/figure of the paper's evaluation (run them with
//! `cargo run --release -p lpvs-bench --bin <name>`), plus criterion
//! benches for the performance-sensitive paths and the DESIGN.md
//! ablations:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_component_power` | Fig. 1 component power split |
//! | `table1_strategies` | Table I claimed vs. measured savings |
//! | `fig2_lba_curve` | Fig. 2 anxiety curve |
//! | `table2_demographics` | Table II cohort composition |
//! | `fig5_session_histogram` | Fig. 5 session-duration histogram |
//! | `fig7_sufficient` | Fig. 7 energy/anxiety under sufficient capacity |
//! | `fig8_limited` | Fig. 8 λ sweep under limited capacity |
//! | `fig9_tpv` | Fig. 9 time-per-viewer of low-battery users |
//! | `fig10_overhead` | Fig. 10 scheduler runtime scaling |
//! | `fleet_scaling` | sharded vs monolithic slot latency at 10k/100k devices |
//! | `bench-sentinel` | compares `BENCH_*.json` against `bench_baselines.json` |
//! | `ablation_phase2` | Phase-2 on/off (quality) |
//! | `ablation_bayes` | learned vs fixed vs oracle γ (quality) |
//! | `ablation_policies` | LPVS vs the §III-C baselines (quality) |
//! | bench `scheduler` | schedule() runtime across N |
//! | bench `simplex` | LP relaxation throughput |
//! | bench `transforms` | per-chunk transform throughput |
//! | bench `emulator_slot` | one emulated slot |
//! | bench `ablation_compacting` | compacted vs chunk-level feasibility |

#![warn(missing_docs)]

pub mod sentinel;

use lpvs_display::stats::FrameStats;
use lpvs_media::content::{ContentModel, Genre};

/// A small deterministic content corpus shared by Table I and the
/// transform benches: 40 chunks from each genre.
pub fn genre_corpus() -> Vec<FrameStats> {
    Genre::ALL
        .iter()
        .flat_map(|&g| ContentModel::new(g, 0xbe9c).chunk_stats(40))
        .collect()
}

/// Formats a ratio as a percent with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_all_genres() {
        assert_eq!(genre_corpus().len(), 5 * 40);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3713), "37.13%");
    }
}
