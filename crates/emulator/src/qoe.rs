//! Composite quality-of-experience scoring.
//!
//! The paper treats LBA as "an important quality of experience metric"
//! (§I) and argues LPVS leaves the classic QoE metrics untouched
//! (§VII-D). This module makes that claim checkable: a per-viewer QoE
//! score combining session completion, abandonment, and end-state
//! anxiety, computable from any [`EmulationReport`].

use crate::metrics::EmulationReport;
use lpvs_survey::curve::AnxietyCurve;
use serde::{Deserialize, Serialize};

/// Weights of the QoE components (each component is in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeWeights {
    /// Weight of watch-time completion (watched / horizon).
    pub completion: f64,
    /// Penalty weight for abandoning the session.
    pub abandonment: f64,
    /// Penalty weight for end-of-run anxiety.
    pub anxiety: f64,
}

impl Default for QoeWeights {
    /// Completion dominates; abandonment is the business event the
    /// paper's retention analysis cares about; anxiety rounds it out.
    fn default() -> Self {
        Self { completion: 0.5, abandonment: 0.3, anxiety: 0.2 }
    }
}

impl QoeWeights {
    /// Sum of the weights (QoE is reported on a 0–1 scale after
    /// normalizing by this).
    pub fn total(&self) -> f64 {
        self.completion + self.abandonment + self.anxiety
    }
}

/// Per-device QoE scores in `[0, 1]` for one emulation run.
///
/// # Panics
///
/// Panics if `horizon_minutes` is not positive or the weights sum to
/// zero.
///
/// # Example
///
/// ```
/// use lpvs_core::baseline::Policy;
/// use lpvs_emulator::engine::{Emulator, EmulatorConfig};
/// use lpvs_emulator::qoe::{qoe_scores, QoeWeights};
/// use lpvs_survey::curve::AnxietyCurve;
///
/// let config = EmulatorConfig { devices: 8, slots: 4, seed: 5, ..Default::default() };
/// let report = Emulator::new(config, Policy::Lpvs).run();
/// let scores = qoe_scores(&report, &AnxietyCurve::paper_shape(), 20.0, QoeWeights::default());
/// assert_eq!(scores.len(), 8);
/// assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
/// ```
pub fn qoe_scores(
    report: &EmulationReport,
    curve: &AnxietyCurve,
    horizon_minutes: f64,
    weights: QoeWeights,
) -> Vec<f64> {
    assert!(horizon_minutes > 0.0, "horizon must be positive");
    let total = weights.total();
    assert!(total > 0.0, "weights must not all be zero");
    report
        .watch_minutes
        .iter()
        .zip(&report.gave_up)
        .zip(&report.final_battery)
        .map(|((&watched, &gave_up), &battery)| {
            let completion = (watched / horizon_minutes).clamp(0.0, 1.0);
            let abandonment = if gave_up { 0.0 } else { 1.0 };
            let calm = 1.0 - curve.phi(battery);
            (weights.completion * completion
                + weights.abandonment * abandonment
                + weights.anxiety * calm)
                / total
        })
        .collect()
}

/// Mean QoE across devices (0 for an empty run).
pub fn mean_qoe(
    report: &EmulationReport,
    curve: &AnxietyCurve,
    horizon_minutes: f64,
    weights: QoeWeights,
) -> f64 {
    let scores = qoe_scores(report, curve, horizon_minutes, weights);
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Emulator, EmulatorConfig};
    use lpvs_core::baseline::Policy;

    fn runs() -> (EmulationReport, EmulationReport, f64) {
        let config = EmulatorConfig {
            devices: 16,
            slots: 8,
            seed: 33,
            battery_capacity_wh: 2.0, // fast drain: abandonment happens
            ..Default::default()
        };
        let horizon = 8.0 * 5.0;
        (
            Emulator::new(config, Policy::Lpvs).run(),
            Emulator::new(config, Policy::NoTransform).run(),
            horizon,
        )
    }

    #[test]
    fn lpvs_never_degrades_qoe() {
        let (with, without, horizon) = runs();
        let curve = AnxietyCurve::paper_shape();
        let a = mean_qoe(&with, &curve, horizon, QoeWeights::default());
        let b = mean_qoe(&without, &curve, horizon, QoeWeights::default());
        assert!(a >= b - 1e-9, "LPVS QoE {a} below baseline {b}");
    }

    #[test]
    fn scores_are_bounded_and_ordered_sensibly() {
        let (with, _, horizon) = runs();
        let curve = AnxietyCurve::paper_shape();
        let scores = qoe_scores(&with, &curve, horizon, QoeWeights::default());
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        // A device that abandoned scores below one that finished with
        // the same battery class; check via aggregates.
        let abandoned: Vec<f64> = scores
            .iter()
            .zip(&with.gave_up)
            .filter(|(_, &g)| g)
            .map(|(s, _)| *s)
            .collect();
        let finished: Vec<f64> = scores
            .iter()
            .zip(&with.gave_up)
            .filter(|(_, &g)| !g)
            .map(|(s, _)| *s)
            .collect();
        if !abandoned.is_empty() && !finished.is_empty() {
            let ma = abandoned.iter().sum::<f64>() / abandoned.len() as f64;
            let mf = finished.iter().sum::<f64>() / finished.len() as f64;
            assert!(mf > ma, "finished {mf} vs abandoned {ma}");
        }
    }

    #[test]
    fn weights_shift_the_score() {
        let (with, _, horizon) = runs();
        let curve = AnxietyCurve::paper_shape();
        let completion_only =
            QoeWeights { completion: 1.0, abandonment: 0.0, anxiety: 0.0 };
        let anxiety_only = QoeWeights { completion: 0.0, abandonment: 0.0, anxiety: 1.0 };
        let a = mean_qoe(&with, &curve, horizon, completion_only);
        let b = mean_qoe(&with, &curve, horizon, anxiety_only);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let (with, _, _) = runs();
        let _ = qoe_scores(&with, &AnxietyCurve::paper_shape(), 0.0, QoeWeights::default());
    }
}
