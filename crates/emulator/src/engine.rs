//! The emulation engine: the slot loop of the paper's Fig. 6.
//!
//! Each slot runs the three building blocks in order:
//!
//! 1. **information gathering** — per-device chunk windows are
//!    synthesized from each viewer's channel genre, power rates are
//!    estimated with the display models, devices report energy;
//! 2. **request scheduling** — the configured policy (LPVS or a
//!    baseline) picks the transform subset under the edge capacities;
//! 3. **video transforming + playback** — selected streams pass
//!    through the transform encoder, devices play and drain their
//!    batteries, realized savings feed the Bayesian γ estimators, and
//!    users abandon once their survey-derived give-up threshold is hit.
//!
//! Determinism: everything derives from `EmulatorConfig::seed`, and the
//! policy is *not* part of the seed, so paired runs (e.g. LPVS vs.
//! `NoTransform`) see identical populations and content.
//!
//! Quality consent: devices reporting ≤ 40 % battery are encoded with
//! the *aggressive* quality budget — a user worried about their battery
//! has opted into deeper savings (this is the premise of the paper's
//! Fig. 9 cohort), while comfortable users keep the conservative
//! default.

use crate::faults::{FaultConfig, FaultPlan, GammaCorruption};
use crate::gather::gather_problem;
use crate::metrics::{EmulationReport, SlotRecord};
use lpvs_bayes::{GammaEstimator, GAMMA_PRIOR_MEAN};
use lpvs_core::baseline::{Policy, SelectionPolicy};
use lpvs_core::problem::SlotProblem;
use lpvs_core::scheduler::{Degradation, LpvsScheduler};
use lpvs_display::quality::QualityBudget;
use lpvs_display::stats::FrameStats;
use lpvs_edge::cache::PrefetchPolicy;
use lpvs_edge::cluster::{ClusterGenerator, VirtualCluster};
use lpvs_edge::fleet::{FleetConfig, FleetScheduler, Partitioner};
use lpvs_edge::server::EdgeServer;
use lpvs_edge::slot::SlotBudget;
use lpvs_media::content::{ContentModel, Genre};
use lpvs_media::encoder::TransformEncoder;
use lpvs_media::ladder::BitrateLadder;
use lpvs_survey::curve::AnxietyCurve;
use lpvs_survey::extraction::extract_curve;
use lpvs_survey::generator::SurveyGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How the scheduler obtains its per-device power-reduction ratios —
/// the knob of the `ablation_bayes` study (paper Remark 2 / §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GammaMode {
    /// Online Bayesian learning (the paper's mechanism).
    Learned,
    /// A fixed value for every device (e.g. the prior mean 0.31).
    Fixed(f64),
    /// Clairvoyant: measure the true ratio by encoding the upcoming
    /// window during gathering (expensive, upper-bounds the others).
    Oracle,
}

/// Emulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Virtual-cluster size (the paper sweeps 50–500).
    pub devices: usize,
    /// Emulated 5-minute slots.
    pub slots: usize,
    /// Master seed: population, content, thresholds.
    pub seed: u64,
    /// Regularization λ (paper Remark 3).
    pub lambda: f64,
    /// Edge capacity in concurrent 720p transforms (100 = AirFrame).
    pub server_streams: usize,
    /// Chunk duration in seconds.
    pub chunk_secs: f64,
    /// Chunks per 5-minute slot.
    pub chunks_per_slot: usize,
    /// Transform quality budget.
    pub quality: QualityBudget,
    /// Battery capacity in Wh (15.4 = a typical phone; Fig. 9 uses a
    /// smaller effective video budget to land on the paper's TPV scale).
    pub battery_capacity_wh: f64,
    /// γ estimation mode.
    pub gamma_mode: GammaMode,
    /// When true, batteries are drained by display power only — the
    /// paper's implicit energy model where γ applies to the entire
    /// power rate. The default (false) also charges the radio/CPU
    /// floor of the Fig. 1 component budget.
    pub display_only_drain: bool,
    /// One-slot-ahead scheduling (paper §VI-B.2): the decision applied
    /// in slot `t` was computed from the state reported at the start of
    /// slot `t − 1`. Off by default (decisions apply immediately).
    pub one_slot_ahead: bool,
    /// CDN→edge prefetch policy bounding each device's available chunk
    /// window `K_m` (paper eq. 1, Fig. 4).
    pub prefetch: PrefetchPolicy,
    /// Fault-injection profile (defaults to no faults). The fault RNG
    /// is salted independently of `seed`, so turning faults on does
    /// not reshuffle the population or the content trace.
    pub faults: FaultConfig,
    /// Drive the slot loop through the staged `lpvs-runtime` pipeline —
    /// gather(t+1) ∥ solve(t) ∥ apply(t−1) — instead of the sequential
    /// loop. Pipelining *is* one-slot-ahead scheduling (the overlap is
    /// where the decision lag comes from), so a pipelined run
    /// reproduces a sequential `one_slot_ahead` run bit-for-bit.
    /// Baseline policies ignore the flag: they bypass the resilient
    /// scheduler entirely and keep the sequential loop.
    pub pipelined: bool,
    /// Edge shards serving the cluster. With the default of 1 the
    /// monolithic scheduling path runs unchanged; with N > 1 the slot
    /// is scheduled by the [`FleetScheduler`] — the server's capacity
    /// split evenly across N shards, each running the full resilient
    /// pipeline in parallel, followed by the bounded cross-shard
    /// rebalance.
    pub num_edges: usize,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            devices: 50,
            slots: 24,
            seed: 42,
            lambda: 1.0,
            server_streams: 100,
            chunk_secs: 10.0,
            chunks_per_slot: 30,
            quality: QualityBudget::default(),
            battery_capacity_wh: 15.4,
            gamma_mode: GammaMode::Learned,
            display_only_drain: false,
            one_slot_ahead: false,
            prefetch: PrefetchPolicy::Full,
            faults: FaultConfig::none(),
            pipelined: false,
            num_edges: 1,
        }
    }
}

/// A budget-cut fault retaining less than this fraction of the solve
/// budget models a stall: the decision deadline passes before the
/// solver can run at all, pushing the ladder to its bottom rungs.
const STALL_FRACTION: f64 = 0.10;

/// Battery fraction below which a viewer consents to the aggressive
/// quality budget.
const BATTERY_SAVER_THRESHOLD: f64 = 0.40;

/// Checkpoint/resume options for the pipelined runtime. Lives outside
/// [`EmulatorConfig`] (which stays `Copy` for struct-update sweeps)
/// because it carries a filesystem path; attach it with
/// [`Emulator::with_checkpoints`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Directory the checkpoint store lives in.
    pub dir: std::path::PathBuf,
    /// Checkpoint every this many slots.
    pub interval: usize,
    /// Snapshot generations retained per shard.
    pub generations: usize,
    /// Stop the run after this slot completes (a simulated hub crash,
    /// for resume tests).
    pub halt_after: Option<usize>,
    /// Resume from the store's manifest instead of starting at slot 0.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec with the runtime's default interval and generation count.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            interval: lpvs_runtime::checkpoint::DEFAULT_INTERVAL,
            generations: lpvs_runtime::checkpoint::DEFAULT_GENERATIONS,
            halt_after: None,
            resume: false,
        }
    }
}

/// The LPVS emulator for one virtual cluster.
pub struct Emulator {
    pub(crate) config: EmulatorConfig,
    pub(crate) policy: Policy,
    pub(crate) cluster: VirtualCluster,
    genres: Vec<Genre>,
    pub(crate) estimators: Vec<GammaEstimator>,
    pub(crate) curve: AnxietyCurve,
    encoder: TransformEncoder,
    saver_encoder: TransformEncoder,
    pub(crate) bitrate_kbps: f64,
    /// Synthetic per-device channel viewer counts (drives
    /// popularity-boosted prefetch).
    pub(crate) channel_viewers: Vec<u32>,
    /// Checkpoint/resume options for the pipelined runtime.
    pub(crate) checkpoints: Option<CheckpointSpec>,
}

impl Emulator {
    /// Builds an emulator: survey cohort → anxiety curve + give-up
    /// thresholds; cluster generator → devices with Gaussian batteries;
    /// genre assignment per viewer.
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `slots` is zero.
    pub fn new(config: EmulatorConfig, policy: Policy) -> Self {
        assert!(config.devices > 0, "need at least one device");
        assert!(config.slots > 0, "need at least one slot");
        assert!(config.num_edges > 0, "need at least one edge shard");
        let cohort = SurveyGenerator::paper_cohort(config.seed).generate();
        let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
        let giveup_pool: Vec<u8> = cohort.iter().map(|p| p.giveup_level).collect();
        let cluster = ClusterGenerator::paper_setup(config.devices, config.seed)
            .with_server_streams(config.server_streams)
            .with_battery_capacity(config.battery_capacity_wh)
            .with_giveup_pool(giveup_pool)
            .generate();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9);
        let genres: Vec<Genre> =
            (0..config.devices).map(|_| ContentModel::sample_genre(&mut rng)).collect();
        let channel_viewers: Vec<u32> = (0..config.devices)
            .map(|_| {
                let u: f64 = rand::Rng::gen_range(&mut rng, 0.001..1.0);
                (8.0 / u.powf(0.9)).min(30_000.0) as u32
            })
            .collect();
        let estimators = vec![GammaEstimator::paper_default(); config.devices];
        Self {
            config,
            policy,
            cluster,
            genres,
            estimators,
            curve,
            encoder: TransformEncoder::new(config.quality),
            saver_encoder: TransformEncoder::new(QualityBudget::aggressive()),
            bitrate_kbps: BitrateLadder::default().bitrate_kbps(
                lpvs_display::spec::Resolution::HD,
            ),
            channel_viewers,
            checkpoints: None,
        }
    }

    /// Attaches checkpoint/resume options for the pipelined runtime.
    /// Ignored by sequential and baseline runs.
    pub fn with_checkpoints(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoints = Some(spec);
        self
    }

    /// Encoder for a device: aggressive once the user is in
    /// battery-saver territory, the configured default otherwise. The
    /// paper-faithful energy model (`display_only_drain`) keeps the
    /// uniform default budget, matching the paper's single operating
    /// point.
    fn encoder_for(&self, dev_idx: usize) -> &TransformEncoder {
        let saver = !self.config.display_only_drain
            && self.cluster.devices()[dev_idx].battery().fraction() <= BATTERY_SAVER_THRESHOLD;
        if saver {
            &self.saver_encoder
        } else {
            &self.encoder
        }
    }

    /// The anxiety curve extracted from this run's survey cohort.
    pub fn curve(&self) -> &AnxietyCurve {
        &self.curve
    }

    /// Runs the emulation to completion. With `pipelined` set (and an
    /// LPVS policy), the slot loop runs through the staged
    /// [`lpvs_runtime`] pipeline instead; results are bit-identical to
    /// a sequential `one_slot_ahead` run.
    pub fn run(mut self) -> EmulationReport {
        if self.config.pipelined
            && matches!(self.policy, Policy::Lpvs | Policy::LpvsPhase1Only)
        {
            return crate::pipeline::run_pipelined(self);
        }
        let n = self.config.devices;
        let initial_battery: Vec<f64> =
            self.cluster.devices().iter().map(|d| d.battery().fraction()).collect();
        let mut ever_selected = vec![false; n];
        let mut slots = Vec::with_capacity(self.config.slots);
        let mut scheduler_runtime = Duration::ZERO;
        let mut total_display = 0.0;
        let mut total_counterfactual = 0.0;
        let mut total_energy = 0.0;
        // Device-indexed decision computed in the previous slot
        // (one-slot-ahead mode): nobody is transformed in slot 0.
        let mut pending: Vec<bool> = vec![false; n];
        // Device-indexed decisions of the previous slot, for churn.
        let mut previous_by_device: Option<Vec<bool>> = None;
        let plan = FaultPlan::generate(&self.config.faults, self.config.slots, n);

        for slot in 0..self.config.slots {
            let mut slot_span = lpvs_obs::span!("emu.slot", "slot" => slot);
            // --- Fault injection -------------------------------------
            let faults = plan.slot(slot);
            for &d in &faults.reconnects {
                self.cluster.devices_mut()[d].reconnect();
            }
            for &d in &faults.disconnects {
                self.cluster.devices_mut()[d].disconnect();
            }
            // A slot off the link is a slot the estimator learned
            // nothing: inflate its uncertainty so the next observation
            // counts for more.
            for (i, device) in self.cluster.devices().iter().enumerate() {
                if !device.is_connected() {
                    self.estimators[i].forget(1);
                }
            }

            // --- Information gathering -------------------------------
            let watching: Vec<usize> = (0..n)
                .filter(|&i| self.cluster.devices()[i].is_watching())
                .collect();
            let mut selected_count = 0usize;
            let mut current_by_device = vec![false; n];
            let mut slot_degradation: Option<Degradation> = None;

            slot_span.record("watching", watching.len() as f64);

            if !watching.is_empty() {
                let gather_span = lpvs_obs::span!("emu.gather", "devices" => watching.len());
                let windows: Vec<Vec<FrameStats>> = watching
                    .iter()
                    .map(|&i| self.content_window(i, slot))
                    .collect();
                // The prefetch policy bounds how many chunks the edge
                // holds at the *scheduling point* (K_m, eq. 1); the
                // remainder arrives during the slot, so playback still
                // covers the full window.
                let decision_windows: Vec<Vec<FrameStats>> = watching
                    .iter()
                    .zip(&windows)
                    .map(|(&i, w)| {
                        let k = self
                            .config
                            .prefetch
                            .available_chunks(w.len(), 0, self.channel_viewers[i])
                            .max(1)
                            .min(w.len());
                        w[..k].to_vec()
                    })
                    .collect();
                let devices: Vec<_> = watching
                    .iter()
                    .map(|&i| self.cluster.devices()[i].clone())
                    .collect();
                let mut gammas: Vec<f64> = match self.config.gamma_mode {
                    GammaMode::Learned => {
                        watching.iter().map(|&i| self.estimators[i].expected()).collect()
                    }
                    GammaMode::Fixed(g) => vec![g; watching.len()],
                    GammaMode::Oracle => watching
                        .iter()
                        .zip(&decision_windows)
                        .map(|(&i, window)| self.oracle_gamma(i, window))
                        .collect(),
                };
                // Corrupt γ reports *after* estimation: the fault models
                // the telemetry link, not the estimator.
                for &(dev, kind) in &faults.gamma_corruptions {
                    if let Some(w) = watching.iter().position(|&i| i == dev) {
                        gammas[w] = match kind {
                            GammaCorruption::Nan => f64::NAN,
                            GammaCorruption::Negative => -0.4,
                            GammaCorruption::Huge => 4.2,
                            GammaCorruption::Stale => GAMMA_PRIOR_MEAN,
                        };
                    }
                }
                // A brownout derates the capacities the scheduler sees;
                // the physical server is unchanged.
                let (compute, storage) = match faults.brownout_factor {
                    Some(f) => {
                        let derated = self.cluster.server().browned_out(f);
                        derated.publish_gauges();
                        (derated.compute_capacity(), derated.storage_capacity_gb())
                    }
                    None => {
                        lpvs_obs::gauge_set("edge_brownout_factor", 1.0);
                        self.cluster.server().publish_gauges();
                        (
                            self.cluster.server().compute_capacity(),
                            self.cluster.server().storage_capacity_gb(),
                        )
                    }
                };
                let problem = gather_problem(
                    &devices,
                    &decision_windows,
                    &gammas,
                    self.config.chunk_secs,
                    self.bitrate_kbps,
                    compute,
                    storage,
                    self.config.lambda,
                    &self.curve,
                );

                drop(gather_span);

                // --- Request scheduling ------------------------------
                let budget = slot_budget(&faults.budget_cut);
                let warm: Option<Vec<bool>> = previous_by_device
                    .as_ref()
                    .map(|prev| watching.iter().map(|&i| prev[i]).collect());
                let started = Instant::now();
                let (computed, tier) =
                    self.schedule(&problem, warm.as_deref(), &budget);
                scheduler_runtime += started.elapsed();
                slot_degradation = tier;
                let selection: Vec<bool> = if self.config.one_slot_ahead {
                    // Execute last slot's decision now; stage the fresh
                    // one for the next scheduling point.
                    let current: Vec<bool> =
                        watching.iter().map(|&i| pending[i]).collect();
                    pending = vec![false; n];
                    for (w_idx, &dev_idx) in watching.iter().enumerate() {
                        pending[dev_idx] = computed[w_idx];
                    }
                    current
                } else {
                    computed
                };

                // --- Video transforming + playback -------------------
                let _play_span = lpvs_obs::span!("emu.play", "devices" => watching.len());
                for (w_idx, &dev_idx) in watching.iter().enumerate() {
                    let transform = selection[w_idx];
                    if transform {
                        ever_selected[dev_idx] = true;
                        selected_count += 1;
                        current_by_device[dev_idx] = true;
                    }
                    let (display_j, counter_j, device_j) =
                        self.play_slot(dev_idx, &windows[w_idx], transform);
                    total_display += display_j;
                    total_counterfactual += counter_j;
                    total_energy += device_j;
                }
            }

            // --- Accounting ------------------------------------------
            let churn = previous_by_device.as_ref().map(|prev| {
                let flips = prev
                    .iter()
                    .zip(&current_by_device)
                    .filter(|(a, b)| a != b)
                    .count();
                flips as f64 / n as f64
            });
            previous_by_device = Some(current_by_device);
            let mean_anxiety = self
                .cluster
                .devices()
                .iter()
                .map(|d| self.curve.phi(d.battery().fraction()))
                .sum::<f64>()
                / n as f64;
            slot_span.record("selected", selected_count as f64);
            slots.push(SlotRecord {
                slot,
                display_energy_j: slots_delta(&slots, total_display, |s| s.display_energy_j),
                counterfactual_display_j: slots_delta(&slots, total_counterfactual, |s| {
                    s.counterfactual_display_j
                }),
                total_energy_j: slots_delta(&slots, total_energy, |s| s.total_energy_j),
                mean_anxiety,
                watching: self.cluster.watching_count(),
                selected: selected_count,
                churn,
                degradation: slot_degradation,
            });
        }

        let devices = self.cluster.devices();
        EmulationReport {
            display_energy_j: total_display,
            counterfactual_display_j: total_counterfactual,
            total_energy_j: total_energy,
            watch_minutes: devices.iter().map(|d| d.watched_secs() / 60.0).collect(),
            initial_battery,
            final_battery: devices.iter().map(|d| d.battery().fraction()).collect(),
            gave_up: devices.iter().map(|d| d.has_given_up()).collect(),
            ever_selected,
            gamma_posteriors: self
                .estimators
                .iter()
                .map(|e| (e.expected(), e.uncertainty()))
                .collect(),
            scheduler_runtime,
            runtime: None,
            obs: lpvs_obs::enabled()
                .then(|| lpvs_obs::installed().map(|r| r.snapshot()))
                .flatten(),
            slots,
        }
    }

    /// Runs the slot's selection. LPVS policies go through the
    /// resilient scheduler — sanitized telemetry, the degradation
    /// ladder, and the slot budget — and report which rung served the
    /// slot; baselines keep their plain `select` path and report no
    /// tier.
    fn schedule(
        &self,
        problem: &SlotProblem,
        warm: Option<&[bool]>,
        budget: &SlotBudget,
    ) -> (Vec<bool>, Option<Degradation>) {
        let scheduler = match self.policy {
            Policy::Lpvs => LpvsScheduler::paper_default(),
            Policy::LpvsPhase1Only => LpvsScheduler::phase1_only(),
            _ => return (self.policy.select(problem), None),
        };
        if self.config.num_edges > 1 {
            return self.schedule_sharded(&scheduler, problem, warm, budget);
        }
        let schedule = scheduler.schedule_resilient(problem, warm, budget);
        (schedule.selected, Some(schedule.stats.degradation))
    }

    /// Multi-edge scheduling path (`num_edges > 1`): the gathered slot
    /// is columnarized into a [`DeviceFleet`](lpvs_core::fleet::DeviceFleet),
    /// the server's capacity is
    /// split evenly across the shards, and the [`FleetScheduler`] runs
    /// each shard's resilient pipeline in parallel. Telemetry is
    /// sanitized *before* the fleet is built — rows the monolithic path
    /// would reject are marked disconnected, so they are never
    /// scheduled, matching the resilient contract. The reported tier is
    /// the worst rung any shard fell to.
    fn schedule_sharded(
        &self,
        scheduler: &LpvsScheduler,
        problem: &SlotProblem,
        warm: Option<&[bool]>,
        budget: &SlotBudget,
    ) -> (Vec<bool>, Option<Degradation>) {
        let (fleet, clean) = crate::gather::sanitized_fleet(problem, None);
        let fleet_scheduler = FleetScheduler::new(FleetConfig {
            num_shards: self.config.num_edges,
            partitioner: Partitioner::Locality,
            scheduler: *scheduler.config(),
            ..FleetConfig::default()
        });
        let server = EdgeServer::new(clean.compute_capacity, clean.storage_capacity_gb);
        let out = fleet_scheduler.schedule(
            &fleet,
            &server,
            clean.lambda,
            &clean.curve,
            warm,
            budget,
        );
        let tier = out
            .shards
            .iter()
            .map(|r| r.stats.degradation)
            .max()
            .unwrap_or(Degradation::Passthrough);
        (out.selected, Some(tier))
    }

    /// Synthesizes the chunk window device `i` plays in `slot`. The
    /// content stream is deterministic per (seed, device, slot) so
    /// paired runs under different policies replay identical footage.
    pub(crate) fn content_window(&self, device: usize, slot: usize) -> Vec<FrameStats> {
        let stream_seed = self
            .config
            .seed
            .wrapping_mul(0x0100_0000_01b3)
            .wrapping_add((device as u64) << 20)
            .wrapping_add(slot as u64);
        ContentModel::new(self.genres[device], stream_seed)
            .chunk_stats(self.config.chunks_per_slot)
    }

    /// Clairvoyant whole-device reduction ratio: encodes the upcoming
    /// window without touching the battery.
    pub(crate) fn oracle_gamma(&self, dev_idx: usize, window: &[FrameStats]) -> f64 {
        let device = &self.cluster.devices()[dev_idx];
        let spec = *device.spec();
        let mut orig = 0.0;
        let mut transformed = 0.0;
        let encoder = self.encoder_for(dev_idx);
        for stats in window {
            let encoded = encoder.encode_chunk(
                &lpvs_media::chunk::Chunk::new(
                    lpvs_media::chunk::ChunkId(0),
                    self.config.chunk_secs,
                    stats.clone(),
                    self.bitrate_kbps,
                ),
                &spec,
            );
            let scale = 1.0 - encoded.reduction_ratio;
            orig += device.power_rate_watts(stats, 1.0);
            transformed += device.power_rate_watts(stats, scale);
        }
        if orig <= 0.0 {
            return 0.0;
        }
        (1.0 - transformed / orig).clamp(0.0, 1.0 - f64::EPSILON)
    }

    /// Plays one device's slot; returns `(display J, counterfactual
    /// display J, whole-device J)` and feeds the γ estimator when the
    /// device was transformed.
    fn play_slot(
        &mut self,
        dev_idx: usize,
        window: &[FrameStats],
        transform: bool,
    ) -> (f64, f64, f64) {
        let (display_j, counter_j, device_j, observed) =
            self.play_slot_raw(dev_idx, window, transform);
        if let Some(ratio) = observed {
            // Observed whole-device reduction ratio Δ_n for this slot.
            // Playback yields ratios in [0, 1] by construction, but the
            // validated path keeps a corrupt measurement from poisoning
            // the belief: a rejected sample counts as a stale slot.
            if self.estimators[dev_idx].try_observe(ratio).is_err() {
                self.estimators[dev_idx].forget(1);
            }
        }
        (display_j, counter_j, device_j)
    }

    /// [`play_slot`](Self::play_slot) without the estimator update: the
    /// pipelined driver routes the observation to the *owning shard's*
    /// bank instead of a device-indexed vector, so playback returns the
    /// raw measurement (`None` when the device was not transformed or
    /// played nothing).
    pub(crate) fn play_slot_raw(
        &mut self,
        dev_idx: usize,
        window: &[FrameStats],
        transform: bool,
    ) -> (f64, f64, f64, Option<f64>) {
        let mut display_j = 0.0;
        let mut counter_j = 0.0;
        let mut device_j = 0.0;
        let mut orig_device_j = 0.0;
        let spec = *self.cluster.devices()[dev_idx].spec();

        let saver = !self.config.display_only_drain
            && self.cluster.devices()[dev_idx].battery().fraction()
                <= BATTERY_SAVER_THRESHOLD;
        for stats in window {
            let scale = if transform {
                let encoder = if saver { &self.saver_encoder } else { &self.encoder };
                let encoded = encoder.encode_chunk(
                    &lpvs_media::chunk::Chunk::new(
                        lpvs_media::chunk::ChunkId(0),
                        self.config.chunk_secs,
                        stats.clone(),
                        self.bitrate_kbps,
                    ),
                    &spec,
                );
                1.0 - encoded.reduction_ratio
            } else {
                1.0
            };
            let device = &mut self.cluster.devices_mut()[dev_idx];
            let display_watts = spec.power_watts(stats);
            let (device_watts, orig_watts) = if self.config.display_only_drain {
                (display_watts * scale, display_watts)
            } else {
                (device.power_rate_watts(stats, scale), device.power_rate_watts(stats, 1.0))
            };
            let watched = device.play_with(
                stats,
                self.config.chunk_secs,
                scale,
                !self.config.display_only_drain,
            );
            display_j += display_watts * scale * watched;
            counter_j += display_watts * watched;
            device_j += device_watts * watched;
            orig_device_j += orig_watts * watched;
            if watched <= 0.0 {
                break;
            }
        }

        let observed =
            (transform && orig_device_j > 0.0).then(|| 1.0 - device_j / orig_device_j);
        (display_j, counter_j, device_j, observed)
    }
}

/// Maps a budget-cut fault onto a [`SlotBudget`]: the node budget is
/// scaled by the retained fraction (floored at one node), and a cut
/// below [`STALL_FRACTION`] also zeroes the deadline — the solver
/// missed its window entirely, so the ladder falls through to reusing
/// the previous schedule (or passthrough in slot 0).
pub(crate) fn slot_budget(budget_cut: &Option<f64>) -> SlotBudget {
    match *budget_cut {
        None => SlotBudget::unbounded(),
        Some(fraction) => {
            let baseline = LpvsScheduler::paper_default().config().phase1.node_limit;
            let budget = SlotBudget::unbounded().cut(fraction, baseline);
            if fraction < STALL_FRACTION {
                budget.with_deadline_secs(0.0)
            } else {
                budget
            }
        }
    }
}

/// Helper: converts a running total into this slot's delta given the
/// records already pushed.
pub(crate) fn slots_delta<F: Fn(&SlotRecord) -> f64>(
    slots: &[SlotRecord],
    running_total: f64,
    field: F,
) -> f64 {
    running_total - slots.iter().map(field).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: Policy, streams: usize, lambda: f64) -> EmulationReport {
        let config = EmulatorConfig {
            devices: 16,
            slots: 6,
            seed: 7,
            lambda,
            server_streams: streams,
            ..EmulatorConfig::default()
        };
        Emulator::new(config, policy).run()
    }

    #[test]
    fn lpvs_saves_display_energy() {
        let with = small(Policy::Lpvs, 100, 1.0);
        let without = small(Policy::NoTransform, 100, 1.0);
        assert!(with.display_energy_j < 0.8 * without.display_energy_j);
        // The internal counterfactual agrees on the order of magnitude.
        let ratio = with.display_saving_ratio();
        assert!((0.13..=0.55).contains(&ratio), "saving ratio {ratio}");
    }

    #[test]
    fn no_transform_run_saves_nothing() {
        let r = small(Policy::NoTransform, 100, 1.0);
        assert!((r.display_saving_ratio()).abs() < 1e-9);
        assert!(r.ever_selected.iter().all(|&s| !s));
    }

    #[test]
    fn lpvs_reduces_anxiety() {
        let with = small(Policy::Lpvs, 100, 1.0);
        let without = small(Policy::NoTransform, 100, 1.0);
        assert!(with.anxiety_reduction_vs(&without) > 0.0);
    }

    #[test]
    fn paired_runs_share_population() {
        let a = small(Policy::Lpvs, 100, 1.0);
        let b = small(Policy::NoTransform, 100, 1.0);
        assert_eq!(a.initial_battery, b.initial_battery);
    }

    #[test]
    fn limited_capacity_selects_fewer() {
        let tight = small(Policy::Lpvs, 4, 1.0);
        let loose = small(Policy::Lpvs, 100, 1.0);
        let max_tight = tight.slots.iter().map(|s| s.selected).max().unwrap();
        let max_loose = loose.slots.iter().map(|s| s.selected).max().unwrap();
        // The cheapest stream (480p30) costs ≈ 0.445 compute units, so
        // a 4-unit server can feasibly host at most ⌊4/0.445⌋ = 8.
        assert!(max_tight <= 8, "tight server hosted {max_tight} streams");
        assert!(max_loose > max_tight);
        assert!(tight.display_saving_ratio() < loose.display_saving_ratio());
    }

    #[test]
    fn watch_time_never_exceeds_horizon() {
        let r = small(Policy::Lpvs, 100, 1.0);
        let horizon_minutes = 6.0 * 5.0;
        assert!(r.watch_minutes.iter().all(|&m| m <= horizon_minutes + 1e-9));
    }

    #[test]
    fn oracle_gamma_beats_or_matches_fixed_pessimistic_guess() {
        // A wildly wrong fixed γ misallocates a *tight* server; the
        // oracle cannot do worse on realized energy.
        let base = EmulatorConfig {
            devices: 16,
            slots: 5,
            seed: 21,
            server_streams: 5,
            ..EmulatorConfig::default()
        };
        let oracle = Emulator::new(
            EmulatorConfig { gamma_mode: GammaMode::Oracle, ..base },
            Policy::Lpvs,
        )
        .run();
        let fixed = Emulator::new(
            EmulatorConfig { gamma_mode: GammaMode::Fixed(0.01), ..base },
            Policy::Lpvs,
        )
        .run();
        assert!(oracle.display_energy_j <= fixed.display_energy_j + 1e-6);
    }

    #[test]
    fn one_slot_ahead_transforms_nobody_in_slot_zero() {
        let config = EmulatorConfig {
            devices: 12,
            slots: 5,
            seed: 2,
            one_slot_ahead: true,
            ..EmulatorConfig::default()
        };
        let r = Emulator::new(config, Policy::Lpvs).run();
        assert_eq!(r.slots[0].selected, 0);
        assert!(r.slots[1].selected > 0);
        // Staleness costs a little versus instant application.
        let instant =
            Emulator::new(EmulatorConfig { one_slot_ahead: false, ..config }, Policy::Lpvs)
                .run();
        assert!(r.display_energy_j >= instant.display_energy_j - 1e-6);
    }

    #[test]
    fn prefetch_window_limits_the_decision_not_playback() {
        // Playback always covers the full slot; the tight window only
        // shrinks what the scheduler sees, so the *watched time* of a
        // tight-window run matches the full-prefetch run while savings
        // differ at most mildly.
        let full = EmulatorConfig { devices: 8, slots: 3, seed: 3, ..Default::default() };
        let tight = EmulatorConfig {
            prefetch: PrefetchPolicy::Window { chunks: 5 },
            ..full
        };
        let a = Emulator::new(full, Policy::Lpvs).run();
        let b = Emulator::new(tight, Policy::Lpvs).run();
        assert_eq!(a.watch_minutes.len(), b.watch_minutes.len());
        for (x, y) in a.watch_minutes.iter().zip(&b.watch_minutes) {
            assert!((x - y).abs() < 1.0, "tight window changed playback: {x} vs {y}");
        }
        // The emulator still produces sane savings with a tiny window.
        assert!(b.display_saving_ratio() > 0.05);
    }

    #[test]
    fn multi_edge_slot_loop_runs_and_saves() {
        let base = EmulatorConfig { devices: 24, slots: 5, seed: 8, ..Default::default() };
        let mono = Emulator::new(base, Policy::Lpvs).run();
        let sharded =
            Emulator::new(EmulatorConfig { num_edges: 4, ..base }, Policy::Lpvs).run();
        assert!(sharded.display_saving_ratio() > 0.05);
        // Capacity is ample on both sides (100 streams for 24 viewers),
        // so splitting it four ways costs little.
        assert!(sharded.display_energy_j <= mono.display_energy_j * 1.2);
        // The parallel shard path is as deterministic as the monolith.
        let again =
            Emulator::new(EmulatorConfig { num_edges: 4, ..base }, Policy::Lpvs).run();
        assert_eq!(sharded.display_energy_j, again.display_energy_j);
        assert_eq!(sharded.slots, again.slots);
    }

    #[test]
    fn sharded_path_survives_faults_deterministically() {
        // Corrupt telemetry must be neutralized before the fleet store
        // sees it, exactly like the monolithic resilient path.
        let config = EmulatorConfig {
            devices: 16,
            slots: 8,
            seed: 7,
            num_edges: 3,
            faults: FaultConfig::uniform(0.2, 11),
            ..EmulatorConfig::default()
        };
        let a = Emulator::new(config, Policy::Lpvs).run();
        let b = Emulator::new(config, Policy::Lpvs).run();
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.display_energy_j, b.display_energy_j);
        for s in &a.slots {
            if s.watching > 0 {
                assert!(s.degradation.is_some(), "sharded slot {} lost its tier", s.slot);
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = small(Policy::Lpvs, 100, 1.0);
        let b = small(Policy::Lpvs, 100, 1.0);
        assert_eq!(a.display_energy_j, b.display_energy_j);
        assert_eq!(a.watch_minutes, b.watch_minutes);
    }

    #[test]
    fn faulted_run_is_deterministic_and_reports_tiers() {
        let config = EmulatorConfig {
            devices: 16,
            slots: 10,
            seed: 7,
            faults: FaultConfig::uniform(0.15, 11),
            ..EmulatorConfig::default()
        };
        let a = Emulator::new(config, Policy::Lpvs).run();
        let b = Emulator::new(config, Policy::Lpvs).run();
        // Bit-identical replay (scheduler_runtime is wall clock and
        // legitimately differs between runs).
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.display_energy_j, b.display_energy_j);
        assert_eq!(a.watch_minutes, b.watch_minutes);
        // Every slot that scheduled anyone reports its ladder rung.
        for s in &a.slots {
            if s.watching > 0 {
                assert!(s.degradation.is_some(), "slot {} lost its tier", s.slot);
            }
        }
        assert!(a.degradation_counts().iter().map(|(_, c)| c).sum::<usize>() > 0);
    }

    #[test]
    fn baseline_policies_report_no_tier_but_survive_faults() {
        let config = EmulatorConfig {
            devices: 12,
            slots: 8,
            seed: 5,
            faults: FaultConfig::uniform(0.2, 3),
            ..EmulatorConfig::default()
        };
        for policy in [Policy::NoTransform, Policy::LowestBattery, Policy::HighestSaving] {
            let r = Emulator::new(config, policy).run();
            assert!(r.slots.iter().all(|s| s.degradation.is_none()));
        }
    }

    #[test]
    fn disconnects_pause_watching() {
        let base = EmulatorConfig { devices: 16, slots: 12, seed: 9, ..Default::default() };
        let healthy = Emulator::new(base, Policy::NoTransform).run();
        let flaky = Emulator::new(
            EmulatorConfig {
                faults: FaultConfig {
                    disconnect_rate: 0.3,
                    reconnect_rate: 0.3,
                    ..FaultConfig::none()
                },
                ..base
            },
            Policy::NoTransform,
        )
        .run();
        let healthy_minutes: f64 = healthy.watch_minutes.iter().sum();
        let flaky_minutes: f64 = flaky.watch_minutes.iter().sum();
        assert!(
            flaky_minutes < healthy_minutes,
            "disconnects did not reduce watch time: {flaky_minutes} vs {healthy_minutes}"
        );
    }

    #[test]
    fn stall_faults_reach_the_bottom_rungs() {
        // Budget cuts below the stall fraction zero the deadline, so a
        // run with guaranteed cuts must show non-exact tiers.
        let config = EmulatorConfig {
            devices: 12,
            slots: 16,
            seed: 4,
            faults: FaultConfig {
                budget_cut_rate: 1.0,
                ..FaultConfig::none()
            },
            ..EmulatorConfig::default()
        };
        let r = Emulator::new(config, Policy::Lpvs).run();
        assert!(
            r.degraded_slots() > 0,
            "guaranteed budget cuts never degraded a slot"
        );
        assert!(r.mean_recovery_slots().is_some());
    }

    #[test]
    fn gamma_estimators_learn_from_observations() {
        let config = EmulatorConfig { devices: 8, slots: 8, seed: 3, ..Default::default() };
        let mut emulator = Emulator::new(config, Policy::Lpvs);
        let before: Vec<f64> = emulator.estimators.iter().map(|e| e.expected()).collect();
        // Run manually to keep access to the estimators.
        let windows: Vec<Vec<FrameStats>> =
            (0..8).map(|i| emulator.content_window(i, 0)).collect();
        for (i, window) in windows.iter().enumerate() {
            emulator.play_slot(i, window, true);
        }
        let after: Vec<f64> = emulator.estimators.iter().map(|e| e.expected()).collect();
        assert_ne!(before, after);
        // Devices that start at/below their give-up threshold play zero
        // seconds and therefore produce no observation; everyone else
        // must have folded exactly one in.
        let observed = emulator.estimators.iter().filter(|e| e.observations() == 1).count();
        assert!(observed >= 4, "only {observed} estimators observed");
    }
}
