//! Emulation accounting.
//!
//! Two comparison styles coexist:
//!
//! * **internal counterfactual** — within one run, the display energy
//!   that the *same* watched seconds would have cost untransformed;
//!   this is the per-run "energy saving ratio" of the paper's Fig. 7;
//! * **paired runs** — the anxiety-reduction and time-per-viewer
//!   results (Figs. 7–9) compare a policy run against a `NoTransform`
//!   run built from the identical seed, so device populations, content,
//!   and give-up thresholds match exactly.

use lpvs_core::scheduler::Degradation;
use lpvs_obs::ObsSnapshot;
use lpvs_runtime::RuntimeSummary;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-slot aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: usize,
    /// Display energy actually consumed this slot (J).
    pub display_energy_j: f64,
    /// Display energy the same playback would have cost untransformed (J).
    pub counterfactual_display_j: f64,
    /// Whole-device energy consumed this slot (J).
    pub total_energy_j: f64,
    /// Mean anxiety degree across devices after the slot.
    pub mean_anxiety: f64,
    /// Devices still watching after the slot.
    pub watching: usize,
    /// Devices selected for transforming this slot.
    pub selected: usize,
    /// Fraction of devices whose transform decision flipped versus the
    /// previous slot (`None` in slot 0).
    pub churn: Option<f64>,
    /// Which rung of the degradation ladder served this slot (`None`
    /// for baseline policies that bypass the resilient scheduler, or
    /// when nobody was watching).
    pub degradation: Option<Degradation>,
}

/// End-to-end report of one emulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Per-slot records in order.
    pub slots: Vec<SlotRecord>,
    /// Total display energy consumed (J).
    pub display_energy_j: f64,
    /// Total internal counterfactual display energy (J).
    pub counterfactual_display_j: f64,
    /// Total whole-device energy (J).
    pub total_energy_j: f64,
    /// Per-device watch time (minutes).
    pub watch_minutes: Vec<f64>,
    /// Per-device initial battery fraction.
    pub initial_battery: Vec<f64>,
    /// Per-device final battery fraction.
    pub final_battery: Vec<f64>,
    /// Per-device: abandoned before the horizon ended.
    pub gave_up: Vec<bool>,
    /// Per-device: was selected for transforming at least once.
    pub ever_selected: Vec<bool>,
    /// Final per-device γ posterior `(mean, std)` — the truncated
    /// point estimate and untruncated spread of each device's learned
    /// power-reduction ratio. Bit-compared between the sequential and
    /// pipelined slot loops by the determinism suite.
    pub gamma_posteriors: Vec<(f64, f64)>,
    /// Accumulated scheduler wall-clock time.
    #[serde(skip, default)]
    pub scheduler_runtime: Duration,
    /// Pipelined-runtime counters (`None` for sequential runs):
    /// shards, estimator migrations, workers lost, fallback slot.
    pub runtime: Option<RuntimeSummary>,
    /// Telemetry snapshot taken when the run finished — `None` when no
    /// recorder was enabled. The counters and histograms are cumulative
    /// across the process (the recorder is global), so single-run
    /// analyses should reset the recorder before `run`.
    #[serde(skip, default)]
    pub obs: Option<ObsSnapshot>,
}

impl EmulationReport {
    /// Display-energy saving against this run's own counterfactual:
    /// `1 − used / untransformed` (the Fig. 7 bar metric).
    pub fn display_saving_ratio(&self) -> f64 {
        if self.counterfactual_display_j <= 0.0 {
            return 0.0;
        }
        1.0 - self.display_energy_j / self.counterfactual_display_j
    }

    /// Time-averaged mean anxiety across the run.
    pub fn mean_anxiety(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.slots.iter().map(|s| s.mean_anxiety).sum::<f64>() / self.slots.len() as f64
    }

    /// Anxiety reduction against a paired baseline run
    /// (`(base − this) / base`, the Fig. 7/8 line metric).
    pub fn anxiety_reduction_vs(&self, baseline: &EmulationReport) -> f64 {
        let base = baseline.mean_anxiety();
        if base <= 0.0 {
            return 0.0;
        }
        (base - self.mean_anxiety()) / base
    }

    /// Mean watch time (minutes) over devices passing `filter`
    /// (indexed by device). Returns `None` if no device matches.
    pub fn mean_watch_minutes<F: Fn(usize) -> bool>(&self, filter: F) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &m) in self.watch_minutes.iter().enumerate() {
            if filter(i) {
                sum += m;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Indices of "low-battery users": initial battery at or below
    /// `threshold` (the paper's Fig. 9 uses 40 %).
    pub fn low_battery_devices(&self, threshold: f64) -> Vec<usize> {
        self.initial_battery
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| (f <= threshold).then_some(i))
            .collect()
    }

    /// Number of devices that abandoned during the run.
    pub fn abandonments(&self) -> usize {
        self.gave_up.iter().filter(|&&g| g).count()
    }

    /// Mean selection churn across slots that report one — how much
    /// the transform set flips between consecutive scheduling points.
    pub fn mean_churn(&self) -> Option<f64> {
        let churns: Vec<f64> = self.slots.iter().filter_map(|s| s.churn).collect();
        if churns.is_empty() {
            None
        } else {
            Some(churns.iter().sum::<f64>() / churns.len() as f64)
        }
    }

    /// How many slots each rung of the degradation ladder served, in
    /// ladder order. Slots that report no tier (baseline policies,
    /// nobody watching) are not counted.
    pub fn degradation_counts(&self) -> [(Degradation, usize); Degradation::ALL.len()] {
        Degradation::ALL.map(|tier| {
            let count =
                self.slots.iter().filter(|s| s.degradation == Some(tier)).count();
            (tier, count)
        })
    }

    /// Slots served by anything other than the configured solver.
    pub fn degraded_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.degradation.is_some_and(|d| d.is_degraded()))
            .count()
    }

    /// Mean recovery time in slots: the average length of maximal runs
    /// of consecutive degraded slots — how long the scheduler stays off
    /// its configured solver once it falls. `None` when no slot
    /// degraded.
    pub fn mean_recovery_slots(&self) -> Option<f64> {
        let mut runs = Vec::new();
        let mut current = 0usize;
        for s in &self.slots {
            if s.degradation.is_some_and(|d| d.is_degraded()) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        if runs.is_empty() {
            None
        } else {
            Some(runs.iter().sum::<usize>() as f64 / runs.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(display: f64, counter: f64, anxieties: &[f64]) -> EmulationReport {
        EmulationReport {
            slots: anxieties
                .iter()
                .enumerate()
                .map(|(i, &a)| SlotRecord {
                    slot: i,
                    display_energy_j: display / anxieties.len() as f64,
                    counterfactual_display_j: counter / anxieties.len() as f64,
                    total_energy_j: 0.0,
                    mean_anxiety: a,
                    watching: 1,
                    selected: 1,
                    churn: if i == 0 { None } else { Some(0.0) },
                    degradation: Some(Degradation::Exact),
                })
                .collect(),
            display_energy_j: display,
            counterfactual_display_j: counter,
            total_energy_j: 0.0,
            watch_minutes: vec![30.0, 60.0, 90.0],
            initial_battery: vec![0.2, 0.5, 0.35],
            final_battery: vec![0.1, 0.4, 0.2],
            gave_up: vec![true, false, false],
            ever_selected: vec![true, true, false],
            gamma_posteriors: vec![(0.31, 0.1); 3],
            scheduler_runtime: Duration::ZERO,
            runtime: None,
            obs: None,
        }
    }

    #[test]
    fn saving_ratio_is_one_minus_usage() {
        let r = report(65.0, 100.0, &[0.5]);
        assert!((r.display_saving_ratio() - 0.35).abs() < 1e-12);
        let none = report(0.0, 0.0, &[0.5]);
        assert_eq!(none.display_saving_ratio(), 0.0);
    }

    #[test]
    fn anxiety_reduction_between_runs() {
        let with = report(1.0, 1.0, &[0.40, 0.42]);
        let without = report(1.0, 1.0, &[0.45, 0.47]);
        let reduction = with.anxiety_reduction_vs(&without);
        assert!((reduction - (0.46 - 0.41) / 0.46).abs() < 1e-12);
    }

    #[test]
    fn watch_minutes_filtering() {
        let r = report(1.0, 1.0, &[0.5]);
        let low = r.low_battery_devices(0.4);
        assert_eq!(low, vec![0, 2]);
        let mean = r.mean_watch_minutes(|i| low.contains(&i)).unwrap();
        assert!((mean - 60.0).abs() < 1e-12);
        assert!(r.mean_watch_minutes(|_| false).is_none());
    }

    #[test]
    fn abandonment_count() {
        assert_eq!(report(1.0, 1.0, &[0.5]).abandonments(), 1);
    }

    #[test]
    fn mean_churn_averages_reporting_slots() {
        let r = report(1.0, 1.0, &[0.5, 0.5, 0.5]);
        // Slot 0 reports None, slots 1–2 report 0.0.
        assert_eq!(r.mean_churn(), Some(0.0));
        let mut no_churn = r.clone();
        no_churn.slots.truncate(1);
        assert_eq!(no_churn.mean_churn(), None);
    }

    #[test]
    fn empty_run_mean_anxiety_is_zero() {
        let mut r = report(1.0, 1.0, &[0.5]);
        r.slots.clear();
        assert_eq!(r.mean_anxiety(), 0.0);
    }

    #[test]
    fn degradation_accounting() {
        let mut r = report(1.0, 1.0, &[0.5; 6]);
        // exact, greedy, greedy, exact, reused, (none)
        r.slots[1].degradation = Some(Degradation::Greedy);
        r.slots[2].degradation = Some(Degradation::Greedy);
        r.slots[4].degradation = Some(Degradation::ReusedPrevious);
        r.slots[5].degradation = None;
        assert_eq!(r.degraded_slots(), 3);
        let counts = r.degradation_counts();
        assert_eq!(counts[0], (Degradation::Exact, 2));
        assert_eq!(counts[2], (Degradation::Greedy, 2));
        assert_eq!(counts[3], (Degradation::ReusedPrevious, 1));
        // Runs of degraded slots: [1,2] and [4] → mean 1.5.
        assert_eq!(r.mean_recovery_slots(), Some(1.5));
    }

    #[test]
    fn clean_run_reports_no_degradation() {
        let r = report(1.0, 1.0, &[0.5; 3]);
        assert_eq!(r.degraded_slots(), 0);
        assert_eq!(r.mean_recovery_slots(), None);
        assert_eq!(r.degradation_counts()[0], (Degradation::Exact, 3));
    }
}
