//! Experiment drivers for the paper's evaluation section.
//!
//! Each driver returns plain data rows; the bench binaries in
//! `lpvs-bench` print them in the papers' table/figure layout, and
//! `EXPERIMENTS.md` records paper-vs-measured values. Sweeps run their
//! cells in parallel with crossbeam scoped threads.

use crate::engine::{Emulator, EmulatorConfig};
use crate::fit::LineFit;
use crate::metrics::EmulationReport;
use lpvs_core::baseline::Policy;
use lpvs_trace::channel::Trace;
use lpvs_core::problem::{DeviceRequest, SlotProblem};
use lpvs_survey::curve::AnxietyCurve;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Runs a policy and its paired `NoTransform` baseline on identical
/// populations and content.
pub fn run_pair(config: EmulatorConfig, policy: Policy) -> (EmulationReport, EmulationReport) {
    let with = Emulator::new(config, policy).run();
    let without = Emulator::new(config, Policy::NoTransform).run();
    (with, without)
}

/// One Fig. 7 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SufficientRow {
    /// Virtual-cluster size.
    pub group_size: usize,
    /// Display-energy saving ratio (the blue bars).
    pub energy_saving: f64,
    /// Anxiety reduction vs. the paired baseline (the orange line).
    pub anxiety_reduction: f64,
}

/// Fig. 7: sufficient edge resource — VC sizes within the server's
/// 100-stream budget.
pub fn sufficient_capacity(
    group_sizes: &[usize],
    slots: usize,
    seed: u64,
) -> Vec<SufficientRow> {
    let results = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for &size in group_sizes {
            let results = &results;
            scope.spawn(move |_| {
                let config = EmulatorConfig {
                    devices: size,
                    slots,
                    seed: seed ^ size as u64,
                    // "Sufficient" means every device fits even at the
                    // priciest resolution (QHD ≈ 5.1 compute units).
                    server_streams: 6 * size,
                    lambda: 1.0,
                    ..EmulatorConfig::default()
                };
                let (with, without) = run_pair(config, Policy::Lpvs);
                results.lock().push(SufficientRow {
                    group_size: size,
                    energy_saving: with.display_saving_ratio(),
                    anxiety_reduction: with.anxiety_reduction_vs(&without),
                });
            });
        }
    })
    .expect("sweep thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by_key(|r| r.group_size);
    rows
}

/// One Fig. 8 cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LimitedRow {
    /// Virtual-cluster size.
    pub group_size: usize,
    /// Regularization λ.
    pub lambda: f64,
    /// Display-energy saving ratio.
    pub energy_saving: f64,
    /// Anxiety reduction vs. the paired baseline.
    pub anxiety_reduction: f64,
}

/// Fig. 8: limited edge resource — VC sizes beyond the 100-stream
/// budget, swept over λ.
pub fn limited_capacity(
    group_sizes: &[usize],
    lambdas: &[f64],
    slots: usize,
    seed: u64,
) -> Vec<LimitedRow> {
    let results = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for &size in group_sizes {
            for &lambda in lambdas {
                let results = &results;
                scope.spawn(move |_| {
                    let config = EmulatorConfig {
                        devices: size,
                        slots,
                        // Same seed per size across λ so only λ varies.
                        seed: seed ^ size as u64,
                        server_streams: 100,
                        lambda,
                        ..EmulatorConfig::default()
                    };
                    let (with, without) = run_pair(config, Policy::Lpvs);
                    results.lock().push(LimitedRow {
                        group_size: size,
                        lambda,
                        energy_saving: with.display_saving_ratio(),
                        anxiety_reduction: with.anxiety_reduction_vs(&without),
                    });
                });
            }
        }
    })
    .expect("sweep thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by(|a, b| {
        (a.group_size, a.lambda)
            .partial_cmp(&(b.group_size, b.lambda))
            .expect("finite keys")
    });
    rows
}

/// One row of the fault-rate ablation: how much of the paper's
/// headline result survives a given per-slot fault rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRow {
    /// Uniform per-slot fault rate applied to every fault class.
    pub fault_rate: f64,
    /// Display-energy saving ratio under faults.
    pub energy_saving: f64,
    /// Anxiety reduction vs. the paired (equally faulted) baseline.
    pub anxiety_reduction: f64,
    /// Slots served below the configured solver.
    pub degraded_slots: usize,
    /// Total slots in the run.
    pub total_slots: usize,
    /// Mean length (slots) of degraded stretches; `None` if none.
    pub recovery_slots: Option<f64>,
}

/// Fault ablation: sweeps a uniform fault profile over `rates` and
/// measures what the degradation ladder retains. The paired baseline
/// sees the *same* fault plan, so the comparison isolates scheduling
/// quality from fault-induced watch-time loss.
pub fn fault_sweep(
    rates: &[f64],
    devices: usize,
    slots: usize,
    seed: u64,
) -> Vec<FaultRow> {
    let results = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for &rate in rates {
            let results = &results;
            scope.spawn(move |_| {
                let config = EmulatorConfig {
                    devices,
                    slots,
                    seed,
                    server_streams: 6 * devices,
                    lambda: 1.0,
                    faults: crate::faults::FaultConfig::uniform(rate, seed ^ 0xFA17),
                    ..EmulatorConfig::default()
                };
                let (with, without) = run_pair(config, Policy::Lpvs);
                results.lock().push(FaultRow {
                    fault_rate: rate,
                    energy_saving: with.display_saving_ratio(),
                    anxiety_reduction: with.anxiety_reduction_vs(&without),
                    degraded_slots: with.degraded_slots(),
                    total_slots: with.slots.len(),
                    recovery_slots: with.mean_recovery_slots(),
                });
            });
        }
    })
    .expect("sweep thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by(|a, b| a.fault_rate.total_cmp(&b.fault_rate));
    rows
}

/// Fig. 9 result: time-per-viewer of low-battery users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpvResult {
    /// Low-battery (≤ 40 % start) LPVS-served users measured.
    pub users: usize,
    /// Mean TPV without LPVS (minutes).
    pub without_minutes: f64,
    /// Mean TPV with LPVS (minutes).
    pub with_minutes: f64,
}

impl TpvResult {
    /// Extra watch time (minutes).
    pub fn extra_minutes(&self) -> f64 {
        self.with_minutes - self.without_minutes
    }

    /// Relative gain (`extra / without`, the paper's 38.8 %).
    pub fn gain_ratio(&self) -> f64 {
        if self.without_minutes <= 0.0 {
            return 0.0;
        }
        self.extra_minutes() / self.without_minutes
    }
}

/// Fig. 9: TPV of low-battery users under sufficient capacity. The
/// cohort is the paper's: users who i) were served by LPVS and ii)
/// started at ≤ 40 % battery.
pub fn retention(group_size: usize, slots: usize, seed: u64) -> TpvResult {
    retention_with_model(group_size, slots, seed, false)
}

/// [`retention`] with a choice of energy model: `display_only = true`
/// reproduces the paper's implicit model where γ applies to the whole
/// power rate.
pub fn retention_with_model(
    group_size: usize,
    slots: usize,
    seed: u64,
    display_only: bool,
) -> TpvResult {
    let config = EmulatorConfig {
        devices: group_size,
        slots,
        seed,
        server_streams: 100,
        lambda: 1.0,
        // A 4 Wh effective video-energy budget reproduces the paper's
        // tens-of-minutes TPV scale (their emulation never pins
        // absolute capacities); the *relative* gain is capacity-free.
        battery_capacity_wh: 4.0,
        display_only_drain: display_only,
        ..EmulatorConfig::default()
    };
    let (with, without) = run_pair(config, Policy::Lpvs);
    let cohort: Vec<usize> = with
        .low_battery_devices(0.40)
        .into_iter()
        .filter(|&i| with.ever_selected[i])
        .collect();
    let with_minutes =
        with.mean_watch_minutes(|i| cohort.contains(&i)).unwrap_or(0.0);
    let without_minutes =
        without.mean_watch_minutes(|i| cohort.contains(&i)).unwrap_or(0.0);
    TpvResult { users: cohort.len(), without_minutes, with_minutes }
}

/// One trace-driven cell: a virtual cluster formed from one live
/// session of the (Twitch-like) trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceDrivenRow {
    /// Channel id in the trace.
    pub channel: u32,
    /// Virtual-cluster size (mean concurrent viewers of the session).
    pub viewers: usize,
    /// Emulated slots (session duration, capped).
    pub slots: usize,
    /// Display-energy saving ratio.
    pub energy_saving: f64,
    /// Anxiety reduction vs. the paired baseline.
    pub anxiety_reduction: f64,
}

/// Aggregate of a trace-driven run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDrivenReport {
    /// Per-session rows, by descending viewer count.
    pub rows: Vec<TraceDrivenRow>,
    /// Viewer-slot-weighted mean energy saving.
    pub weighted_energy_saving: f64,
    /// Viewer-slot-weighted mean anxiety reduction.
    pub weighted_anxiety_reduction: f64,
}

/// Drives LPVS with virtual clusters formed from live sessions of a
/// trace (the paper's §VI-B setup: "a group of viewers in each channel
/// … form a VC"). Sessions with 20–500 mean viewers are eligible; the
/// busiest `max_sessions` are emulated, each for its session duration
/// capped at `max_slots`.
pub fn trace_driven(
    trace: &Trace,
    max_sessions: usize,
    max_slots: usize,
    seed: u64,
) -> TraceDrivenReport {
    trace_driven_sharded(trace, max_sessions, max_slots, seed, 1)
}

/// [`trace_driven`] with each session's virtual cluster served by
/// `num_edges` edge shards instead of one monolithic server (same total
/// capacity, split evenly; see `EmulatorConfig::num_edges`). With
/// `num_edges = 1` this **is** `trace_driven`.
pub fn trace_driven_sharded(
    trace: &Trace,
    max_sessions: usize,
    max_slots: usize,
    seed: u64,
    num_edges: usize,
) -> TraceDrivenReport {
    trace_driven_with(trace, max_sessions, max_slots, seed, num_edges, false)
}

/// [`trace_driven_sharded`] with each session's slot loop driven
/// through the staged `lpvs-runtime` pipeline
/// (`EmulatorConfig::pipelined`): gather ∥ solve ∥ apply with
/// shard-local Bayes banks. Decisions apply one slot after they are
/// computed — the pipeline's inherent latency, identical to the
/// sequential engine's `one_slot_ahead` mode.
pub fn trace_driven_pipelined(
    trace: &Trace,
    max_sessions: usize,
    max_slots: usize,
    seed: u64,
    num_edges: usize,
) -> TraceDrivenReport {
    trace_driven_with(trace, max_sessions, max_slots, seed, num_edges, true)
}

fn trace_driven_with(
    trace: &Trace,
    max_sessions: usize,
    max_slots: usize,
    seed: u64,
    num_edges: usize,
    pipelined: bool,
) -> TraceDrivenReport {
    let mut eligible: Vec<(u32, usize, usize)> = trace
        .sessions()
        .filter_map(|(c, s)| {
            let viewers = s.mean_viewers().round() as usize;
            ((20..=500).contains(&viewers)).then(|| {
                (c.id().0, viewers, (s.duration_slots() as usize).min(max_slots).max(1))
            })
        })
        .collect();
    eligible.sort_by_key(|&(id, viewers, _)| (std::cmp::Reverse(viewers), id));
    eligible.truncate(max_sessions);

    let results = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for &(channel, viewers, slots) in &eligible {
            let results = &results;
            scope.spawn(move |_| {
                let config = EmulatorConfig {
                    devices: viewers,
                    slots,
                    seed: seed ^ u64::from(channel),
                    server_streams: 100,
                    lambda: 1.0,
                    num_edges,
                    pipelined,
                    ..EmulatorConfig::default()
                };
                let (with, without) = run_pair(config, Policy::Lpvs);
                results.lock().push(TraceDrivenRow {
                    channel,
                    viewers,
                    slots,
                    energy_saving: with.display_saving_ratio(),
                    anxiety_reduction: with.anxiety_reduction_vs(&without),
                });
            });
        }
    })
    .expect("sweep thread panicked");
    let mut rows: Vec<TraceDrivenRow> = results.into_inner();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.viewers), r.channel));

    let total_weight: f64 = rows.iter().map(|r| (r.viewers * r.slots) as f64).sum();
    let (we, wa) = if total_weight > 0.0 {
        (
            rows.iter()
                .map(|r| r.energy_saving * (r.viewers * r.slots) as f64)
                .sum::<f64>()
                / total_weight,
            rows.iter()
                .map(|r| r.anxiety_reduction * (r.viewers * r.slots) as f64)
                .sum::<f64>()
                / total_weight,
        )
    } else {
        (0.0, 0.0)
    };
    TraceDrivenReport {
        rows,
        weighted_energy_saving: we,
        weighted_anxiety_reduction: wa,
    }
}

/// One Fig. 10 point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Cluster size N.
    pub devices: usize,
    /// Scheduler wall-clock time (seconds).
    pub runtime_secs: f64,
}

/// Fig. 10: scheduler running time vs. cluster size, with the linear
/// fit the paper reports (y = 0.055x − 0.324, R² = 0.999 on their
/// hardware; ours differs in constants, not in shape).
pub fn overhead(sizes: &[usize], seed: u64) -> (Vec<OverheadRow>, LineFit) {
    let rows: Vec<OverheadRow> = sizes
        .iter()
        .map(|&n| {
            let scheduler = lpvs_core::scheduler::LpvsScheduler::paper_default();
            // Per instance: one untimed warm-up, then best-of-two timed
            // runs (discards cold-cache outliers); per size: the median
            // across instances (discards branch-and-bound node-count
            // luck, which is heavy-tailed).
            let mut times: Vec<f64> = Vec::new();
            for instance in 0..9u64 {
                // Capacity scales with the cluster, as the paper's edge
                // is provisioned per deployment. A fixed capacity makes
                // *small* clusters the hard knapsack instances (the
                // LP bound is loosest when capacity ≈ n) and inverts
                // the size/runtime trend the figure measures.
                let capacity = 0.4 * n as f64;
                let problem = synthetic_problem(n, capacity, 1.0, seed ^ (instance << 32));
                let _ = scheduler.schedule(&problem).expect("schedule");
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let t = Instant::now();
                    let _ = scheduler.schedule(&problem).expect("schedule");
                    best = best.min(t.elapsed().as_secs_f64());
                }
                times.push(best);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            OverheadRow { devices: n, runtime_secs: times[times.len() / 2] }
        })
        .collect();
    let points: Vec<(f64, f64)> =
        rows.iter().map(|r| (r.devices as f64, r.runtime_secs)).collect();
    let fit = LineFit::fit(&points);
    (rows, fit)
}

/// A synthetic slot problem of `n` devices (used by the overhead sweep
/// and the criterion benches, where full emulation would drown the
/// scheduler signal).
pub fn synthetic_problem(n: usize, capacity: f64, lambda: f64, seed: u64) -> SlotProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = SlotProblem::new(capacity, 1e9, lambda, AnxietyCurve::paper_shape());
    for _ in 0..n {
        let fraction: f64 = rng.gen_range(0.03..1.0);
        p.push(DeviceRequest::uniform(
            rng.gen_range(0.7..1.8),
            10.0,
            30,
            fraction * 55_440.0,
            55_440.0,
            rng.gen_range(0.13..0.49),
            rng.gen_range(0.4..2.3),
            rng.gen_range(0.05..0.2),
        ));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sufficient_rows_have_paper_shape() {
        let rows = sufficient_capacity(&[12, 20], 5, 11);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                (0.10..=0.55).contains(&r.energy_saving),
                "energy saving {} out of band",
                r.energy_saving
            );
            assert!(r.anxiety_reduction > 0.0, "no anxiety reduction");
        }
    }

    #[test]
    fn limited_capacity_saving_falls_with_group_size() {
        // Capacity 100 is the server default; emulate beyond it with
        // small numbers by shrinking the server instead. A 3× size
        // contrast over 6 slots keeps the trend out of sampling noise.
        let rows = limited_capacity(&[30, 90], &[1.0], 6, 5);
        // Same absolute capacity serves a smaller *fraction* of the
        // bigger cluster, so the saving ratio cannot grow.
        assert!(rows[0].energy_saving >= rows[1].energy_saving - 0.02);
    }

    #[test]
    fn fault_sweep_degrades_gracefully_not_catastrophically() {
        let rows = fault_sweep(&[0.0, 0.2], 12, 6, 17);
        assert_eq!(rows.len(), 2);
        let healthy = rows[0];
        let faulted = rows[1];
        assert_eq!(healthy.degraded_slots, 0, "zero-rate run degraded");
        // Faults cost something but the ladder keeps the run productive.
        assert!(faulted.energy_saving > 0.0, "faulted run saved nothing");
        assert!(faulted.energy_saving <= healthy.energy_saving + 0.05);
    }

    #[test]
    fn retention_extends_watch_time() {
        let tpv = retention(24, 30, 13);
        assert!(tpv.users > 0, "no low-battery users in cohort");
        assert!(
            tpv.with_minutes > tpv.without_minutes,
            "LPVS did not extend TPV: {} vs {}",
            tpv.with_minutes,
            tpv.without_minutes
        );
        assert!(tpv.gain_ratio() > 0.05);
    }

    #[test]
    fn overhead_grows_roughly_linearly() {
        // Sizes start at 250: below that, wall-clock is dominated by
        // per-instance branch-and-bound search luck rather than the
        // per-device work the figure is about.
        let (rows, fit) = overhead(&[250, 500, 1000], 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].runtime_secs > rows[0].runtime_secs);
        assert!(fit.slope > 0.0);
        assert!(fit.r_squared > 0.7, "R² {}", fit.r_squared);
    }

    #[test]
    fn trace_driven_aggregates_sessions() {
        let trace = lpvs_trace::generator::TraceGenerator::new(120, 19).generate();
        let report = trace_driven(&trace, 3, 4, 7);
        assert!(!report.rows.is_empty());
        assert!(report.rows.len() <= 3);
        for r in &report.rows {
            assert!((20..=500).contains(&r.viewers));
            assert!(r.slots <= 4);
            assert!(r.energy_saving > 0.0);
        }
        assert!(report.weighted_energy_saving > 0.0);
    }

    #[test]
    fn trace_driven_sharded_serves_sessions_across_edges() {
        let trace = lpvs_trace::generator::TraceGenerator::new(120, 19).generate();
        let mono = trace_driven(&trace, 2, 3, 7);
        // One shard is literally the monolithic run.
        let one = trace_driven_sharded(&trace, 2, 3, 7, 1);
        assert_eq!(mono, one);
        // Multiple edges still serve every session productively.
        let multi = trace_driven_sharded(&trace, 2, 3, 7, 4);
        assert_eq!(multi.rows.len(), mono.rows.len());
        for r in &multi.rows {
            assert!(r.energy_saving > 0.0, "sharded session saved nothing");
        }
    }

    #[test]
    fn synthetic_problem_is_well_formed() {
        let p = synthetic_problem(40, 20.0, 1.0, 9);
        assert_eq!(p.len(), 40);
        assert!(p.capacity_feasible(&[false; 40]));
    }
}
