//! Plain-text table rendering shared by bench binaries and examples.

use crate::experiment::{FaultRow, LimitedRow, OverheadRow, SufficientRow, TpvResult};
use crate::fit::LineFit;
use crate::metrics::EmulationReport;
use lpvs_core::scheduler::Degradation;
use std::fmt::Write as _;

/// Renders the Fig. 7 rows (sufficient capacity).
pub fn render_sufficient(rows: &[SufficientRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>10} | {:>14} | {:>18}", "VC size", "energy saving", "anxiety reduction");
    let _ = writeln!(out, "{}", "-".repeat(48));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} | {:>13.2}% | {:>17.2}%",
            r.group_size,
            100.0 * r.energy_saving,
            100.0 * r.anxiety_reduction
        );
    }
    if !rows.is_empty() {
        let avg_e = rows.iter().map(|r| r.energy_saving).sum::<f64>() / rows.len() as f64;
        let max_e = rows.iter().map(|r| r.energy_saving).fold(f64::MIN, f64::max);
        let avg_a =
            rows.iter().map(|r| r.anxiety_reduction).sum::<f64>() / rows.len() as f64;
        let max_a = rows.iter().map(|r| r.anxiety_reduction).fold(f64::MIN, f64::max);
        let _ = writeln!(out, "{}", "-".repeat(48));
        let _ = writeln!(
            out,
            "energy saving: avg {:.2}% max {:.2}%   (paper: avg 35.20% max 37.13%)",
            100.0 * avg_e,
            100.0 * max_e
        );
        let _ = writeln!(
            out,
            "anxiety reduction: avg {:.2}% max {:.2}%   (paper: avg 6.82% max 7.36%)",
            100.0 * avg_a,
            100.0 * max_a
        );
    }
    out
}

/// Renders the Fig. 8 grid (limited capacity × λ).
pub fn render_limited(rows: &[LimitedRow]) -> String {
    let mut lambdas: Vec<f64> = rows.iter().map(|r| r.lambda).collect();
    lambdas.sort_by(|a, b| a.partial_cmp(b).expect("finite lambda"));
    lambdas.dedup();
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.group_size).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let cell = |size: usize, lambda: f64| {
        rows.iter()
            .find(|r| r.group_size == size && r.lambda == lambda)
            .expect("complete grid")
    };

    let mut out = String::new();
    for (title, pick) in [
        ("(a) energy saving", true),
        ("(b) anxiety reduction", false),
    ] {
        let _ = writeln!(out, "{title}");
        let mut header = format!("{:>8}", "VC size");
        for l in &lambdas {
            let _ = write!(header, " | λ={l:<6}");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for &size in &sizes {
            let mut line = format!("{size:>8}");
            for &l in &lambdas {
                let r = cell(size, l);
                let v = if pick { r.energy_saving } else { r.anxiety_reduction };
                let _ = write!(line, " | {:>6.2}%", 100.0 * v);
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the fault-rate ablation rows.
pub fn render_faults(rows: &[FaultRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} | {:>14} | {:>18} | {:>15} | {:>14}",
        "fault rate", "energy saving", "anxiety reduction", "degraded slots", "recovery (slots)"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for r in rows {
        let recovery = match r.recovery_slots {
            Some(v) => format!("{v:.2}"),
            None => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>9.0}% | {:>13.2}% | {:>17.2}% | {:>9} / {:>3} | {:>16}",
            100.0 * r.fault_rate,
            100.0 * r.energy_saving,
            100.0 * r.anxiety_reduction,
            r.degraded_slots,
            r.total_slots,
            recovery
        );
    }
    out
}

/// Renders a run's per-tier degradation ledger — how many slots each
/// rung of the ladder served, plus the degraded-slot and recovery-time
/// summary metrics.
pub fn render_degradation(report: &EmulationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "degradation ladder usage:");
    for (tier, count) in report.degradation_counts() {
        let marker = if tier == Degradation::Exact { " " } else { "↓" };
        let _ = writeln!(out, "  {marker} {:<16} {count:>4} slots", tier.label());
    }
    let _ = writeln!(
        out,
        "degraded slots: {} / {}",
        report.degraded_slots(),
        report.slots.len()
    );
    match report.mean_recovery_slots() {
        Some(v) => {
            let _ = writeln!(out, "mean recovery time: {v:.2} slots");
        }
        None => {
            let _ = writeln!(out, "mean recovery time: — (never degraded)");
        }
    }
    out
}

/// Renders the Fig. 9 comparison.
pub fn render_tpv(tpv: &TpvResult) -> String {
    format!(
        "low-battery users served by LPVS: {}\n\
         TPV without LPVS: {:.1} min\n\
         TPV with LPVS:    {:.1} min\n\
         extra TPV:        {:.1} min ({:.1}%)\n\
         (paper: 42.3 → 58.7 min, +16.4 min = +38.8%)\n",
        tpv.users,
        tpv.without_minutes,
        tpv.with_minutes,
        tpv.extra_minutes(),
        100.0 * tpv.gain_ratio()
    )
}

/// Renders the Fig. 10 points and fit (milliseconds; the paper's
/// CPLEX-based implementation reports seconds).
pub fn render_overhead(rows: &[OverheadRow], fit: &LineFit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>10} | {:>14}", "VC size", "runtime (ms)");
    let _ = writeln!(out, "{}", "-".repeat(28));
    for r in rows {
        let _ = writeln!(out, "{:>10} | {:>14.3}", r.devices, 1000.0 * r.runtime_secs);
    }
    let _ = writeln!(
        out,
        "fit (ms): y = {:.5}x {} {:.3} (R² = {:.3})",
        1000.0 * fit.slope,
        if fit.intercept >= 0.0 { "+" } else { "-" },
        1000.0 * fit.intercept.abs(),
        fit.r_squared
    );
    let _ = writeln!(out, "(paper fit: y = 0.055x - 0.324 seconds, R² = 0.999, on their testbed)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{LimitedRow, SufficientRow};

    #[test]
    fn sufficient_table_mentions_paper_targets() {
        let rows = vec![SufficientRow {
            group_size: 50,
            energy_saving: 0.35,
            anxiety_reduction: 0.07,
        }];
        let s = render_sufficient(&rows);
        assert!(s.contains("35.00%"));
        assert!(s.contains("35.20%")); // paper anchor in the footer
        assert!(s.contains("VC size"));
    }

    #[test]
    fn limited_grid_is_complete() {
        let rows = vec![
            LimitedRow { group_size: 100, lambda: 1.0, energy_saving: 0.2, anxiety_reduction: 0.05 },
            LimitedRow { group_size: 100, lambda: 2.0, energy_saving: 0.18, anxiety_reduction: 0.06 },
        ];
        let s = render_limited(&rows);
        assert!(s.contains("λ=1"));
        assert!(s.contains("λ=2"));
        assert!(s.contains("(a) energy saving"));
        assert!(s.contains("(b) anxiety reduction"));
    }

    #[test]
    fn tpv_render_reports_gain() {
        let t = TpvResult { users: 12, without_minutes: 42.3, with_minutes: 58.7 };
        let s = render_tpv(&t);
        assert!(s.contains("16.4 min"));
        assert!(s.contains("38.8%"));
    }

    #[test]
    fn overhead_render_includes_fit() {
        let rows =
            vec![OverheadRow { devices: 100, runtime_secs: 0.01 }, OverheadRow { devices: 200, runtime_secs: 0.02 }];
        let fit = LineFit::fit(&[(100.0, 0.01), (200.0, 0.02)]);
        let s = render_overhead(&rows, &fit);
        assert!(s.contains("runtime"));
        assert!(s.contains("R²"));
    }

    #[test]
    fn fault_table_renders_tiers_and_recovery() {
        let rows = vec![
            FaultRow {
                fault_rate: 0.0,
                energy_saving: 0.35,
                anxiety_reduction: 0.07,
                degraded_slots: 0,
                total_slots: 24,
                recovery_slots: None,
            },
            FaultRow {
                fault_rate: 0.1,
                energy_saving: 0.30,
                anxiety_reduction: 0.05,
                degraded_slots: 3,
                total_slots: 24,
                recovery_slots: Some(1.5),
            },
        ];
        let s = render_faults(&rows);
        assert!(s.contains("fault rate"));
        assert!(s.contains("10%"));
        assert!(s.contains("1.50"));
        assert!(s.contains("—"), "healthy row must render a dash for recovery");
    }

    #[test]
    fn degradation_ledger_lists_every_rung() {
        use crate::engine::{Emulator, EmulatorConfig};
        use lpvs_core::baseline::Policy;
        let config = EmulatorConfig { devices: 8, slots: 4, seed: 1, ..Default::default() };
        let report = Emulator::new(config, Policy::Lpvs).run();
        let s = render_degradation(&report);
        for tier in Degradation::ALL {
            assert!(s.contains(tier.label()), "missing rung {tier}");
        }
        assert!(s.contains("degraded slots: 0 / 4"));
        assert!(s.contains("never degraded"));
    }

    #[test]
    fn empty_sufficient_table_renders_header_only() {
        let s = render_sufficient(&[]);
        assert!(s.contains("VC size"));
        assert!(!s.contains("paper:"));
    }
}
