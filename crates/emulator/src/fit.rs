//! Ordinary least-squares line fitting (for the Fig. 10 regression).

use serde::{Deserialize, Serialize};

/// A fitted line `y = slope·x + intercept` with its R².
///
/// # Example
///
/// ```
/// use lpvs_emulator::fit::LineFit;
///
/// let fit = LineFit::fit(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LineFit {
    /// Fits a line to `(x, y)` points by ordinary least squares.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two points or when all x are identical.
    pub fn fit(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two points to fit a line");
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        assert!(sxx > 0.0, "x values must not all coincide");
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
            .sum();
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let r_squared = if ss_tot <= 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
        Self { slope, intercept, r_squared }
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

impl std::fmt::Display for LineFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.4}x {} {:.4} (R² = {:.4})",
            self.slope,
            if self.intercept >= 0.0 { "+" } else { "-" },
            self.intercept.abs(),
            self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, 0.055 * i as f64 - 0.324)).collect();
        let fit = LineFit::fit(&pts);
        assert!((fit.slope - 0.055).abs() < 1e-12);
        assert!((fit.intercept + 0.324).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(100.0) - 5.176).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_fits_well() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + 1.0 + if i % 2 == 0 { 0.3 } else { -0.3 })
            })
            .collect();
        let fit = LineFit::fit(&pts);
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn flat_data_has_full_r_squared() {
        let fit = LineFit::fit(&[(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn display_formatting() {
        let fit = LineFit::fit(&[(0.0, -0.324), (1.0, -0.269)]);
        let s = fit.to_string();
        assert!(s.contains("0.0550"), "{s}");
        assert!(s.contains("R²"), "{s}");
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let _ = LineFit::fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn vertical_data_rejected() {
        let _ = LineFit::fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
