//! # lpvs-emulator — trace-driven evaluation of LPVS
//!
//! The paper validates LPVS with an emulator (Fig. 6) whose building
//! blocks are *information gathering*, *request scheduling*, and
//! *video transforming*, driven by a Twitch trace at 5-minute slots.
//! This crate is that emulator:
//!
//! * [`gather`] — assembles the per-slot [`SlotProblem`] from the
//!   cluster state, the live content, and the Bayesian γ estimates;
//! * [`engine`] — the slot loop: schedule, transform, play, drain
//!   batteries, observe realized savings, update estimators;
//! * [`metrics`] — per-slot and end-to-end accounting: display energy
//!   (actual vs. untransformed counterfactual), anxiety, watch time,
//!   abandonment;
//! * [`faults`] — deterministic, seeded fault injection: per-slot
//!   device disconnects, corrupt γ telemetry, edge brownouts, and
//!   solver-budget cuts, declared in a replayable [`faults::FaultPlan`];
//! * `pipeline` — the [`lpvs_runtime`] driver: the same slot loop run
//!   through the staged gather ∥ solve ∥ apply pipeline with
//!   shard-local Bayes banks (`EmulatorConfig::pipelined`), bit-identical
//!   to a sequential one-slot-ahead run;
//! * [`experiment`] — the drivers regenerating the paper's evaluation:
//!   Fig. 7 (sufficient capacity), Fig. 8 (limited capacity × λ),
//!   Fig. 9 (time-per-viewer of low-battery users), Fig. 10
//!   (scheduler overhead), each returning printable rows;
//! * [`fit`] — least-squares line fitting for the Fig. 10 regression;
//! * [`report`] — plain-text table rendering shared by the bench
//!   binaries and examples.
//!
//! [`SlotProblem`]: lpvs_core::problem::SlotProblem
//!
//! # Example
//!
//! ```
//! use lpvs_emulator::engine::{Emulator, EmulatorConfig};
//! use lpvs_core::baseline::Policy;
//!
//! let config = EmulatorConfig { devices: 20, slots: 6, ..EmulatorConfig::default() };
//! let with = Emulator::new(config, Policy::Lpvs).run();
//! let without = Emulator::new(config, Policy::NoTransform).run();
//! assert!(with.display_energy_j < without.display_energy_j);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod faults;
pub mod fit;
pub mod gather;
pub mod metrics;
pub(crate) mod pipeline;
pub mod qoe;
pub mod report;

pub use engine::{CheckpointSpec, Emulator, EmulatorConfig};
pub use faults::{FaultConfig, FaultPlan, GammaCorruption, SlotFaults};
pub use fit::LineFit;
pub use metrics::{EmulationReport, SlotRecord};
pub use qoe::{mean_qoe, qoe_scores, QoeWeights};
