//! Deterministic fault injection for the slot pipeline.
//!
//! Real deployments of LPVS face conditions the paper's emulation
//! (§VI) idealizes away: devices drop off the cellular link mid-slot,
//! γ telemetry arrives stale or corrupt, the edge server loses compute
//! or storage headroom to co-located tenants, and the scheduler's
//! solve budget gets cut when the slot deadline nears. This module
//! declares those faults per slot in a [`FaultPlan`] so the emulator
//! can replay them bit-for-bit: the plan is derived once from a seed,
//! and the same `(seed, slots, devices)` triple always yields the same
//! plan regardless of what the emulator does with it.
//!
//! The plan is pure data. The [`engine`](crate::engine) applies it —
//! disconnecting devices, corrupting the γ vector *after* the
//! estimators produce it, deriving browned-out capacities, and
//! tightening the [`SlotBudget`](lpvs_edge::slot::SlotBudget) handed
//! to the resilient scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation constant mixed into the fault seed so a fault
/// plan never correlates with the emulator's own trace RNG even when
/// both are seeded with the same user-facing number.
const FAULT_SEED_SALT: u64 = 0xFA17_1A7E_D00D_5EED;

/// Deepest budget cut the generator will draw: the scheduler keeps at
/// least this little — and at most 35 % — of its node budget on a
/// budget-cut fault.
const MAX_RETAINED_FRACTION: f64 = 0.35;

/// How a corrupt γ report is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GammaCorruption {
    /// The report is `NaN` (lost sample, failed parse).
    Nan,
    /// The report is negative — a ratio below zero is meaningless.
    Negative,
    /// The report is far above one — the device claims the transform
    /// *created* energy.
    Huge,
    /// The report is stale: the device resends the prior mean instead
    /// of a fresh measurement, silently erasing whatever was learned.
    Stale,
}

/// Per-slot fault rates. `Copy` so it can ride inside
/// [`EmulatorConfig`](crate::engine::EmulatorConfig) struct updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the fault RNG (salted, so it is independent of the
    /// emulator's trace seed even when numerically equal).
    pub seed: u64,
    /// Per-device, per-slot probability of dropping off the link.
    pub disconnect_rate: f64,
    /// Per-slot probability that a disconnected device comes back.
    pub reconnect_rate: f64,
    /// Per-device, per-slot probability of a corrupt γ report.
    pub gamma_corruption_rate: f64,
    /// Per-slot probability of an edge brownout.
    pub brownout_rate: f64,
    /// Fraction of capacity retained in the *worst* brownout; the
    /// factor is drawn uniformly from `[floor, 1)`.
    pub brownout_floor: f64,
    /// Per-slot probability of a solver-budget cut.
    pub budget_cut_rate: f64,
    /// Per-(slot, shard) probability of a *pipeline stage crash*: a
    /// shard worker of the pipelined runtime dies mid-slot, exercising
    /// the drain-and-fall-back ladder. Only the pipelined slot loop
    /// reads this — it is not part of the [`FaultPlan`] (worker death
    /// is a runtime event, not a telemetry event), and sequential runs
    /// ignore it entirely.
    pub stage_fault_rate: f64,
    /// How many times a stage-faulted (slot, shard) dies *again* after
    /// the supervisor respawns it: respawn attempt `a` is killed while
    /// `a <= stage_fault_repeat`. `0` means the first respawn succeeds;
    /// `u32::MAX` makes every hit unrecoverable, forcing the pipelined
    /// runtime's sequential fallback. Pipelined runs only.
    pub stage_fault_repeat: u32,
    /// Per-written-checkpoint probability that the snapshot file is
    /// corrupted on disk (one byte flipped), exercising the
    /// checksum-reject → older-generation rung of the recovery ladder.
    /// Only read when the pipelined runtime has a checkpoint store.
    pub checkpoint_corrupt_rate: f64,
}

impl FaultConfig {
    /// No faults at all — the seed run.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            disconnect_rate: 0.0,
            reconnect_rate: 0.0,
            gamma_corruption_rate: 0.0,
            brownout_rate: 0.0,
            brownout_floor: 0.25,
            budget_cut_rate: 0.0,
            stage_fault_rate: 0.0,
            stage_fault_repeat: 0,
            checkpoint_corrupt_rate: 0.0,
        }
    }

    /// Uniform fault profile: every fault class fires at `rate`, with
    /// disconnected devices reconnecting at 50 % per slot and
    /// brownouts keeping at least a quarter of capacity. This is the
    /// knob the `ablation_faults` sweep turns.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 };
        FaultConfig {
            seed,
            disconnect_rate: rate,
            reconnect_rate: 0.5,
            gamma_corruption_rate: rate,
            brownout_rate: rate,
            brownout_floor: 0.25,
            budget_cut_rate: rate,
            // Stage faults kill pipeline workers rather than corrupt
            // telemetry; the sweeps that turn this profile compare
            // sequential runs, so they stay off here.
            stage_fault_rate: 0.0,
            stage_fault_repeat: 0,
            checkpoint_corrupt_rate: 0.0,
        }
    }

    /// True when no fault class can ever fire.
    pub fn is_none(&self) -> bool {
        self.disconnect_rate <= 0.0
            && self.gamma_corruption_rate <= 0.0
            && self.brownout_rate <= 0.0
            && self.budget_cut_rate <= 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Everything that goes wrong in one slot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotFaults {
    /// Device indices dropping off the link at the start of the slot.
    pub disconnects: Vec<usize>,
    /// Device indices rejoining at the start of the slot.
    pub reconnects: Vec<usize>,
    /// `(device, kind)` pairs whose γ report is malformed this slot.
    pub gamma_corruptions: Vec<(usize, GammaCorruption)>,
    /// Capacity retained by the edge server (`None` = healthy).
    pub brownout_factor: Option<f64>,
    /// Fraction of the solver node budget retained (`None` = full
    /// budget). Values are in `[0, 0.35)`.
    pub budget_cut: Option<f64>,
}

impl SlotFaults {
    /// A slot where nothing goes wrong.
    pub fn none() -> Self {
        SlotFaults::default()
    }

    /// True when this slot carries no fault events.
    pub fn is_quiet(&self) -> bool {
        self.disconnects.is_empty()
            && self.reconnects.is_empty()
            && self.gamma_corruptions.is_empty()
            && self.brownout_factor.is_none()
            && self.budget_cut.is_none()
    }
}

/// The full fault schedule for an emulation: one [`SlotFaults`] per
/// slot, generated deterministically up front.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    slots: Vec<SlotFaults>,
}

impl FaultPlan {
    /// An empty plan (every slot quiet).
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Derives the plan for `slots × devices` from the config. The
    /// generator tracks which devices are down so reconnects are only
    /// scheduled for devices that actually disconnected earlier — the
    /// plan is consistent on its own, before the engine touches it.
    pub fn generate(config: &FaultConfig, slots: usize, devices: usize) -> Self {
        if config.is_none() {
            return FaultPlan { slots: vec![SlotFaults::none(); slots] };
        }
        let mut rng = StdRng::seed_from_u64(config.seed ^ FAULT_SEED_SALT);
        let floor = if config.brownout_floor.is_finite() {
            config.brownout_floor.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut down = vec![false; devices];
        let mut plan = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mut slot = SlotFaults::none();
            for (dev, down) in down.iter_mut().enumerate() {
                if *down {
                    if rng.gen_bool(p(config.reconnect_rate)) {
                        *down = false;
                        slot.reconnects.push(dev);
                    }
                } else if rng.gen_bool(p(config.disconnect_rate)) {
                    *down = true;
                    slot.disconnects.push(dev);
                }
                if !*down && rng.gen_bool(p(config.gamma_corruption_rate)) {
                    let kind = match rng.gen_range(0..4u32) {
                        0 => GammaCorruption::Nan,
                        1 => GammaCorruption::Negative,
                        2 => GammaCorruption::Huge,
                        _ => GammaCorruption::Stale,
                    };
                    slot.gamma_corruptions.push((dev, kind));
                }
            }
            if rng.gen_bool(p(config.brownout_rate)) {
                slot.brownout_factor = Some(rng.gen_range(floor..1.0_f64));
            }
            if rng.gen_bool(p(config.budget_cut_rate)) {
                slot.budget_cut = Some(rng.gen_range(0.0..MAX_RETAINED_FRACTION));
            }
            plan.push(slot);
        }
        FaultPlan { slots: plan }
    }

    /// The faults for slot `idx`; quiet past the end of the plan, so
    /// the engine never has to bounds-check.
    pub fn slot(&self, idx: usize) -> SlotFaults {
        self.slots.get(idx).cloned().unwrap_or_default()
    }

    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the plan covers no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total fault events across the plan (each disconnect, reconnect,
    /// γ corruption, brownout, and budget cut counts as one).
    pub fn total_events(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                s.disconnects.len()
                    + s.reconnects.len()
                    + s.gamma_corruptions.len()
                    + usize::from(s.brownout_factor.is_some())
                    + usize::from(s.budget_cut.is_some())
            })
            .sum()
    }
}

/// Clamps a rate into a valid probability; garbage fails safe to 0.
fn p(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_bit_reproducible_for_a_fixed_seed() {
        let config = FaultConfig::uniform(0.2, 99);
        let a = FaultPlan::generate(&config, 48, 30);
        let b = FaultPlan::generate(&config, 48, 30);
        assert_eq!(a, b);
        assert!(a.total_events() > 0, "a 20 % profile over 48×30 must fire");
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::generate(&FaultConfig::uniform(0.2, 1), 48, 30);
        let b = FaultPlan::generate(&FaultConfig::uniform(0.2, 2), 48, 30);
        assert_ne!(a, b);
    }

    #[test]
    fn no_fault_config_yields_a_quiet_plan() {
        let plan = FaultPlan::generate(&FaultConfig::none(), 24, 50);
        assert_eq!(plan.len(), 24);
        assert_eq!(plan.total_events(), 0);
        assert!((0..24).all(|i| plan.slot(i).is_quiet()));
    }

    #[test]
    fn reconnects_only_follow_disconnects() {
        let plan = FaultPlan::generate(&FaultConfig::uniform(0.3, 7), 40, 20);
        let mut down = vec![false; 20];
        for i in 0..plan.len() {
            let slot = plan.slot(i);
            for &d in &slot.reconnects {
                assert!(down[d], "slot {i}: device {d} reconnected while up");
                down[d] = false;
            }
            for &d in &slot.disconnects {
                assert!(!down[d], "slot {i}: device {d} disconnected while down");
                down[d] = true;
            }
            for &(d, _) in &slot.gamma_corruptions {
                assert!(!down[d], "slot {i}: disconnected device {d} reported γ");
            }
        }
    }

    #[test]
    fn drawn_factors_stay_in_their_bands() {
        let plan = FaultPlan::generate(&FaultConfig::uniform(0.5, 13), 60, 10);
        for i in 0..plan.len() {
            let slot = plan.slot(i);
            if let Some(f) = slot.brownout_factor {
                assert!((0.25..1.0).contains(&f), "brownout factor {f}");
            }
            if let Some(f) = slot.budget_cut {
                assert!((0.0..MAX_RETAINED_FRACTION).contains(&f), "budget cut {f}");
            }
        }
    }

    #[test]
    fn out_of_range_slot_is_quiet() {
        let plan = FaultPlan::generate(&FaultConfig::uniform(0.9, 5), 4, 4);
        assert!(plan.slot(1000).is_quiet());
    }

    #[test]
    fn garbage_rates_fail_safe() {
        let config = FaultConfig { disconnect_rate: f64::NAN, ..FaultConfig::uniform(0.0, 3) };
        let plan = FaultPlan::generate(&config, 10, 10);
        assert_eq!(plan.total_events(), 0);
        assert!(FaultConfig::uniform(f64::INFINITY, 0).disconnect_rate <= 1.0);
    }
}
