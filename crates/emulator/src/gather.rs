//! Information gathering (paper Fig. 6, §VI-B.1).
//!
//! At each scheduling point the devices report display specs and
//! energy status; the server estimates per-chunk power rates with the
//! display power models and prices each transform with the cost
//! functions `g(·)`, `h(·)`. The output is the [`SlotProblem`] the
//! scheduler consumes.

use lpvs_core::fleet::{DeviceFleet, FleetDevice};
use lpvs_core::problem::{DeviceRequest, SlotProblem};
use lpvs_display::stats::FrameStats;
use lpvs_edge::device::Device;
use lpvs_media::cost::{storage_gb, transform_compute_units};
use lpvs_survey::curve::AnxietyCurve;

/// Builds the slot problem for one scheduling point.
///
/// `chunk_windows[n]` holds the frame statistics of the chunks device
/// `n` will play this slot (all of equal `chunk_secs` duration);
/// `gammas[n]` is the current truncated-posterior estimate of device
/// `n`'s *whole-device* power-reduction ratio.
///
/// # Panics
///
/// Panics if the slices disagree in length or a window is empty.
#[allow(clippy::too_many_arguments)] // mirrors the §VI-B.1 report fields
pub fn gather_problem(
    devices: &[Device],
    chunk_windows: &[Vec<FrameStats>],
    gammas: &[f64],
    chunk_secs: f64,
    bitrate_kbps: f64,
    compute_capacity: f64,
    storage_capacity_gb: f64,
    lambda: f64,
    curve: &AnxietyCurve,
) -> SlotProblem {
    assert_eq!(devices.len(), chunk_windows.len(), "one chunk window per device");
    assert_eq!(devices.len(), gammas.len(), "one gamma per device");

    let mut problem =
        SlotProblem::new(compute_capacity, storage_capacity_gb, lambda, curve.clone());
    for ((device, window), &gamma) in devices.iter().zip(chunk_windows).zip(gammas) {
        assert!(!window.is_empty(), "chunk window must be non-empty");
        let rates: Vec<f64> = window
            .iter()
            .map(|stats| device.power_rate_watts(stats, 1.0))
            .collect();
        let secs = vec![chunk_secs; window.len()];
        let slot_secs = chunk_secs * window.len() as f64;
        // A healthy report gets the usual γ < 1 nudge; a corrupt one
        // (NaN, negative, above one) is carried through raw so the
        // resilient scheduler's sanitizer — not an assertion deep in
        // the constructor — decides what to do with it. `clamp` would
        // let NaN through anyway and panic in `DeviceRequest::new`.
        let gamma = if gamma.is_finite() && (0.0..=1.0).contains(&gamma) {
            gamma.min(1.0 - f64::EPSILON)
        } else {
            gamma
        };
        problem.push(DeviceRequest::from_telemetry(
            rates,
            secs,
            device.energy_status_joules(),
            device.battery().capacity_joules(),
            gamma,
            transform_compute_units(device.spec().resolution, 30.0),
            storage_gb(bitrate_kbps, slot_secs),
        ));
    }
    problem
}

/// Builds the columnar fleet store for a multi-edge scheduling point —
/// the provider-scale counterpart of [`gather_problem`]. Per-device
/// request fields are derived with the same formulas; on top of those
/// the fleet rows carry what the orchestration layer uses and the slot
/// problem never did: the panel kind, the device's connectivity, and
/// the γ *posterior spread* `gamma_stds[n]` (from the truncated-normal
/// estimator's uncertainty).
///
/// Unlike [`gather_problem`], this path requires healthy telemetry
/// (the fleet store validates rows on insertion) — the emulator's
/// fault-tolerant route sanitizes a gathered [`SlotProblem`] first and
/// columnarizes the clean copy.
///
/// # Panics
///
/// Panics if the slices disagree in length, a window is empty, or a
/// row fails [`DeviceRequest::is_valid`].
pub fn gather_fleet(
    devices: &[Device],
    chunk_windows: &[Vec<FrameStats>],
    gammas: &[f64],
    gamma_stds: &[f64],
    chunk_secs: f64,
    bitrate_kbps: f64,
) -> DeviceFleet {
    assert_eq!(devices.len(), chunk_windows.len(), "one chunk window per device");
    assert_eq!(devices.len(), gammas.len(), "one gamma per device");
    assert_eq!(devices.len(), gamma_stds.len(), "one gamma spread per device");

    let chunks_hint = chunk_windows.first().map_or(0, Vec::len);
    let mut fleet = DeviceFleet::with_capacity(devices.len(), chunks_hint);
    for (((device, window), &gamma), &gamma_std) in
        devices.iter().zip(chunk_windows).zip(gammas).zip(gamma_stds)
    {
        assert!(!window.is_empty(), "chunk window must be non-empty");
        let rates: Vec<f64> = window
            .iter()
            .map(|stats| device.power_rate_watts(stats, 1.0))
            .collect();
        let slot_secs = chunk_secs * window.len() as f64;
        fleet.push(FleetDevice {
            request: DeviceRequest::new(
                rates,
                vec![chunk_secs; window.len()],
                device.energy_status_joules(),
                device.battery().capacity_joules(),
                gamma.min(1.0 - f64::EPSILON),
                transform_compute_units(device.spec().resolution, 30.0),
                storage_gb(bitrate_kbps, slot_secs),
            ),
            display: device.spec().kind,
            gamma_std,
            connected: device.is_connected(),
        });
    }
    fleet
}

/// Sanitizes a gathered slot problem and columnarizes the clean copy —
/// the fault-tolerant route into the fleet store shared by the sharded
/// engine path and the pipelined runtime driver. Rows the monolithic
/// resilient path would reject stay present but are marked
/// disconnected, so the shard schedulers never select them.
///
/// `recycled` is a previously-solved fleet buffer to refill in place
/// (the pipeline's double-buffer hand-off); its columns are rebuilt
/// with the same `push_request` path as a fresh build, so recycling
/// never changes a bit of the stored telemetry.
///
/// Returns the fleet alongside the sanitized problem (whose capacities,
/// λ, and curve the caller still needs).
pub fn sanitized_fleet(
    problem: &SlotProblem,
    recycled: Option<DeviceFleet>,
) -> (DeviceFleet, SlotProblem) {
    let (clean, valid) = problem.sanitize();
    let mut fleet = match recycled {
        Some(mut fleet) => {
            fleet.rebuild_from_problem(&clean);
            fleet
        }
        None => DeviceFleet::from_problem(&clean),
    };
    for (i, &ok) in valid.iter().enumerate() {
        if !ok {
            fleet.set_connected(i, false);
        }
    }
    (fleet, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_display::spec::{DisplaySpec, Resolution};
    use lpvs_edge::battery::Battery;
    use lpvs_edge::device::DeviceId;

    fn device(fraction: f64, resolution: Resolution) -> Device {
        Device::new(
            DeviceId(0),
            DisplaySpec::oled_phone(resolution),
            Battery::phone_at(fraction),
            10,
        )
    }

    fn window(n: usize, luma: f64) -> Vec<FrameStats> {
        vec![FrameStats::uniform_gray(luma); n]
    }

    #[test]
    fn problem_mirrors_cluster_state() {
        let devices = vec![device(0.4, Resolution::HD), device(0.8, Resolution::FHD)];
        let windows = vec![window(30, 0.5), window(30, 0.7)];
        let p = gather_problem(
            &devices,
            &windows,
            &[0.3, 0.4],
            10.0,
            3000.0,
            100.0,
            50.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        assert_eq!(p.len(), 2);
        assert!((p.requests[0].battery_fraction() - 0.4).abs() < 1e-9);
        assert_eq!(p.requests[0].num_chunks(), 30);
        // FHD transform costs more compute than HD.
        assert!(p.requests[1].compute_cost > p.requests[0].compute_cost);
        // Brighter content → larger OLED power rate.
        assert!(p.requests[1].power_rates_w[0] > p.requests[0].power_rates_w[0]);
    }

    #[test]
    fn fleet_rows_mirror_the_slot_problem() {
        let devices = vec![device(0.4, Resolution::HD), device(0.8, Resolution::FHD)];
        let windows = vec![window(30, 0.5), window(30, 0.7)];
        let gammas = [0.3, 0.4];
        let p = gather_problem(
            &devices,
            &windows,
            &gammas,
            10.0,
            3000.0,
            100.0,
            50.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        let f = gather_fleet(&devices, &windows, &gammas, &[0.02, 0.05], 10.0, 3000.0);
        assert_eq!(f.len(), 2);
        // The request columns agree bit-for-bit with the problem path.
        for i in 0..2 {
            assert_eq!(f.device_request(i), p.requests[i]);
        }
        // Plus the columns only the fleet carries.
        assert_eq!(f.display(0), lpvs_display::spec::DisplayKind::Oled);
        assert_eq!(f.gamma_std(1), 0.05);
        assert!(f.connected(0));
    }

    #[test]
    fn power_rates_include_non_display_floor() {
        let d = device(0.5, Resolution::HD);
        let p = gather_problem(
            std::slice::from_ref(&d),
            &[window(5, 0.5)],
            &[0.3],
            10.0,
            3000.0,
            10.0,
            10.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        assert!(p.requests[0].power_rates_w[0] > d.non_display_watts());
    }

    #[test]
    fn gamma_is_clamped_below_one() {
        let p = gather_problem(
            &[device(0.5, Resolution::HD)],
            &[window(5, 0.5)],
            &[1.0],
            10.0,
            3000.0,
            10.0,
            10.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        assert!(p.requests[0].gamma < 1.0);
    }

    #[test]
    fn corrupt_gamma_passes_through_for_the_sanitizer() {
        let p = gather_problem(
            &[device(0.5, Resolution::HD), device(0.5, Resolution::HD)],
            &[window(5, 0.5), window(5, 0.5)],
            &[f64::NAN, -0.4],
            10.0,
            3000.0,
            10.0,
            10.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        assert!(p.requests[0].gamma.is_nan());
        assert_eq!(p.requests[1].gamma, -0.4);
        let (clean, valid) = p.sanitize();
        assert_eq!(valid, vec![false, false]);
        assert!(clean.requests.iter().all(|r| r.is_valid()));
    }

    #[test]
    fn recycled_fleet_matches_a_fresh_build() {
        let devices = vec![device(0.4, Resolution::HD), device(0.8, Resolution::FHD)];
        let windows = vec![window(30, 0.5), window(30, 0.7)];
        let p = gather_problem(
            &devices,
            &windows,
            &[0.3, f64::NAN],
            10.0,
            3000.0,
            100.0,
            50.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        let (fresh, clean) = sanitized_fleet(&p, None);
        // Recycle a buffer previously filled with *different* content.
        let other = gather_problem(
            &devices,
            &vec![window(7, 0.2); 2],
            &[0.1, 0.1],
            10.0,
            3000.0,
            9.0,
            9.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
        let (stale, _) = sanitized_fleet(&other, None);
        let (recycled, clean2) = sanitized_fleet(&p, Some(stale));
        assert_eq!(fresh, recycled);
        assert_eq!(clean, clean2);
        // The corrupt row survived sanitization but is disconnected.
        assert!(!recycled.connected(1));
        assert!(recycled.connected(0));
    }

    #[test]
    #[should_panic(expected = "one gamma per device")]
    fn mismatched_gammas_rejected() {
        let _ = gather_problem(
            &[device(0.5, Resolution::HD)],
            &[window(5, 0.5)],
            &[],
            10.0,
            3000.0,
            10.0,
            10.0,
            1.0,
            &AnxietyCurve::paper_shape(),
        );
    }
}
