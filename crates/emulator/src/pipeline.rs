//! The pipelined slot loop: the [`Emulator`] driven through the staged
//! [`lpvs_runtime`] pipeline instead of its own sequential loop.
//!
//! [`EmulatorDriver`] implements [`SlotSource`]/[`SlotSink`] by
//! replaying the sequential engine's slot semantics stage by stage:
//!
//! * `begin_slot(t)` — fault preamble (reconnects, disconnects, one
//!   staleness forget per disconnected device) and content-window
//!   synthesis, all of which overlaps the in-flight solve of `t − 1`;
//! * `gather(t)` — γ assembly (posteriors answered by the shard-local
//!   banks), telemetry corruption, brownout derating, and the
//!   sanitize-and-columnarize step shared with the sequential sharded
//!   path ([`sanitized_fleet`]), refilling the recycled fleet buffer;
//! * `solved(s)` — stages the joined decision by device id and records
//!   the slot's degradation tier (patching the already-pushed record
//!   when the solve lands one slot late, as pipelined solves do);
//! * `apply(t)` — consumes staged decisions with slot `< t` (the
//!   one-slot-ahead rule, identical in pipelined and fallback modes),
//!   plays every watching device, and accounts the slot.
//!
//! Because pipelining *is* one-slot-ahead scheduling, a pipelined run
//! is bit-identical to a sequential `one_slot_ahead` run — same
//! [`SlotRecord`]s, same final γ posteriors (`tests/runtime.rs`).

use crate::engine::{slot_budget, slots_delta, Emulator, GammaMode};
use crate::faults::{FaultPlan, GammaCorruption, SlotFaults};
use crate::gather::{gather_problem, sanitized_fleet};
use crate::metrics::{EmulationReport, SlotRecord};
use lpvs_bayes::GAMMA_PRIOR_MEAN;
use lpvs_core::baseline::Policy;
use lpvs_core::scheduler::{Degradation, LpvsScheduler};
use lpvs_display::stats::FrameStats;
use lpvs_edge::fleet::{FleetConfig, Partitioner};
use lpvs_runtime::checkpoint::CheckpointConfig;
use lpvs_runtime::pipeline::{RuntimeConfig, RuntimeReport, SlotRuntime, StageFaults};
use lpvs_runtime::{
    BankOps, GatheredSlot, SlotFeedback, SlotReplay, SlotSink, SlotSource, SolvedSlot,
};

/// Domain-separation salt for the checkpoint-corruption RNG, so it
/// never correlates with the stage-fault decisions even under the same
/// user-facing seed.
const CORRUPTION_SEED_SALT: u64 = 0xC0DE_C0DE_5EED_D15C;

/// Runs an emulator through the staged pipeline. The γ estimators move
/// out of the emulator into shard-local banks for the duration of the
/// run; the merged bank comes back in the report's `gamma_posteriors`.
pub(crate) fn run_pipelined(mut emu: Emulator) -> EmulationReport {
    let scheduler = match emu.policy {
        Policy::Lpvs => LpvsScheduler::paper_default(),
        Policy::LpvsPhase1Only => LpvsScheduler::phase1_only(),
        other => unreachable!("pipelined run routed a baseline policy {other:?}"),
    };
    let estimators = std::mem::take(&mut emu.estimators);
    let stage_faults = (emu.config.faults.stage_fault_rate > 0.0).then_some(StageFaults {
        rate: emu.config.faults.stage_fault_rate,
        seed: emu.config.faults.seed,
        repeat: emu.config.faults.stage_fault_repeat,
    });
    let spec = emu.checkpoints.take();
    let checkpoints = spec.as_ref().map(|s| CheckpointConfig {
        dir: s.dir.clone(),
        interval: s.interval,
        generations: s.generations,
        corruption: (emu.config.faults.checkpoint_corrupt_rate > 0.0).then_some((
            emu.config.faults.checkpoint_corrupt_rate,
            emu.config.faults.seed ^ CORRUPTION_SEED_SALT,
        )),
    });
    let halt_after_slot = spec.as_ref().and_then(|s| s.halt_after);
    let resume = spec.as_ref().is_some_and(|s| s.resume);
    let runtime = SlotRuntime::new(RuntimeConfig {
        // Mirror the sequential sharded path's fleet setup exactly, so
        // the two modes solve identical shard problems.
        fleet: FleetConfig {
            num_shards: emu.config.num_edges,
            partitioner: Partitioner::Locality,
            scheduler: *scheduler.config(),
            ..FleetConfig::default()
        },
        stage_faults,
        checkpoints,
        halt_after_slot,
        ..RuntimeConfig::default()
    });
    let mut driver = EmulatorDriver::new(emu);
    let report = if resume {
        // Banks come back from the manifest's snapshot generations; the
        // fresh estimators (same prior state the original run split)
        // are superseded and dropped.
        runtime.resume(&mut driver).expect("resume requires a valid run manifest")
    } else {
        runtime.run(&mut driver, estimators)
    };
    driver.finish(report)
}

/// Per-slot state carried from `begin_slot` to `gather` and `apply`.
struct Scratch {
    slot: usize,
    faults: SlotFaults,
    /// Device indices watching this slot.
    watching: Vec<usize>,
    /// Full playback windows, one per watching device.
    windows: Vec<Vec<FrameStats>>,
}

/// The [`Emulator`] adapted to the runtime's source/sink traits.
pub(crate) struct EmulatorDriver {
    emu: Emulator,
    plan: FaultPlan,
    n: usize,
    horizon: usize,
    scratch: Option<Scratch>,
    /// Fleet-order device ids of dispatched, not-yet-solved slots.
    dispatched: Vec<(usize, Vec<usize>)>,
    /// Solved decisions (by device) awaiting their application slot.
    staged: Vec<(usize, Vec<bool>)>,
    /// The decision currently in force — the sequential engine's
    /// `pending` vector.
    pending: Vec<bool>,
    /// Applied decisions of the previous slot (churn + warm starts).
    previous_by_device: Option<Vec<bool>>,
    /// Degradation tier per slot, set when its solve is joined.
    tiers: Vec<Option<Degradation>>,
    slots: Vec<SlotRecord>,
    initial_battery: Vec<f64>,
    ever_selected: Vec<bool>,
    total_display: f64,
    total_counterfactual: f64,
    total_energy: f64,
}

impl EmulatorDriver {
    fn new(emu: Emulator) -> Self {
        let n = emu.config.devices;
        let horizon = emu.config.slots;
        let plan = FaultPlan::generate(&emu.config.faults, horizon, n);
        let initial_battery =
            emu.cluster.devices().iter().map(|d| d.battery().fraction()).collect();
        Self {
            emu,
            plan,
            n,
            horizon,
            scratch: None,
            dispatched: Vec::new(),
            staged: Vec::new(),
            pending: vec![false; n],
            previous_by_device: None,
            tiers: vec![None; horizon],
            slots: Vec::with_capacity(horizon),
            initial_battery,
            ever_selected: vec![false; n],
            total_display: 0.0,
            total_counterfactual: 0.0,
            total_energy: 0.0,
        }
    }

    /// Assembles the final report once the runtime has drained.
    fn finish(self, report: RuntimeReport) -> EmulationReport {
        let devices = self.emu.cluster.devices();
        EmulationReport {
            display_energy_j: self.total_display,
            counterfactual_display_j: self.total_counterfactual,
            total_energy_j: self.total_energy,
            watch_minutes: devices.iter().map(|d| d.watched_secs() / 60.0).collect(),
            initial_battery: self.initial_battery,
            final_battery: devices.iter().map(|d| d.battery().fraction()).collect(),
            gave_up: devices.iter().map(|d| d.has_given_up()).collect(),
            ever_selected: self.ever_selected,
            gamma_posteriors: report
                .estimators
                .iter()
                .map(|e| (e.expected(), e.uncertainty()))
                .collect(),
            scheduler_runtime: report.solve_runtime,
            runtime: Some(report.summary),
            obs: lpvs_obs::enabled()
                .then(|| lpvs_obs::installed().map(|r| r.snapshot()))
                .flatten(),
            slots: self.slots,
        }
    }
}

impl SlotSource for EmulatorDriver {
    fn begin_slot(&mut self, slot: usize) -> Option<BankOps> {
        if slot >= self.horizon {
            return None;
        }
        let faults = self.plan.slot(slot);
        for &d in &faults.reconnects {
            self.emu.cluster.devices_mut()[d].reconnect();
        }
        for &d in &faults.disconnects {
            self.emu.cluster.devices_mut()[d].disconnect();
        }
        // A slot off the link is a slot the estimator learned nothing:
        // inflate its uncertainty so the next observation counts more.
        let forgets: Vec<(usize, u32)> = self
            .emu
            .cluster
            .devices()
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_connected())
            .map(|(i, _)| (i, 1))
            .collect();
        let watching: Vec<usize> =
            (0..self.n).filter(|&i| self.emu.cluster.devices()[i].is_watching()).collect();
        // Window synthesis is the bulk of gathering; running it here
        // overlaps it with the in-flight solve of the previous slot.
        let windows: Vec<Vec<FrameStats>> =
            watching.iter().map(|&i| self.emu.content_window(i, slot)).collect();
        let queries = match self.emu.config.gamma_mode {
            GammaMode::Learned => watching.clone(),
            GammaMode::Fixed(_) | GammaMode::Oracle => Vec::new(),
        };
        self.scratch = Some(Scratch { slot, faults, watching, windows });
        Some(BankOps { forgets, queries })
    }

    fn gather(
        &mut self,
        slot: usize,
        posteriors: &[(f64, f64)],
        recycled: Option<lpvs_core::fleet::DeviceFleet>,
    ) -> Option<GatheredSlot> {
        let scratch = self.scratch.take().expect("gather follows begin_slot");
        debug_assert_eq!(scratch.slot, slot, "gather out of step with begin_slot");
        let _span = lpvs_obs::span!(
            "emu.gather", "slot" => slot, "devices" => scratch.watching.len()
        );
        if scratch.watching.is_empty() {
            self.scratch = Some(scratch);
            return None;
        }
        // The prefetch policy bounds how many chunks the edge holds at
        // the scheduling point (K_m, eq. 1); playback still covers the
        // full window.
        let decision_windows: Vec<Vec<FrameStats>> = scratch
            .watching
            .iter()
            .zip(&scratch.windows)
            .map(|(&i, w)| {
                let k = self
                    .emu
                    .config
                    .prefetch
                    .available_chunks(w.len(), 0, self.emu.channel_viewers[i])
                    .max(1)
                    .min(w.len());
                w[..k].to_vec()
            })
            .collect();
        let devices: Vec<_> =
            scratch.watching.iter().map(|&i| self.emu.cluster.devices()[i].clone()).collect();
        let mut gammas: Vec<f64> = match self.emu.config.gamma_mode {
            GammaMode::Learned => posteriors.iter().map(|&(mean, _)| mean).collect(),
            GammaMode::Fixed(g) => vec![g; scratch.watching.len()],
            GammaMode::Oracle => scratch
                .watching
                .iter()
                .zip(&decision_windows)
                .map(|(&i, window)| self.emu.oracle_gamma(i, window))
                .collect(),
        };
        // Corrupt γ reports *after* estimation: the fault models the
        // telemetry link, not the estimator.
        for &(dev, kind) in &scratch.faults.gamma_corruptions {
            if let Some(w) = scratch.watching.iter().position(|&i| i == dev) {
                gammas[w] = match kind {
                    GammaCorruption::Nan => f64::NAN,
                    GammaCorruption::Negative => -0.4,
                    GammaCorruption::Huge => 4.2,
                    GammaCorruption::Stale => GAMMA_PRIOR_MEAN,
                };
            }
        }
        // A brownout derates the capacities the scheduler sees; the
        // physical server is unchanged.
        let (compute, storage) = match scratch.faults.brownout_factor {
            Some(f) => {
                let derated = self.emu.cluster.server().browned_out(f);
                derated.publish_gauges();
                (derated.compute_capacity(), derated.storage_capacity_gb())
            }
            None => {
                lpvs_obs::gauge_set("edge_brownout_factor", 1.0);
                self.emu.cluster.server().publish_gauges();
                (
                    self.emu.cluster.server().compute_capacity(),
                    self.emu.cluster.server().storage_capacity_gb(),
                )
            }
        };
        let problem = gather_problem(
            &devices,
            &decision_windows,
            &gammas,
            self.emu.config.chunk_secs,
            self.emu.bitrate_kbps,
            compute,
            storage,
            self.emu.config.lambda,
            &self.emu.curve,
        );
        let budget = slot_budget(&scratch.faults.budget_cut);
        let warm: Option<Vec<bool>> = self
            .previous_by_device
            .as_ref()
            .map(|prev| scratch.watching.iter().map(|&i| prev[i]).collect());
        let (fleet, clean) = sanitized_fleet(&problem, recycled);
        let gathered = GatheredSlot {
            slot,
            fleet,
            device_ids: scratch.watching.clone(),
            compute_capacity: clean.compute_capacity,
            storage_capacity_gb: clean.storage_capacity_gb,
            lambda: clean.lambda,
            curve: clean.curve,
            budget,
            warm,
            // The emulator rebuilds its fleet from the trace every
            // slot, so it cannot attest to a change set — every shard
            // solves cold, exactly as before deltas existed.
            delta: None,
        };
        self.dispatched.push((slot, scratch.watching.clone()));
        self.scratch = Some(scratch);
        Some(gathered)
    }
}

impl SlotSink for EmulatorDriver {
    fn solved(&mut self, solved: &SolvedSlot) {
        let pos = self
            .dispatched
            .iter()
            .position(|(slot, _)| *slot == solved.slot)
            .expect("solved a slot that was never dispatched");
        let (_, ids) = self.dispatched.remove(pos);
        // Stage the decision exactly as the sequential engine fills its
        // `pending` vector: reset, then set the watching devices.
        let mut by_device = vec![false; self.n];
        for (j, &d) in ids.iter().enumerate() {
            by_device[d] = solved.schedule.selected[j];
        }
        self.staged.push((solved.slot, by_device));
        // The slot's record carries the tier of the solve *dispatched*
        // at it. Pipelined solves join one slot late, after the record
        // was pushed — patch it in; fallback solves join before.
        self.tiers[solved.slot] = Some(solved.tier);
        if let Some(record) = self.slots.get_mut(solved.slot) {
            record.degradation = Some(solved.tier);
        }
    }

    fn apply(&mut self, slot: usize) -> SlotFeedback {
        let scratch = self.scratch.take().expect("apply follows begin_slot");
        debug_assert_eq!(scratch.slot, slot, "apply out of step with begin_slot");
        let _span = lpvs_obs::span!(
            "emu.apply", "slot" => slot, "devices" => scratch.watching.len()
        );
        // One-slot-ahead: decisions solved before this slot come into
        // force now (the latest wins; earlier ones lapsed unapplied
        // while nobody watched).
        let mut i = 0;
        while i < self.staged.len() {
            if self.staged[i].0 < slot {
                self.pending = self.staged.remove(i).1;
            } else {
                i += 1;
            }
        }

        let mut selected_count = 0usize;
        let mut current_by_device = vec![false; self.n];
        let mut observations: Vec<(usize, f64)> = Vec::new();
        for (w_idx, &dev_idx) in scratch.watching.iter().enumerate() {
            let transform = self.pending[dev_idx];
            if transform {
                self.ever_selected[dev_idx] = true;
                selected_count += 1;
                current_by_device[dev_idx] = true;
            }
            let (display_j, counter_j, device_j, observed) =
                self.emu.play_slot_raw(dev_idx, &scratch.windows[w_idx], transform);
            self.total_display += display_j;
            self.total_counterfactual += counter_j;
            self.total_energy += device_j;
            if let Some(ratio) = observed {
                observations.push((dev_idx, ratio));
            }
        }

        let churn = self.previous_by_device.as_ref().map(|prev| {
            let flips =
                prev.iter().zip(&current_by_device).filter(|(a, b)| a != b).count();
            flips as f64 / self.n as f64
        });
        self.previous_by_device = Some(current_by_device);
        let mean_anxiety = self
            .emu
            .cluster
            .devices()
            .iter()
            .map(|d| self.emu.curve.phi(d.battery().fraction()))
            .sum::<f64>()
            / self.n as f64;
        self.slots.push(SlotRecord {
            slot,
            display_energy_j: slots_delta(&self.slots, self.total_display, |s| {
                s.display_energy_j
            }),
            counterfactual_display_j: slots_delta(&self.slots, self.total_counterfactual, |s| {
                s.counterfactual_display_j
            }),
            total_energy_j: slots_delta(&self.slots, self.total_energy, |s| s.total_energy_j),
            mean_anxiety,
            watching: self.emu.cluster.watching_count(),
            selected: selected_count,
            churn,
            degradation: self.tiers[slot],
        });
        SlotFeedback { observations }
    }
}

impl SlotReplay for EmulatorDriver {
    fn stage_decision(
        &mut self,
        slot: usize,
        device_ids: &[usize],
        selected: &[bool],
        tier: Degradation,
    ) {
        // Mirrors `solved` minus the `dispatched` bookkeeping (replayed
        // slots were never dispatched): stage the decision by device,
        // record the tier, patch the already-pushed record.
        let mut by_device = vec![false; self.n];
        for (j, &d) in device_ids.iter().enumerate() {
            by_device[d] = selected[j];
        }
        self.staged.push((slot, by_device));
        self.tiers[slot] = Some(tier);
        if let Some(record) = self.slots.get_mut(slot) {
            record.degradation = Some(tier);
        }
    }

    fn replay_slot(&mut self, slot: usize) {
        // Faults, windows, playback, accounting — everything except
        // gather/solve, whose outcome arrives via `stage_decision`. The
        // feedback is discarded: the restored banks already learned it.
        if self.begin_slot(slot).is_some() {
            let _ = self.apply(slot);
        }
    }
}
