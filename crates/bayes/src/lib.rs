//! # lpvs-bayes — Bayesian estimation of power-reduction ratios
//!
//! LPVS never knows a device's power-reduction ratio `γ_n` ahead of
//! time (paper Remark 2): the ratio depends on display type and on the
//! content actually played. The paper resolves this circular dependency
//! by treating `γ_n` as a Gaussian random variable and updating it with
//! conjugate Bayesian inference after every played slot (§V-D,
//! eqs. 15–19). This crate provides that machinery:
//!
//! * [`gaussian`] — Gaussian distribution with an `erf`-based CDF;
//! * [`conjugate`] — the Gaussian–Gaussian conjugate posterior update
//!   (eq. 17, computed in closed form as the paper notes);
//! * [`truncated`] — truncated Gaussian moments on `[γ_L, γ_U]`, giving
//!   the bounded expectation of eq. 19;
//! * [`integrate`] — adaptive Simpson quadrature used to evaluate the
//!   marginal of eq. 18 for non-conjugate likelihoods and to
//!   cross-check the closed forms in tests;
//! * [`estimator`] — [`GammaEstimator`], the per-device state machine
//!   the scheduler actually holds;
//! * [`bank`] — [`BayesBank`], shard-local collections of estimators
//!   that split/migrate/merge without ever touching a posterior, so the
//!   pipelined runtime can own γ state per shard.
//!
//! # Example
//!
//! ```
//! use lpvs_bayes::GammaEstimator;
//!
//! // Paper initialization: γ ∈ [0.13, 0.49], prior mean 0.31, σ² = 12.
//! let mut est = GammaEstimator::paper_default();
//! assert!((est.expected() - 0.31).abs() < 1e-6);
//!
//! // After observing strong savings the estimate moves up, but never
//! // outside the Table I band.
//! est.observe(0.45);
//! est.observe(0.47);
//! assert!(est.expected() > 0.31);
//! assert!(est.expected() <= 0.49);
//! ```

#![warn(missing_docs)]

pub mod bank;
pub mod codec;
pub mod conjugate;
pub mod estimator;
pub mod gaussian;
pub mod integrate;
pub mod truncated;

pub use bank::BayesBank;
pub use conjugate::ConjugateUpdate;
pub use estimator::{GammaEstimator, ObservationError};
pub use gaussian::Gaussian;
pub use integrate::simpson;
pub use truncated::TruncatedGaussian;

/// Lower bound of the power-reduction ratio band from Table I of the
/// paper (average lower bound across strategies, 13 %).
pub const GAMMA_LOWER: f64 = 0.13;

/// Upper bound of the power-reduction ratio band from Table I of the
/// paper (average upper bound across strategies, 49 %).
pub const GAMMA_UPPER: f64 = 0.49;

/// Prior mean used in the paper's emulation: `(0.13 + 0.49) / 2`.
pub const GAMMA_PRIOR_MEAN: f64 = (GAMMA_LOWER + GAMMA_UPPER) / 2.0;

/// Prior variance used in the paper's emulation (§V-D sets `σ² = 12`,
/// deliberately diffuse relative to the `[0.13, 0.49]` band).
pub const GAMMA_PRIOR_VARIANCE: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_consistent() {
        assert!((GAMMA_PRIOR_MEAN - 0.31).abs() < 1e-12);
        let (lo, hi) = (GAMMA_LOWER, GAMMA_UPPER);
        assert!(lo < hi);
    }
}
