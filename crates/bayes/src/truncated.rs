//! Truncated Gaussian moments on a closed interval.
//!
//! The paper keeps `γ_n` inside the Table I band `[γ_L, γ_U]`: the
//! marginal of eq. 18 and the expectation of eq. 19 both integrate over
//! that interval only. A Gaussian restricted to `[lo, hi]` has
//! closed-form mass, mean, and variance in terms of the standard normal
//! pdf/cdf; this module implements them (with quadrature cross-checks
//! in the tests).

use crate::gaussian::Gaussian;
use serde::{Deserialize, Serialize};

/// A Gaussian conditioned on lying inside `[lo, hi]`.
///
/// # Example
///
/// ```
/// use lpvs_bayes::{Gaussian, TruncatedGaussian};
///
/// // A diffuse prior truncated to the Table I band is nearly uniform,
/// // so its mean sits at the band center.
/// let t = TruncatedGaussian::new(Gaussian::new(0.31, 12.0), 0.13, 0.49);
/// assert!((t.mean() - 0.31).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedGaussian {
    parent: Gaussian,
    lo: f64,
    hi: f64,
}

impl TruncatedGaussian {
    /// Truncates `parent` to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn new(parent: Gaussian, lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "truncation interval must be non-degenerate");
        Self { parent, lo, hi }
    }

    /// The untruncated parent distribution.
    pub fn parent(&self) -> Gaussian {
        self.parent
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Probability mass the parent places on `[lo, hi]` (the
    /// normalization constant `Z`).
    pub fn mass(&self) -> f64 {
        self.parent.cdf(self.hi) - self.parent.cdf(self.lo)
    }

    /// Density at `x` (zero outside the interval).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        let z = self.mass();
        if z <= f64::MIN_POSITIVE {
            // Degenerate truncation far in a tail: approximate by a
            // point mass at the nearer bound.
            return 0.0;
        }
        self.parent.pdf(x) / z
    }

    /// Cumulative distribution `P(X ≤ x | lo ≤ X ≤ hi)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let z = self.mass();
        if z <= f64::MIN_POSITIVE {
            return if x >= self.nearest_bound() { 1.0 } else { 0.0 };
        }
        (self.parent.cdf(x) - self.parent.cdf(self.lo)) / z
    }

    /// Mean of the truncated distribution — eq. 19 of the paper when
    /// applied to the posterior of `γ_n`.
    pub fn mean(&self) -> f64 {
        let mu = self.parent.mean();
        let sd = self.parent.std_dev();
        let alpha = (self.lo - mu) / sd;
        let beta = (self.hi - mu) / sd;
        let std = Gaussian::standard();
        let z = std.cdf(beta) - std.cdf(alpha);
        if z <= f64::MIN_POSITIVE {
            return self.nearest_bound();
        }
        mu + sd * (std.pdf(alpha) - std.pdf(beta)) / z
    }

    /// Variance of the truncated distribution.
    pub fn variance(&self) -> f64 {
        let mu = self.parent.mean();
        let sd = self.parent.std_dev();
        let alpha = (self.lo - mu) / sd;
        let beta = (self.hi - mu) / sd;
        let std = Gaussian::standard();
        let z = std.cdf(beta) - std.cdf(alpha);
        if z <= f64::MIN_POSITIVE {
            return 0.0;
        }
        let pa = std.pdf(alpha);
        let pb = std.pdf(beta);
        let correction = (alpha * pa - beta * pb) / z - ((pa - pb) / z).powi(2);
        (sd * sd * (1.0 + correction)).max(0.0)
    }

    /// Draws one sample by inverse-CDF over the truncated interval.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = self.mass();
        if z <= f64::MIN_POSITIVE {
            return self.nearest_bound();
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let target = self.parent.cdf(self.lo) + u * z;
        // The quantile is clamped into the interval to absorb the CDF
        // approximation error at the edges.
        self.parent.quantile(target.clamp(1e-15, 1.0 - 1e-15)).clamp(self.lo, self.hi)
    }

    /// Bound nearest to the parent mean — the limit of the truncated
    /// mean when essentially no mass falls inside the interval.
    fn nearest_bound(&self) -> f64 {
        if self.parent.mean() < self.lo {
            self.lo
        } else {
            self.hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::simpson;
    use rand::SeedableRng;

    fn band() -> TruncatedGaussian {
        TruncatedGaussian::new(Gaussian::new(0.31, 12.0), 0.13, 0.49)
    }

    #[test]
    fn pdf_normalizes_on_interval() {
        let t = band();
        let total = simpson(|x| t.pdf(x), 0.13, 0.49, 2048);
        assert!((total - 1.0).abs() < 1e-5, "mass {total}");
    }

    #[test]
    fn mean_matches_quadrature() {
        for &(mu, var) in &[(0.31, 12.0), (0.0, 0.01), (0.45, 0.003), (1.5, 0.2)] {
            let t = TruncatedGaussian::new(Gaussian::new(mu, var), 0.13, 0.49);
            let numeric = simpson(|x| x * t.pdf(x), 0.13, 0.49, 4096);
            assert!(
                (t.mean() - numeric).abs() < 1e-4,
                "closed form {} vs quadrature {numeric} for mu={mu}",
                t.mean()
            );
        }
    }

    #[test]
    fn variance_matches_quadrature() {
        let t = TruncatedGaussian::new(Gaussian::new(0.3, 0.05), 0.13, 0.49);
        let mean = t.mean();
        let numeric = simpson(|x| (x - mean).powi(2) * t.pdf(x), 0.13, 0.49, 4096);
        assert!((t.variance() - numeric).abs() < 1e-7);
    }

    #[test]
    fn mean_stays_inside_bounds() {
        for &mu in &[-100.0, -1.0, 0.0, 0.31, 1.0, 100.0] {
            let t = TruncatedGaussian::new(Gaussian::new(mu, 2.0), 0.13, 0.49);
            let m = t.mean();
            assert!((0.13..=0.49).contains(&m), "mean {m} escaped for mu={mu}");
        }
    }

    #[test]
    fn extreme_truncation_degrades_to_bound() {
        // Parent mean 50σ above the interval: numerically zero mass.
        let t = TruncatedGaussian::new(Gaussian::new(100.0, 1.0), 0.13, 0.49);
        assert_eq!(t.mean(), 0.49);
        let t = TruncatedGaussian::new(Gaussian::new(-100.0, 1.0), 0.13, 0.49);
        assert_eq!(t.mean(), 0.13);
    }

    #[test]
    fn cdf_endpoints() {
        let t = band();
        assert_eq!(t.cdf(0.0), 0.0);
        assert_eq!(t.cdf(1.0), 1.0);
        assert!((t.cdf(0.31) - 0.5).abs() < 1e-2); // near-uniform band
    }

    #[test]
    fn pdf_zero_outside() {
        let t = band();
        assert_eq!(t.pdf(0.1), 0.0);
        assert_eq!(t.pdf(0.5), 0.0);
        assert!(t.pdf(0.31) > 0.0);
    }

    #[test]
    fn samples_stay_in_band_and_match_mean() {
        let t = TruncatedGaussian::new(Gaussian::new(0.4, 0.02), 0.13, 0.49);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 8000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = t.sample(&mut rng);
            assert!((0.13..=0.49).contains(&s));
            sum += s;
        }
        let mean = sum / n as f64;
        assert!((mean - t.mean()).abs() < 0.01, "sample mean {mean} vs {}", t.mean());
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_interval_rejected() {
        let _ = TruncatedGaussian::new(Gaussian::standard(), 0.5, 0.5);
    }
}
