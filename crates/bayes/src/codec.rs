//! Binary codec for γ estimators and shard banks.
//!
//! The checkpoint subsystem of `lpvs-runtime` persists each shard's
//! [`BayesBank`] across worker deaths and hub restarts. The vendored
//! `serde` is a no-op, so the encoding is hand-rolled on
//! [`lpvs_codec`] primitives. Floats travel as raw IEEE-754 bits:
//! `decode(encode(bank))` reproduces every posterior **bit-exactly**,
//! which is the property the checkpoint proptests pin — a restored
//! shard must continue the horizon indistinguishably from one that
//! never died.
//!
//! The payload here is section content only; versioning, checksums,
//! and corruption handling live in the snapshot container
//! (`lpvs_runtime::checkpoint`).

use crate::bank::BayesBank;
use crate::estimator::GammaEstimator;
use crate::gaussian::Gaussian;
use lpvs_codec::{CodecError, Reader, Writer};

/// Encoded size of one estimator record (7 scalars, 8 bytes each) —
/// used to pre-size checkpoint buffers.
pub const ESTIMATOR_RECORD_BYTES: usize = 7 * 8;

/// Appends one estimator's full state: belief mean/variance,
/// observation-noise variance, truncation band, observation count, and
/// the original prior variance (the forgetting ceiling).
pub fn encode_estimator(w: &mut Writer, est: &GammaEstimator) {
    let belief = est.belief();
    let (lo, hi) = est.band();
    w.put_f64(belief.mean());
    w.put_f64(belief.variance());
    w.put_f64(est.observation_variance());
    w.put_f64(lo);
    w.put_f64(hi);
    w.put_usize(est.observations());
    w.put_f64(est.prior_variance());
}

/// Decodes one estimator, validating every invariant
/// [`GammaEstimator::from_parts`] would otherwise panic on — corrupt
/// bytes come back as [`CodecError::Malformed`], never a panic.
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input; [`CodecError::Malformed`]
/// on non-finite means, non-positive variances, or an inverted band.
pub fn decode_estimator(r: &mut Reader<'_>) -> Result<GammaEstimator, CodecError> {
    let mean = r.f64()?;
    let variance = r.f64()?;
    let observation_variance = r.f64()?;
    let lo = r.f64()?;
    let hi = r.f64()?;
    let observations = r.usize_()?;
    let prior_variance = r.f64()?;
    if !mean.is_finite() || !variance.is_finite() || variance <= 0.0 {
        return Err(CodecError::Malformed("estimator belief"));
    }
    if !observation_variance.is_finite() || observation_variance <= 0.0 {
        return Err(CodecError::Malformed("estimator observation variance"));
    }
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(CodecError::Malformed("estimator band"));
    }
    if !prior_variance.is_finite() || prior_variance <= 0.0 {
        return Err(CodecError::Malformed("estimator prior variance"));
    }
    Ok(GammaEstimator::from_parts(
        Gaussian::new(mean, variance),
        observation_variance,
        lo,
        hi,
        observations,
        prior_variance,
    ))
}

/// Appends a whole bank: entry count, then `(device, estimator)` pairs
/// in ascending device order (the bank's own iteration order, so the
/// encoding is canonical — equal banks encode to equal bytes).
pub fn encode_bank(w: &mut Writer, bank: &BayesBank) {
    w.put_usize(bank.len());
    for d in bank.devices().collect::<Vec<_>>() {
        w.put_usize(d);
        encode_estimator(w, bank.get(d).expect("devices() yields owned ids"));
    }
}

/// Decodes a bank, enforcing strictly ascending device ids (a
/// duplicate or out-of-order id means the bytes are not a canonical
/// encoding).
///
/// # Errors
///
/// Any [`CodecError`] from [`decode_estimator`], or
/// [`CodecError::Malformed`] on a non-ascending device id.
pub fn decode_bank(r: &mut Reader<'_>) -> Result<BayesBank, CodecError> {
    let n = r.usize_()?;
    let mut bank = BayesBank::new();
    let mut previous: Option<usize> = None;
    for _ in 0..n {
        let d = r.usize_()?;
        if previous.is_some_and(|p| p >= d) {
            return Err(CodecError::Malformed("bank device order"));
        }
        previous = Some(d);
        bank.insert(d, decode_estimator(r)?);
    }
    Ok(bank)
}

/// Encodes a bank into a fresh byte buffer.
pub fn bank_to_bytes(bank: &BayesBank) -> Vec<u8> {
    let mut w = Writer::with_capacity(8 + bank.len() * (8 + ESTIMATOR_RECORD_BYTES));
    encode_bank(&mut w, bank);
    w.into_bytes()
}

/// Decodes a bank from a byte buffer, requiring the buffer to contain
/// exactly one bank.
///
/// # Errors
///
/// Any [`CodecError`] from [`decode_bank`], or
/// [`CodecError::TrailingBytes`] if input remains.
pub fn bank_from_bytes(bytes: &[u8]) -> Result<BayesBank, CodecError> {
    let mut r = Reader::new(bytes);
    let bank = decode_bank(&mut r)?;
    r.expect_end()?;
    Ok(bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learned_bank(n: usize) -> BayesBank {
        let mut estimators = vec![GammaEstimator::paper_default(); n];
        for (i, est) in estimators.iter_mut().enumerate() {
            for k in 0..i {
                est.observe(0.15 + 0.02 * (k % 7) as f64);
            }
            if i % 3 == 0 {
                est.forget(2);
            }
        }
        BayesBank::from_estimators(estimators)
    }

    #[test]
    fn bank_round_trips_bit_exactly() {
        let bank = learned_bank(23);
        let decoded = bank_from_bytes(&bank_to_bytes(&bank)).expect("decode");
        assert_eq!(decoded, bank);
        for d in bank.devices() {
            assert_eq!(decoded.posterior(d), bank.posterior(d));
            let (a, b) = (decoded.get(d).unwrap(), bank.get(d).unwrap());
            assert_eq!(a.belief().mean().to_bits(), b.belief().mean().to_bits());
            assert_eq!(a.belief().variance().to_bits(), b.belief().variance().to_bits());
            assert_eq!(a.observations(), b.observations());
            assert_eq!(a.prior_variance().to_bits(), b.prior_variance().to_bits());
        }
    }

    #[test]
    fn sparse_banks_keep_their_ids() {
        let mut bank = BayesBank::new();
        for d in [3usize, 17, 404] {
            let mut est = GammaEstimator::paper_default();
            est.observe(0.2 + d as f64 * 1e-4);
            bank.insert(d, est);
        }
        let decoded = bank_from_bytes(&bank_to_bytes(&bank)).expect("decode");
        assert_eq!(decoded, bank);
        assert_eq!(decoded.devices().collect::<Vec<_>>(), vec![3, 17, 404]);
    }

    #[test]
    fn empty_bank_round_trips() {
        let bank = BayesBank::new();
        assert_eq!(bank_from_bytes(&bank_to_bytes(&bank)).expect("decode"), bank);
    }

    #[test]
    fn corrupt_scalars_are_rejected_not_panicked() {
        let bank = learned_bank(4);
        let clean = bank_to_bytes(&bank);
        // Overwrite the first estimator's belief variance with NaN bits.
        let mut bytes = clean.clone();
        let variance_at = 8 + 8 + 8; // count, device id, mean
        bytes[variance_at..variance_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(bank_from_bytes(&bytes), Err(CodecError::Malformed(_))));
        // Truncation anywhere is an error, never a partial bank.
        for cut in [1, 9, clean.len() - 1] {
            assert!(bank_from_bytes(&clean[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn non_ascending_ids_are_rejected() {
        let mut w = Writer::new();
        w.put_usize(2);
        w.put_usize(5);
        encode_estimator(&mut w, &GammaEstimator::paper_default());
        w.put_usize(5);
        encode_estimator(&mut w, &GammaEstimator::paper_default());
        assert_eq!(
            bank_from_bytes(&w.into_bytes()),
            Err(CodecError::Malformed("bank device order"))
        );
    }
}
