//! Per-device estimator of the power-reduction ratio `γ_n`.
//!
//! This is the state machine the LPVS scheduler holds for every device
//! (paper §V-D): a Gaussian belief, a conjugate update applied at the
//! end of each slot in which the device played transformed video, and a
//! truncated expectation over the Table I band used as the point
//! estimate for the next slot's optimization.

use crate::conjugate::ConjugateUpdate;
use crate::gaussian::Gaussian;
use crate::truncated::TruncatedGaussian;
use crate::{GAMMA_LOWER, GAMMA_PRIOR_MEAN, GAMMA_PRIOR_VARIANCE, GAMMA_UPPER};
use serde::{Deserialize, Serialize};

/// Default observation-noise standard deviation: per-slot measured
/// savings wobble a few percentage points around the device's true
/// ratio depending on content.
pub const DEFAULT_OBSERVATION_STD: f64 = 0.03;

/// Online Bayesian estimator for one device's power-reduction ratio.
///
/// # Example
///
/// ```
/// use lpvs_bayes::GammaEstimator;
///
/// let mut est = GammaEstimator::paper_default();
/// let before = est.expected();
/// est.observe(0.22); // device saves less than the prior suggested
/// assert!(est.expected() < before);
/// assert!(est.observations() == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaEstimator {
    belief: Gaussian,
    rule: ConjugateUpdate,
    lo: f64,
    hi: f64,
    observations: usize,
}

impl GammaEstimator {
    /// Creates an estimator with an explicit prior, observation noise,
    /// and truncation band.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (via [`TruncatedGaussian`]) or the noise
    /// variance is not positive (via [`ConjugateUpdate`]).
    pub fn new(prior: Gaussian, observation_variance: f64, lo: f64, hi: f64) -> Self {
        // Validate the band eagerly.
        let _ = TruncatedGaussian::new(prior, lo, hi);
        Self {
            belief: prior,
            rule: ConjugateUpdate::new(observation_variance),
            lo,
            hi,
            observations: 0,
        }
    }

    /// The paper's emulation setup: prior `N(0.31, 12)` truncated to
    /// `[0.13, 0.49]` (§VI-B).
    pub fn paper_default() -> Self {
        Self::new(
            Gaussian::new(GAMMA_PRIOR_MEAN, GAMMA_PRIOR_VARIANCE),
            DEFAULT_OBSERVATION_STD * DEFAULT_OBSERVATION_STD,
            GAMMA_LOWER,
            GAMMA_UPPER,
        )
    }

    /// Current Gaussian belief (untruncated).
    pub fn belief(&self) -> Gaussian {
        self.belief
    }

    /// Truncation band `[lo, hi]`.
    pub fn band(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of observations folded in so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Point estimate for scheduling: the posterior mean truncated to
    /// the band — the paper's eq. 19.
    pub fn expected(&self) -> f64 {
        TruncatedGaussian::new(self.belief, self.lo, self.hi).mean()
    }

    /// Posterior standard deviation (untruncated belief), a measure of
    /// remaining uncertainty.
    pub fn uncertainty(&self) -> f64 {
        self.belief.std_dev()
    }

    /// Folds in one observed per-slot power-reduction ratio (eq. 17).
    ///
    /// Observations are clamped to `[0, 1]` — a measured ratio outside
    /// that range is a measurement artifact, not a usable signal.
    pub fn observe(&mut self, delta: f64) {
        let delta = delta.clamp(0.0, 1.0);
        self.belief = self.rule.update(self.belief, delta);
        self.observations += 1;
    }

    /// Folds in several observations at once.
    pub fn observe_batch(&mut self, deltas: &[f64]) {
        for &d in deltas {
            self.observe(d);
        }
    }
}

impl Default for GammaEstimator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_starts_at_band_center() {
        let est = GammaEstimator::paper_default();
        // σ² = 12 over a 0.36-wide band is effectively uniform.
        assert!((est.expected() - 0.31).abs() < 1e-3);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn converges_to_true_ratio() {
        let mut est = GammaEstimator::paper_default();
        let truth = 0.42;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let noise: f64 = rng.gen_range(-0.03..0.03);
            est.observe(truth + noise);
        }
        assert!(
            (est.expected() - truth).abs() < 0.01,
            "estimate {} vs truth {truth}",
            est.expected()
        );
    }

    #[test]
    fn uncertainty_monotonically_decreases() {
        let mut est = GammaEstimator::paper_default();
        let mut prev = est.uncertainty();
        for i in 0..10 {
            est.observe(0.3 + 0.001 * i as f64);
            let u = est.uncertainty();
            assert!(u < prev);
            prev = u;
        }
    }

    #[test]
    fn expected_always_inside_band() {
        let mut est = GammaEstimator::paper_default();
        // Feed absurd observations; the point estimate must stay banded.
        for _ in 0..20 {
            est.observe(0.99);
        }
        assert!(est.expected() <= GAMMA_UPPER + 1e-12);
        for _ in 0..100 {
            est.observe(0.0);
        }
        assert!(est.expected() >= GAMMA_LOWER - 1e-12);
    }

    #[test]
    fn observations_clamped() {
        let mut a = GammaEstimator::paper_default();
        let mut b = GammaEstimator::paper_default();
        a.observe(1.7);
        b.observe(1.0);
        assert_eq!(a.belief(), b.belief());
    }

    #[test]
    fn batch_equals_loop() {
        let mut a = GammaEstimator::paper_default();
        let mut b = GammaEstimator::paper_default();
        let obs = [0.3, 0.35, 0.4];
        a.observe_batch(&obs);
        for &o in &obs {
            b.observe(o);
        }
        assert_eq!(a, b);
        assert_eq!(a.observations(), 3);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(GammaEstimator::default(), GammaEstimator::paper_default());
    }
}
