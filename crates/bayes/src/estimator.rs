//! Per-device estimator of the power-reduction ratio `γ_n`.
//!
//! This is the state machine the LPVS scheduler holds for every device
//! (paper §V-D): a Gaussian belief, a conjugate update applied at the
//! end of each slot in which the device played transformed video, and a
//! truncated expectation over the Table I band used as the point
//! estimate for the next slot's optimization.

use crate::conjugate::ConjugateUpdate;
use crate::gaussian::Gaussian;
use crate::truncated::TruncatedGaussian;
use crate::{GAMMA_LOWER, GAMMA_PRIOR_MEAN, GAMMA_PRIOR_VARIANCE, GAMMA_UPPER};
use serde::{Deserialize, Serialize};

/// Default observation-noise standard deviation: per-slot measured
/// savings wobble a few percentage points around the device's true
/// ratio depending on content.
pub const DEFAULT_OBSERVATION_STD: f64 = 0.03;

/// Variance-collapse floor. The conjugate update shrinks the belief
/// variance with every observation; after thousands of slots the
/// posterior would become so confident that a genuine shift in a
/// device's ratio (new content genre, display mode change) could no
/// longer move it. The floor keeps each new observation worth at least
/// ~0.1 % of the observation noise.
pub const VARIANCE_FLOOR: f64 = 1e-6;

/// Per-slot variance inflation applied by [`GammaEstimator::forget`]:
/// each slot without a usable observation doubles the belief variance
/// (capped at the prior's), so a device returning from a long
/// disconnect is re-learned rather than trusted on stale evidence.
pub const FORGET_INFLATION: f64 = 2.0;

/// Why an observation was rejected by [`GammaEstimator::try_observe`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObservationError {
    /// The reported ratio was NaN or infinite.
    NotFinite,
    /// The reported ratio was outside `[0, 1]`.
    OutOfRange(f64),
}

impl std::fmt::Display for ObservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObservationError::NotFinite => write!(f, "observed ratio is not finite"),
            ObservationError::OutOfRange(v) => {
                write!(f, "observed ratio {v} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ObservationError {}

/// Online Bayesian estimator for one device's power-reduction ratio.
///
/// # Example
///
/// ```
/// use lpvs_bayes::GammaEstimator;
///
/// let mut est = GammaEstimator::paper_default();
/// let before = est.expected();
/// est.observe(0.22); // device saves less than the prior suggested
/// assert!(est.expected() < before);
/// assert!(est.observations() == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaEstimator {
    belief: Gaussian,
    rule: ConjugateUpdate,
    lo: f64,
    hi: f64,
    observations: usize,
    /// Variance of the original prior — the ceiling staleness-driven
    /// forgetting inflates toward.
    prior_variance: f64,
}

impl GammaEstimator {
    /// Creates an estimator with an explicit prior, observation noise,
    /// and truncation band.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (via [`TruncatedGaussian`]) or the noise
    /// variance is not positive (via [`ConjugateUpdate`]).
    pub fn new(prior: Gaussian, observation_variance: f64, lo: f64, hi: f64) -> Self {
        // Validate the band eagerly.
        let _ = TruncatedGaussian::new(prior, lo, hi);
        Self {
            belief: prior,
            rule: ConjugateUpdate::new(observation_variance),
            lo,
            hi,
            observations: 0,
            prior_variance: prior.variance(),
        }
    }

    /// The paper's emulation setup: prior `N(0.31, 12)` truncated to
    /// `[0.13, 0.49]` (§VI-B).
    pub fn paper_default() -> Self {
        Self::new(
            Gaussian::new(GAMMA_PRIOR_MEAN, GAMMA_PRIOR_VARIANCE),
            DEFAULT_OBSERVATION_STD * DEFAULT_OBSERVATION_STD,
            GAMMA_LOWER,
            GAMMA_UPPER,
        )
    }

    /// Reassembles an estimator from persisted parts — the decoding
    /// half of the snapshot codec. Unlike [`GammaEstimator::new`], the
    /// prior variance is restored verbatim instead of being re-derived
    /// from the belief, so a checkpointed estimator round-trips
    /// bit-exactly even after observations have shrunk its belief.
    ///
    /// # Panics
    ///
    /// Panics on an invalid band, a non-positive observation-noise or
    /// prior variance, or a non-finite belief (the same invariants
    /// [`GammaEstimator::new`] enforces).
    pub fn from_parts(
        belief: Gaussian,
        observation_variance: f64,
        lo: f64,
        hi: f64,
        observations: usize,
        prior_variance: f64,
    ) -> Self {
        let _ = TruncatedGaussian::new(belief, lo, hi);
        assert!(
            prior_variance.is_finite() && prior_variance > 0.0,
            "prior variance must be finite and positive"
        );
        Self {
            belief,
            rule: ConjugateUpdate::new(observation_variance),
            lo,
            hi,
            observations,
            prior_variance,
        }
    }

    /// Current Gaussian belief (untruncated).
    pub fn belief(&self) -> Gaussian {
        self.belief
    }

    /// Observation-noise variance `σ_obs²` of the conjugate update
    /// rule.
    pub fn observation_variance(&self) -> f64 {
        self.rule.observation_variance()
    }

    /// Variance of the original prior — the ceiling
    /// [`GammaEstimator::forget`] inflates toward.
    pub fn prior_variance(&self) -> f64 {
        self.prior_variance
    }

    /// Truncation band `[lo, hi]`.
    pub fn band(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of observations folded in so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Point estimate for scheduling: the posterior mean truncated to
    /// the band — the paper's eq. 19.
    pub fn expected(&self) -> f64 {
        TruncatedGaussian::new(self.belief, self.lo, self.hi).mean()
    }

    /// Posterior standard deviation (untruncated belief), a measure of
    /// remaining uncertainty.
    pub fn uncertainty(&self) -> f64 {
        self.belief.std_dev()
    }

    /// Folds in one observed per-slot power-reduction ratio (eq. 17).
    ///
    /// Observations are clamped to `[0, 1]` — a measured ratio outside
    /// that range is a measurement artifact, not a usable signal. NaN
    /// clamps to 0 on this legacy path; prefer
    /// [`GammaEstimator::try_observe`], which rejects bad telemetry
    /// outright instead of letting it bias the belief.
    pub fn observe(&mut self, delta: f64) {
        let delta = delta.clamp(0.0, 1.0);
        let delta = if delta.is_nan() { 0.0 } else { delta };
        self.belief = floor_variance(self.rule.update(self.belief, delta));
        self.observations += 1;
        self.publish_update();
    }

    /// Validating variant of [`GammaEstimator::observe`]: the belief is
    /// updated only if the reported ratio is finite and inside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ObservationError::NotFinite`] for NaN/±∞ reports (corrupt
    /// telemetry), [`ObservationError::OutOfRange`] for finite reports
    /// outside `[0, 1]`. The belief and observation count are untouched
    /// on rejection.
    pub fn try_observe(&mut self, delta: f64) -> Result<(), ObservationError> {
        if !delta.is_finite() {
            lpvs_obs::inc("bayes_reject_total");
            return Err(ObservationError::NotFinite);
        }
        if !(0.0..=1.0).contains(&delta) {
            lpvs_obs::inc("bayes_reject_total");
            return Err(ObservationError::OutOfRange(delta));
        }
        self.belief = floor_variance(self.rule.update(self.belief, delta));
        self.observations += 1;
        self.publish_update();
        Ok(())
    }

    /// Folds in several observations at once.
    pub fn observe_batch(&mut self, deltas: &[f64]) {
        for &d in deltas {
            self.observe(d);
        }
    }

    /// Staleness-aware forgetting: widens the belief by
    /// [`FORGET_INFLATION`] per slot spent without a usable
    /// observation (disconnects, rejected telemetry), capped at the
    /// prior variance. The mean is untouched, but the truncated point
    /// estimate naturally drifts toward the band center as confidence
    /// decays — exactly the prior's behavior.
    pub fn forget(&mut self, stale_slots: u32) {
        if stale_slots == 0 {
            return;
        }
        let ceiling = self.prior_variance.max(self.belief.variance());
        let inflated =
            (self.belief.variance() * FORGET_INFLATION.powi(stale_slots as i32)).min(ceiling);
        self.belief = Gaussian::new(self.belief.mean(), inflated);
        lpvs_obs::inc("bayes_forget_total");
    }

    /// Publishes one accepted posterior update to the telemetry
    /// registry: the update counter plus the remaining-uncertainty
    /// distribution across the fleet.
    fn publish_update(&self) {
        if lpvs_obs::enabled() {
            lpvs_obs::inc("bayes_observe_total");
            lpvs_obs::observe("bayes_posterior_std", self.uncertainty());
        }
    }
}

/// Applies the variance-collapse guard.
fn floor_variance(g: Gaussian) -> Gaussian {
    if g.variance() < VARIANCE_FLOOR {
        Gaussian::new(g.mean(), VARIANCE_FLOOR)
    } else {
        g
    }
}

impl Default for GammaEstimator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_starts_at_band_center() {
        let est = GammaEstimator::paper_default();
        // σ² = 12 over a 0.36-wide band is effectively uniform.
        assert!((est.expected() - 0.31).abs() < 1e-3);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn converges_to_true_ratio() {
        let mut est = GammaEstimator::paper_default();
        let truth = 0.42;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let noise: f64 = rng.gen_range(-0.03..0.03);
            est.observe(truth + noise);
        }
        assert!(
            (est.expected() - truth).abs() < 0.01,
            "estimate {} vs truth {truth}",
            est.expected()
        );
    }

    #[test]
    fn uncertainty_monotonically_decreases() {
        let mut est = GammaEstimator::paper_default();
        let mut prev = est.uncertainty();
        for i in 0..10 {
            est.observe(0.3 + 0.001 * i as f64);
            let u = est.uncertainty();
            assert!(u < prev);
            prev = u;
        }
    }

    #[test]
    fn expected_always_inside_band() {
        let mut est = GammaEstimator::paper_default();
        // Feed absurd observations; the point estimate must stay banded.
        for _ in 0..20 {
            est.observe(0.99);
        }
        assert!(est.expected() <= GAMMA_UPPER + 1e-12);
        for _ in 0..100 {
            est.observe(0.0);
        }
        assert!(est.expected() >= GAMMA_LOWER - 1e-12);
    }

    #[test]
    fn observations_clamped() {
        let mut a = GammaEstimator::paper_default();
        let mut b = GammaEstimator::paper_default();
        a.observe(1.7);
        b.observe(1.0);
        assert_eq!(a.belief(), b.belief());
    }

    #[test]
    fn batch_equals_loop() {
        let mut a = GammaEstimator::paper_default();
        let mut b = GammaEstimator::paper_default();
        let obs = [0.3, 0.35, 0.4];
        a.observe_batch(&obs);
        for &o in &obs {
            b.observe(o);
        }
        assert_eq!(a, b);
        assert_eq!(a.observations(), 3);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(GammaEstimator::default(), GammaEstimator::paper_default());
    }

    #[test]
    fn try_observe_rejects_corrupt_telemetry() {
        let mut est = GammaEstimator::paper_default();
        let before = est.clone();
        assert_eq!(est.try_observe(f64::NAN), Err(ObservationError::NotFinite));
        assert_eq!(est.try_observe(f64::INFINITY), Err(ObservationError::NotFinite));
        assert_eq!(est.try_observe(-0.2), Err(ObservationError::OutOfRange(-0.2)));
        assert_eq!(est.try_observe(1.4), Err(ObservationError::OutOfRange(1.4)));
        // Rejected reports leave the belief and counter untouched.
        assert_eq!(est, before);
        assert_eq!(est.observations(), 0);
        assert_eq!(est.try_observe(0.37), Ok(()));
        assert_eq!(est.observations(), 1);
        assert!(est.uncertainty() < before.uncertainty());
    }

    #[test]
    fn legacy_observe_treats_nan_as_zero_not_poison() {
        let mut nan = GammaEstimator::paper_default();
        let mut zero = GammaEstimator::paper_default();
        nan.observe(f64::NAN);
        zero.observe(0.0);
        assert_eq!(nan.belief(), zero.belief());
        assert!(nan.expected().is_finite());
    }

    #[test]
    fn variance_never_collapses_below_the_floor() {
        let mut est = GammaEstimator::paper_default();
        for _ in 0..20_000 {
            est.observe(0.31);
        }
        assert!(est.belief().variance() >= VARIANCE_FLOOR);
        // A shifted truth can still move the floored belief.
        let before = est.expected();
        for _ in 0..2_000 {
            est.observe(0.45);
        }
        assert!(est.expected() > before + 0.01, "belief frozen by collapse");
    }

    #[test]
    fn forgetting_inflates_uncertainty_toward_the_prior() {
        let mut est = GammaEstimator::paper_default();
        for _ in 0..30 {
            est.observe(0.42);
        }
        let confident = est.uncertainty();
        est.forget(0);
        assert_eq!(est.uncertainty(), confident, "zero stale slots is a no-op");
        est.forget(3);
        let wider = est.uncertainty();
        assert!(wider > confident);
        // The mean is untouched; only confidence decays.
        assert!((est.belief().mean() - 0.42).abs() < 0.01);
        // Unbounded staleness saturates at the prior variance.
        est.forget(10_000);
        assert!(est.belief().variance() <= GAMMA_PRIOR_VARIANCE + 1e-9);
        // And the point estimate has drifted back toward the band
        // center, like a fresh prior.
        assert!((est.expected() - GAMMA_PRIOR_MEAN).abs() < 0.02);
    }
}
