//! Numerical quadrature.
//!
//! The paper's eq. 18 marginalizes the likelihood over the truncated
//! prior. With the Gaussian–Gaussian conjugate pair that integral has a
//! closed form; this module provides composite Simpson quadrature for
//! non-conjugate likelihoods and for cross-validating the closed forms
//! in tests.

/// Composite Simpson integration of `f` on `[a, b]` with `n` panels
/// (rounded up to the next even number).
///
/// # Panics
///
/// Panics if `n == 0` or `a > b`.
///
/// # Example
///
/// ```
/// use lpvs_bayes::simpson;
///
/// let integral = simpson(|x| x * x, 0.0, 3.0, 64);
/// assert!((integral - 9.0).abs() < 1e-10);
/// ```
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one panel");
    assert!(a <= b, "inverted interval");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    sum * h / 3.0
}

/// Adaptive Simpson integration with absolute tolerance `tol`.
///
/// Recursion is depth-limited; on hitting the limit the best available
/// estimate is returned rather than erroring, which suits the smooth
/// densities this workspace integrates.
pub fn adaptive_simpson<F: Fn(f64) -> f64 + Copy>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    #[allow(clippy::too_many_arguments)] // internal: mirrors the textbook recursion
    fn recurse<F: Fn(f64) -> f64 + Copy>(
        f: F,
        a: f64,
        b: f64,
        fa: f64,
        fb: f64,
        fm: f64,
        whole: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
        let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
        let split = left + right;
        if depth == 0 || (split - whole).abs() <= 15.0 * tol {
            split + (split - whole) / 15.0
        } else {
            recurse(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
                + recurse(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
        }
    }

    assert!(a <= b, "inverted interval");
    if a == b {
        return 0.0;
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    recurse(f, a, b, fa, fb, fm, whole, tol, 48)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_exact() {
        // Simpson is exact for cubics.
        let v = simpson(|x| x.powi(3) - 2.0 * x + 1.0, -1.0, 2.0, 2);
        let exact = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((v - (exact(2.0) - exact(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn odd_panel_count_rounds_up() {
        let v = simpson(|x| x, 0.0, 1.0, 3);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(simpson(|x| x.exp(), 2.0, 2.0, 8), 0.0);
        assert_eq!(adaptive_simpson(|x| x.exp(), 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn transcendental_converges() {
        let v = simpson(f64::sin, 0.0, std::f64::consts::PI, 256);
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_matches_fixed_grid() {
        let f = |x: f64| (-x * x).exp();
        let fixed = simpson(f, -4.0, 4.0, 8192);
        let adaptive = adaptive_simpson(f, -4.0, 4.0, 1e-10);
        assert!((fixed - adaptive).abs() < 1e-8);
        assert!((adaptive - std::f64::consts::PI.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_rejected() {
        let _ = simpson(|x| x, 1.0, 0.0, 4);
    }
}
