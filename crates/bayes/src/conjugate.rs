//! Gaussian–Gaussian conjugate posterior updates.
//!
//! The paper's eq. 17 computes the posterior of `γ_n` after observing a
//! power reduction `Δ_n`. With a Gaussian prior `N(μ₀, σ₀²)` and a
//! Gaussian observation likelihood `Δ | γ ~ N(γ, σ_obs²)`, the posterior
//! is again Gaussian — "the update of γ_n can be computed precisely
//! without any approximation" (§V-D). The closed form is the standard
//! precision-weighted combination:
//!
//! ```text
//! σ'² = 1 / (1/σ₀² + 1/σ_obs²)
//! μ'  = σ'² · (μ₀/σ₀² + Δ/σ_obs²)
//! ```

use crate::gaussian::Gaussian;
use serde::{Deserialize, Serialize};

/// The conjugate update rule for a Gaussian mean with known observation
/// noise.
///
/// # Example
///
/// ```
/// use lpvs_bayes::{ConjugateUpdate, Gaussian};
///
/// let rule = ConjugateUpdate::new(0.05 * 0.05); // σ_obs = 5 %
/// let prior = Gaussian::new(0.31, 12.0);
/// let posterior = rule.update(prior, 0.42);
/// // A diffuse prior is dominated by the observation.
/// assert!((posterior.mean() - 0.42).abs() < 1e-3);
/// assert!(posterior.variance() < prior.variance());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConjugateUpdate {
    observation_variance: f64,
}

impl ConjugateUpdate {
    /// Creates an update rule with the given observation-noise variance
    /// `σ_obs²`.
    ///
    /// # Panics
    ///
    /// Panics if the variance is not finite and strictly positive.
    pub fn new(observation_variance: f64) -> Self {
        assert!(
            observation_variance.is_finite() && observation_variance > 0.0,
            "observation variance must be finite and positive"
        );
        Self { observation_variance }
    }

    /// Observation-noise variance.
    pub fn observation_variance(&self) -> f64 {
        self.observation_variance
    }

    /// Posterior after a single observation.
    pub fn update(&self, prior: Gaussian, observation: f64) -> Gaussian {
        let prior_precision = 1.0 / prior.variance();
        let obs_precision = 1.0 / self.observation_variance;
        let posterior_precision = prior_precision + obs_precision;
        let variance = 1.0 / posterior_precision;
        let mean =
            variance * (prior.mean() * prior_precision + observation * obs_precision);
        Gaussian::new(mean, variance)
    }

    /// Posterior after a batch of observations (order-independent).
    pub fn update_batch(&self, prior: Gaussian, observations: &[f64]) -> Gaussian {
        let k = observations.len() as f64;
        if observations.is_empty() {
            return prior;
        }
        let mean_obs = observations.iter().sum::<f64>() / k;
        let prior_precision = 1.0 / prior.variance();
        let obs_precision = k / self.observation_variance;
        let posterior_precision = prior_precision + obs_precision;
        let variance = 1.0 / posterior_precision;
        let mean = variance * (prior.mean() * prior_precision + mean_obs * obs_precision);
        Gaussian::new(mean, variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_variance_shrinks() {
        let rule = ConjugateUpdate::new(0.01);
        let prior = Gaussian::new(0.31, 12.0);
        let post = rule.update(prior, 0.4);
        assert!(post.variance() < prior.variance());
        let post2 = rule.update(post, 0.4);
        assert!(post2.variance() < post.variance());
    }

    #[test]
    fn posterior_mean_between_prior_and_observation() {
        let rule = ConjugateUpdate::new(0.5);
        let prior = Gaussian::new(0.2, 0.5);
        let post = rule.update(prior, 0.6);
        assert!(post.mean() > 0.2 && post.mean() < 0.6);
        // Equal variances → midpoint.
        assert!((post.mean() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn batch_equals_sequential() {
        let rule = ConjugateUpdate::new(0.04);
        let prior = Gaussian::new(0.31, 12.0);
        let obs = [0.35, 0.41, 0.38, 0.44];
        let sequential = obs.iter().fold(prior, |p, &o| rule.update(p, o));
        let batch = rule.update_batch(prior, &obs);
        assert!((sequential.mean() - batch.mean()).abs() < 1e-10);
        assert!((sequential.variance() - batch.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_batch_is_identity() {
        let rule = ConjugateUpdate::new(0.04);
        let prior = Gaussian::new(0.31, 12.0);
        assert_eq!(rule.update_batch(prior, &[]), prior);
    }

    #[test]
    fn closed_form_matches_numerical_bayes_rule() {
        // Evaluate eq. 17 by quadrature: posterior ∝ likelihood × prior,
        // then compare mean with the closed form.
        let rule = ConjugateUpdate::new(0.02);
        let prior = Gaussian::new(0.25, 0.1);
        let obs = 0.45;
        let likelihood = |g: f64| Gaussian::new(g, 0.02).pdf(obs);
        let unnorm = |g: f64| likelihood(g) * prior.pdf(g);
        // Integrate on an interval tight enough that the fixed grid
        // resolves the (narrow) posterior spike.
        let z = crate::integrate::simpson(unnorm, -2.0, 3.0, 32_768);
        let mean_num = crate::integrate::simpson(|g| g * unnorm(g), -2.0, 3.0, 32_768) / z;
        let post = rule.update(prior, obs);
        assert!(
            (post.mean() - mean_num).abs() < 1e-6,
            "closed {} vs numeric {mean_num}",
            post.mean()
        );
    }

    #[test]
    #[should_panic(expected = "observation variance")]
    fn nonpositive_noise_rejected() {
        let _ = ConjugateUpdate::new(0.0);
    }
}
