//! Shard-local banks of γ estimators.
//!
//! The emulator historically held one global `Vec<GammaEstimator>` and
//! updated it after every slot — the last cross-shard synchronization
//! point in the sharded slot loop. A [`BayesBank`] is the unit that
//! breaks it up: an ordered map from global device id to
//! [`GammaEstimator`], cheap to [`split`](BayesBank::split) across
//! shards, to migrate entry-by-entry during cross-shard rebalancing,
//! and to [`merge`](BayesBank::merge) back for reporting.
//!
//! Every operation moves estimators without touching their beliefs, so
//! any split/migrate/merge choreography preserves every posterior's
//! (mean, std) **exactly** — the property `tests/runtime.rs` pins with
//! a proptest over 1–4 shards and both fleet partitioners.

use crate::estimator::GammaEstimator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordered bank of per-device γ estimators, keyed by global device
/// id. Ordering (`BTreeMap`) keeps iteration — and therefore telemetry
/// and merge order — deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BayesBank {
    estimators: BTreeMap<usize, GammaEstimator>,
}

impl BayesBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bank holding `estimators[i]` under device id `i` — the
    /// global-bank layout the sequential engine uses.
    pub fn from_estimators(estimators: Vec<GammaEstimator>) -> Self {
        Self { estimators: estimators.into_iter().enumerate().collect() }
    }

    /// Number of estimators in the bank.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// True when the bank holds no estimators.
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// Device ids held by this bank, ascending.
    pub fn devices(&self) -> impl Iterator<Item = usize> + '_ {
        self.estimators.keys().copied()
    }

    /// Read access to device `d`'s estimator.
    pub fn get(&self, d: usize) -> Option<&GammaEstimator> {
        self.estimators.get(&d)
    }

    /// The truncated-posterior point estimate and untruncated posterior
    /// spread for device `d` — what information gathering reports to
    /// the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the bank does not own device `d`; posterior queries
    /// are routed by the ownership map, so a miss is a routing bug.
    pub fn posterior(&self, d: usize) -> (f64, f64) {
        let est = self.estimators.get(&d).expect("posterior query routed to a non-owner bank");
        (est.expected(), est.uncertainty())
    }

    /// Inserts (or replaces) device `d`'s estimator — the receiving end
    /// of a migration.
    pub fn insert(&mut self, d: usize, estimator: GammaEstimator) {
        self.estimators.insert(d, estimator);
    }

    /// Removes and returns device `d`'s estimator — the sending end of
    /// a migration. `None` if this bank does not own `d`.
    pub fn take(&mut self, d: usize) -> Option<GammaEstimator> {
        self.estimators.remove(&d)
    }

    /// Folds one observed power-reduction ratio into device `d`'s
    /// belief, applying the engine's telemetry policy: a rejected
    /// sample (NaN, out of band) counts as a stale slot and widens the
    /// belief instead of poisoning it.
    ///
    /// # Panics
    ///
    /// Panics if the bank does not own device `d`.
    pub fn observe_or_forget(&mut self, d: usize, ratio: f64) {
        let est = self.estimators.get_mut(&d).expect("observation routed to a non-owner bank");
        if est.try_observe(ratio).is_err() {
            est.forget(1);
        }
    }

    /// Inflates device `d`'s belief by `stale_slots` of staleness
    /// (disconnects, missed telemetry).
    ///
    /// # Panics
    ///
    /// Panics if the bank does not own device `d`.
    pub fn forget(&mut self, d: usize, stale_slots: u32) {
        self.estimators
            .get_mut(&d)
            .expect("forget routed to a non-owner bank")
            .forget(stale_slots);
    }

    /// Splits the bank into `shards` banks, sending each device to
    /// `owner(device)`. Consumes the bank: after the split every
    /// estimator lives in exactly one shard bank.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `owner` names a shard out of
    /// range.
    pub fn split<F: Fn(usize) -> usize>(self, shards: usize, owner: F) -> Vec<BayesBank> {
        assert!(shards > 0, "cannot split a bank across zero shards");
        let mut banks = vec![BayesBank::new(); shards];
        for (d, est) in self.estimators {
            let s = owner(d);
            assert!(s < shards, "owner({d}) = {s} out of range for {shards} shards");
            banks[s].estimators.insert(d, est);
        }
        banks
    }

    /// Merges shard banks back into one global bank.
    ///
    /// # Panics
    ///
    /// Panics if two banks claim the same device — a migration that
    /// duplicated instead of moved.
    pub fn merge<I: IntoIterator<Item = BayesBank>>(banks: I) -> BayesBank {
        let mut merged = BayesBank::new();
        for bank in banks {
            for (d, est) in bank.estimators {
                let clash = merged.estimators.insert(d, est);
                assert!(clash.is_none(), "device {d} owned by two banks");
            }
        }
        merged
    }

    /// Drains the bank back into the sequential engine's dense layout:
    /// `vec[i]` is device `i`'s estimator.
    ///
    /// # Panics
    ///
    /// Panics if the bank's ids are not exactly `0..len` — merging
    /// shard banks of a full fleet always satisfies this.
    pub fn into_dense(self) -> Vec<GammaEstimator> {
        let n = self.estimators.len();
        let mut out = Vec::with_capacity(n);
        for (i, (d, est)) in self.estimators.into_iter().enumerate() {
            assert_eq!(d, i, "bank is not dense: hole before device {d}");
            out.push(est);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(n: usize) -> BayesBank {
        let mut estimators = vec![GammaEstimator::paper_default(); n];
        for (i, est) in estimators.iter_mut().enumerate() {
            est.observe(0.2 + 0.01 * i as f64);
        }
        BayesBank::from_estimators(estimators)
    }

    #[test]
    fn split_then_merge_is_identity() {
        let original = bank(17);
        let merged =
            BayesBank::merge(original.clone().split(4, |d| d % 4));
        assert_eq!(merged, original);
    }

    #[test]
    fn split_covers_every_device_once() {
        let banks = bank(10).split(3, |d| d / 4);
        assert_eq!(banks.iter().map(BayesBank::len).sum::<usize>(), 10);
        let mut seen: Vec<usize> = banks.iter().flat_map(|b| b.devices()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn migration_moves_without_mutating() {
        let mut banks = bank(6).split(2, |d| d % 2);
        let before = banks[0].get(4).unwrap().clone();
        let est = banks[0].take(4).expect("shard 0 owns device 4");
        assert_eq!(est, before);
        let (tail, head) = banks.split_at_mut(1);
        head[0].insert(4, est);
        assert!(tail[0].get(4).is_none());
        assert_eq!(head[0].get(4), Some(&before));
        assert_eq!(head[0].posterior(4), (before.expected(), before.uncertainty()));
    }

    #[test]
    fn observe_or_forget_mirrors_the_engine_policy() {
        let mut a = bank(1);
        let mut direct = a.get(0).unwrap().clone();
        a.observe_or_forget(0, 0.3);
        direct.try_observe(0.3).unwrap();
        assert_eq!(a.get(0), Some(&direct));
        // A corrupt report widens instead of updating.
        a.observe_or_forget(0, f64::NAN);
        direct.forget(1);
        assert_eq!(a.get(0), Some(&direct));
    }

    #[test]
    fn into_dense_round_trips() {
        let estimators: Vec<GammaEstimator> = bank(5).into_dense();
        assert_eq!(estimators.len(), 5);
        assert_eq!(BayesBank::from_estimators(estimators.clone()).into_dense(), estimators);
    }

    #[test]
    #[should_panic(expected = "owned by two banks")]
    fn merge_rejects_duplicated_devices() {
        let a = bank(3);
        let b = bank(3);
        let _ = BayesBank::merge([a, b]);
    }

    #[test]
    #[should_panic(expected = "not dense")]
    fn sparse_bank_cannot_densify() {
        let mut b = bank(3);
        let _ = b.take(1);
        let _ = b.into_dense();
    }
}
