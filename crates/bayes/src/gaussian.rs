//! Gaussian distribution primitives.
//!
//! The standard library exposes no `erf`, so the CDF uses the
//! Abramowitz & Stegun 7.1.26 rational approximation (|error| < 1.5e-7,
//! far below every tolerance in this workspace).

use serde::{Deserialize, Serialize};

/// `1 / sqrt(2π)`.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A Gaussian (normal) distribution `N(mean, variance)`.
///
/// # Example
///
/// ```
/// use lpvs_bayes::Gaussian;
///
/// let g = Gaussian::new(0.0, 1.0);
/// assert!((g.cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(g.pdf(0.0) > g.pdf(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    variance: f64,
}

impl Gaussian {
    /// Creates `N(mean, variance)`.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is not strictly positive or either argument
    /// is not finite.
    pub fn new(mean: f64, variance: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            variance.is_finite() && variance > 0.0,
            "variance must be finite and positive"
        );
        Self { mean, variance }
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let sd = self.std_dev();
        let z = (x - self.mean) / sd;
        INV_SQRT_2PI / sd * (-0.5 * z * z).exp()
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev();
        standard_normal_cdf(z)
    }

    /// Quantile (inverse CDF) via bisection on [`Gaussian::cdf`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1");
        // Bracket ±10σ covers p down to ~1e-23.
        let mut lo = self.mean - 10.0 * self.std_dev();
        let mut hi = self.mean + 10.0 * self.std_dev();
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev() * z
    }
}

impl std::fmt::Display for Gaussian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N({:.4}, {:.4})", self.mean, self.variance)
    }
}

/// Standard normal CDF via the A&S 7.1.26 `erf` approximation.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pdf_peaks_at_mean() {
        let g = Gaussian::new(2.0, 4.0);
        assert!(g.pdf(2.0) > g.pdf(1.0));
        assert!(g.pdf(2.0) > g.pdf(3.0));
        assert!((g.pdf(1.0) - g.pdf(3.0)).abs() < 1e-12); // symmetry
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian::new(0.5, 2.0);
        let total = crate::integrate::simpson(|x| g.pdf(x), -20.0, 21.0, 4096);
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn cdf_known_values() {
        let g = Gaussian::standard();
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((g.cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((g.cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!((g.cdf(1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone() {
        let g = Gaussian::new(1.0, 3.0);
        let mut prev = 0.0;
        for i in -50..=50 {
            let x = i as f64 * 0.2;
            let c = g.cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gaussian::new(-3.0, 0.25);
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 3e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_moments() {
        let g = Gaussian::new(5.0, 9.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "sample variance {var}");
    }

    #[test]
    #[should_panic(expected = "variance must be finite and positive")]
    fn zero_variance_rejected() {
        let _ = Gaussian::new(0.0, 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gaussian::standard().to_string(), "N(0.0000, 1.0000)");
    }
}
