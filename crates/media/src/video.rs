//! Videos — ordered chunk sequences with identity and resolution.

use crate::chunk::{Chunk, ChunkId};
use lpvs_display::spec::Resolution;
use serde::{Deserialize, Serialize};

/// Identifier of a video/stream (the paper's `VID`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VideoId(pub u64);

impl std::fmt::Display for VideoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A video: an ordered run of chunks at one source resolution.
///
/// In the live-streaming setting a "video" is the recorded prefix of a
/// channel; the chunks available at a scheduling point are a window of
/// this sequence (paper eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    id: VideoId,
    resolution: Resolution,
    chunks: Vec<Chunk>,
}

impl Video {
    /// Creates a video from its chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty or chunk ids are not the
    /// consecutive run `0..len`.
    pub fn new(id: VideoId, resolution: Resolution, chunks: Vec<Chunk>) -> Self {
        assert!(!chunks.is_empty(), "a video needs at least one chunk");
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.id, ChunkId(i as u32), "chunk ids must be consecutive from 0");
        }
        Self { id, resolution, chunks }
    }

    /// Video identifier.
    pub fn id(&self) -> VideoId {
        self.id
    }

    /// Source resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// All chunks in playback order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// The chunk window `[from, from + count)` clamped to the video's
    /// end — the `K_m` chunks available at a scheduling point.
    pub fn window(&self, from: usize, count: usize) -> &[Chunk] {
        let start = from.min(self.chunks.len());
        let end = (from + count).min(self.chunks.len());
        &self.chunks[start..end]
    }

    /// Total duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.chunks.iter().map(|c| c.duration_secs).sum()
    }

    /// Total encoded size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.chunks.iter().map(Chunk::size_mb).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_display::stats::FrameStats;

    fn video(n: usize) -> Video {
        let chunks = (0..n)
            .map(|i| {
                Chunk::new(ChunkId(i as u32), 10.0, FrameStats::uniform_gray(0.5), 3000.0)
            })
            .collect();
        Video::new(VideoId(9), Resolution::HD, chunks)
    }

    #[test]
    fn duration_and_size_accumulate() {
        let v = video(30);
        assert!((v.duration_secs() - 300.0).abs() < 1e-9);
        assert!((v.size_mb() - 30.0 * 3.75).abs() < 1e-9);
    }

    #[test]
    fn window_clamps_to_end() {
        let v = video(10);
        assert_eq!(v.window(0, 5).len(), 5);
        assert_eq!(v.window(8, 5).len(), 2);
        assert_eq!(v.window(20, 5).len(), 0);
    }

    #[test]
    fn window_preserves_order() {
        let v = video(10);
        let w = v.window(3, 4);
        assert_eq!(w[0].id, ChunkId(3));
        assert_eq!(w[3].id, ChunkId(6));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_video_rejected() {
        let _ = Video::new(VideoId(0), Resolution::HD, vec![]);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn gapped_chunk_ids_rejected() {
        let chunks = vec![
            Chunk::new(ChunkId(0), 1.0, FrameStats::default(), 1000.0),
            Chunk::new(ChunkId(2), 1.0, FrameStats::default(), 1000.0),
        ];
        let _ = Video::new(VideoId(0), Resolution::HD, chunks);
    }
}
