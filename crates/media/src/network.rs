//! Synthetic cellular bandwidth traces.
//!
//! The ABR controller ([`crate::abr`]) needs throughput samples; this
//! module synthesizes them with a two-state Gilbert–Elliott-style
//! model: a *good* state with high mean throughput and a *congested*
//! state with a fraction of it, plus log-normal-ish per-sample jitter.
//! The model matches the qualitative character of cellular links — long
//! good runs punctuated by congestion episodes — which is all the
//! emulation needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two-state Markov bandwidth model.
///
/// # Example
///
/// ```
/// use lpvs_media::network::BandwidthModel;
///
/// let mut link = BandwidthModel::cellular(7);
/// let samples: Vec<f64> = (0..100).map(|_| link.sample_kbps()).collect();
/// assert!(samples.iter().all(|&s| s > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    /// Mean throughput in the good state (kbit/s).
    good_kbps: f64,
    /// Congested-state throughput as a fraction of good.
    congested_fraction: f64,
    /// P(good → congested) per sample.
    p_degrade: f64,
    /// P(congested → good) per sample.
    p_recover: f64,
    /// Multiplicative jitter half-width (e.g. 0.25 = ±25 %).
    jitter: f64,
    congested: bool,
    rng: StdRng,
}

impl BandwidthModel {
    /// Builds a model.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive throughput, fractions outside `(0, 1]`, or
    /// probabilities outside `[0, 1]`.
    pub fn new(
        good_kbps: f64,
        congested_fraction: f64,
        p_degrade: f64,
        p_recover: f64,
        jitter: f64,
        seed: u64,
    ) -> Self {
        assert!(good_kbps > 0.0, "throughput must be positive");
        assert!(
            congested_fraction > 0.0 && congested_fraction <= 1.0,
            "congested fraction must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&p_degrade) && (0.0..=1.0).contains(&p_recover),
            "transition probabilities must be in [0, 1]"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        Self {
            good_kbps,
            congested_fraction,
            p_degrade,
            p_recover,
            jitter,
            congested: false,
            rng: StdRng::seed_from_u64(seed ^ 0xbead_cafe),
        }
    }

    /// A typical mid-band cellular link: ~9 Mbit/s good state, 20 % of
    /// that when congested, congestion episodes every ~20 samples
    /// lasting ~5.
    pub fn cellular(seed: u64) -> Self {
        Self::new(9_000.0, 0.2, 0.05, 0.2, 0.25, seed)
    }

    /// A fixed-line-class link that never leaves the good state.
    pub fn steady(kbps: f64, seed: u64) -> Self {
        Self::new(kbps, 1.0, 0.0, 1.0, 0.05, seed)
    }

    /// Whether the link is currently congested.
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// Draws the next throughput sample (kbit/s), advancing the state.
    pub fn sample_kbps(&mut self) -> f64 {
        let flip: f64 = self.rng.gen_range(0.0..1.0);
        if self.congested {
            if flip < self.p_recover {
                self.congested = false;
            }
        } else if flip < self.p_degrade {
            self.congested = true;
        }
        let base = if self.congested {
            self.good_kbps * self.congested_fraction
        } else {
            self.good_kbps
        };
        let jitter: f64 = self.rng.gen_range(-self.jitter..=self.jitter);
        (base * (1.0 + jitter)).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellular_link_visits_both_states() {
        let mut link = BandwidthModel::cellular(3);
        let samples: Vec<f64> = (0..2000).map(|_| link.sample_kbps()).collect();
        let low = samples.iter().filter(|&&s| s < 4_000.0).count();
        let high = samples.iter().filter(|&&s| s > 6_000.0).count();
        assert!(low > 100, "never congested ({low})");
        assert!(high > 1000, "rarely good ({high})");
    }

    #[test]
    fn congestion_episodes_have_duration() {
        // Consecutive congested samples should cluster: count runs.
        let mut link = BandwidthModel::cellular(5);
        let mut runs = 0usize;
        let mut congested_samples = 0usize;
        let mut prev = false;
        for _ in 0..5000 {
            link.sample_kbps();
            let now = link.is_congested();
            if now && !prev {
                runs += 1;
            }
            if now {
                congested_samples += 1;
            }
            prev = now;
        }
        assert!(runs > 0);
        let mean_run = congested_samples as f64 / runs as f64;
        assert!(mean_run > 2.0, "episodes too short: {mean_run}");
    }

    #[test]
    fn steady_link_stays_good() {
        let mut link = BandwidthModel::steady(6_000.0, 1);
        for _ in 0..500 {
            let s = link.sample_kbps();
            assert!(!link.is_congested());
            assert!((5_000.0..7_000.0).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut l = BandwidthModel::cellular(9);
            (0..50).map(|_| l.sample_kbps()).collect()
        };
        let b: Vec<f64> = {
            let mut l = BandwidthModel::cellular(9);
            (0..50).map(|_| l.sample_kbps()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn drives_the_abr_controller_sensibly() {
        use crate::abr::AbrController;
        use crate::ladder::BitrateLadder;
        let mut link = BandwidthModel::cellular(11);
        let mut abr = AbrController::new(BitrateLadder::default());
        let mut rungs = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let r = abr.next_resolution(link.sample_kbps(), 10.0);
            rungs.insert(r.pixels());
        }
        // A fluctuating link exercises more than one ladder rung.
        assert!(rungs.len() >= 2, "ABR never moved: {rungs:?}");
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn bad_jitter_rejected() {
        let _ = BandwidthModel::new(1000.0, 0.5, 0.1, 0.1, 1.5, 0);
    }
}
