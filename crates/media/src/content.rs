//! Genre-conditioned synthetic content model.
//!
//! Real video exhibits strong temporal correlation — a dark dungeon
//! scene stays dark for many chunks, then cuts to a bright menu. This
//! module models per-chunk content statistics as a two-level process:
//! a slow Markov *scene* state (dark / mid / bright key) plus fast
//! per-chunk jitter, with per-genre parameters for brightness range and
//! color bias. The power models only see the resulting
//! [`FrameStats`] sequences, so
//! matching these first- and second-order statistics exercises the same
//! power dynamics as decoded pixels would (DESIGN.md §2).
//!
//! [`FrameStats`]: lpvs_display::stats::FrameStats

use crate::chunk::{Chunk, ChunkId};
use crate::ladder::BitrateLadder;
use crate::video::{Video, VideoId};
use lpvs_display::spec::Resolution;
use lpvs_display::stats::FrameStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Content genre of a live channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genre {
    /// Video games: dark-leaning, saturated, frequent scene cuts.
    Gaming,
    /// Sports: bright, green-leaning, slow scene changes.
    Sports,
    /// Film/cinematic: wide dynamic range, slow cuts.
    Movie,
    /// Talk shows / IRL: mid-key, warm (skin-tone) colors, static.
    Talk,
    /// Music performances: dark stages with bright highlights.
    Music,
}

impl Genre {
    /// All genres, for sampling.
    pub const ALL: [Genre; 5] =
        [Genre::Gaming, Genre::Sports, Genre::Movie, Genre::Talk, Genre::Music];

    /// Typical Twitch-era popularity weights (gaming dominates).
    pub fn popularity_weight(&self) -> f64 {
        match self {
            Genre::Gaming => 0.55,
            Genre::Talk => 0.20,
            Genre::Music => 0.10,
            Genre::Sports => 0.08,
            Genre::Movie => 0.07,
        }
    }

    /// (dark, mid, bright) scene key luma anchors for this genre.
    fn scene_lumas(&self) -> [f64; 3] {
        match self {
            Genre::Gaming => [0.22, 0.40, 0.62],
            Genre::Sports => [0.45, 0.60, 0.75],
            Genre::Movie => [0.18, 0.42, 0.70],
            Genre::Talk => [0.38, 0.50, 0.62],
            Genre::Music => [0.12, 0.30, 0.68],
        }
    }

    /// Probability of switching scene state at each chunk boundary.
    fn cut_rate(&self) -> f64 {
        match self {
            Genre::Gaming => 0.30,
            Genre::Sports => 0.12,
            Genre::Movie => 0.15,
            Genre::Talk => 0.06,
            Genre::Music => 0.22,
        }
    }

    /// RGB bias multipliers applied to the gray point (hue character).
    fn color_bias(&self) -> [f64; 3] {
        match self {
            Genre::Gaming => [0.95, 0.95, 1.15],
            Genre::Sports => [0.95, 1.10, 0.90],
            Genre::Movie => [1.05, 1.00, 0.95],
            Genre::Talk => [1.12, 1.00, 0.88],
            Genre::Music => [1.05, 0.90, 1.12],
        }
    }
}

impl std::fmt::Display for Genre {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Genre::Gaming => "gaming",
            Genre::Sports => "sports",
            Genre::Movie => "movie",
            Genre::Talk => "talk",
            Genre::Music => "music",
        })
    }
}

/// Deterministic, seeded content synthesizer for one genre.
///
/// # Example
///
/// ```
/// use lpvs_media::content::{ContentModel, Genre};
/// use lpvs_display::spec::Resolution;
///
/// let video = ContentModel::new(Genre::Talk, 5).video(3, Resolution::FHD, 60.0, 10.0);
/// assert_eq!(video.chunks().len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentModel {
    genre: Genre,
    seed: u64,
}

impl ContentModel {
    /// Creates a model for `genre` with a deterministic seed.
    pub fn new(genre: Genre, seed: u64) -> Self {
        Self { genre, seed }
    }

    /// The genre this model synthesizes.
    pub fn genre(&self) -> Genre {
        self.genre
    }

    /// Samples a genre from the popularity distribution.
    pub fn sample_genre<R: Rng + ?Sized>(rng: &mut R) -> Genre {
        let total: f64 = Genre::ALL.iter().map(Genre::popularity_weight).sum();
        let mut ticket = rng.gen_range(0.0..total);
        for g in Genre::ALL {
            if ticket < g.popularity_weight() {
                return g;
            }
            ticket -= g.popularity_weight();
        }
        Genre::Gaming
    }

    /// Synthesizes per-chunk frame statistics for `count` chunks.
    pub fn chunk_stats(&self, count: usize) -> Vec<FrameStats> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_c0de);
        let anchors = self.genre.scene_lumas();
        let bias = self.genre.color_bias();
        let mut scene = rng.gen_range(0..3usize);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if rng.gen_bool(self.genre.cut_rate()) {
                scene = rng.gen_range(0..3usize);
            }
            let jitter: f64 = rng.gen_range(-0.05..0.05);
            let luma = (anchors[scene] + jitter).clamp(0.02, 0.98);
            let rgb = [
                (luma * bias[0]).clamp(0.0, 1.0),
                (luma * bias[1]).clamp(0.0, 1.0),
                (luma * bias[2]).clamp(0.0, 1.0),
            ];
            out.push(FrameStats::from_encoded_rgb(rgb, 6));
        }
        out
    }

    /// Synthesizes a whole video of `duration_secs` split into chunks
    /// of `chunk_secs`, at the ladder bitrate for `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if the duration or chunk length is not positive.
    pub fn video(
        &self,
        id: u64,
        resolution: Resolution,
        duration_secs: f64,
        chunk_secs: f64,
    ) -> Video {
        assert!(duration_secs > 0.0 && chunk_secs > 0.0, "durations must be positive");
        let count = (duration_secs / chunk_secs).ceil() as usize;
        let bitrate = BitrateLadder::default().bitrate_kbps(resolution);
        let stats = self.chunk_stats(count);
        let chunks = stats
            .into_iter()
            .enumerate()
            .map(|(i, s)| Chunk::new(ChunkId(i as u32), chunk_secs, s, bitrate))
            .collect();
        Video::new(VideoId(id), resolution, chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_display::spec::DisplaySpec;

    #[test]
    fn deterministic_in_seed() {
        let a = ContentModel::new(Genre::Gaming, 7).chunk_stats(50);
        let b = ContentModel::new(Genre::Gaming, 7).chunk_stats(50);
        let c = ContentModel::new(Genre::Gaming, 8).chunk_stats(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn genres_have_distinct_brightness() {
        let mean = |g: Genre| {
            let stats = ContentModel::new(g, 3).chunk_stats(400);
            stats.iter().map(|s| s.mean_luma()).sum::<f64>() / 400.0
        };
        // Sports runs brighter than music stages.
        assert!(mean(Genre::Sports) > mean(Genre::Music) + 0.1);
        // Everything lands in a sane video range.
        for g in Genre::ALL {
            let m = mean(g);
            assert!((0.1..=0.75).contains(&m), "{g}: mean luma {m}");
        }
    }

    #[test]
    fn gaming_is_blue_leaning() {
        let stats = ContentModel::new(Genre::Gaming, 3).chunk_stats(200);
        let mut blue = 0.0;
        let mut red = 0.0;
        for s in &stats {
            blue += s.linear_mean()[2];
            red += s.linear_mean()[0];
        }
        assert!(blue > red, "gaming content should lean blue");
    }

    #[test]
    fn scenes_persist_between_cuts() {
        // Consecutive chunks correlate: mean |Δ luma| between neighbours
        // is well below the |Δ| between random pairs.
        let stats = ContentModel::new(Genre::Talk, 11).chunk_stats(500);
        let lumas: Vec<f64> = stats.iter().map(|s| s.mean_luma()).collect();
        let neighbour: f64 = lumas.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
            / (lumas.len() - 1) as f64;
        let shuffled: f64 = lumas
            .iter()
            .zip(lumas.iter().skip(250))
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 250.0;
        assert!(neighbour < shuffled, "no temporal correlation: {neighbour} vs {shuffled}");
    }

    #[test]
    fn power_rate_fluctuates_over_chunks() {
        // The Fig. 4 premise: per-chunk power rates go up and down.
        let video = ContentModel::new(Genre::Movie, 21).video(1, Resolution::FHD, 600.0, 10.0);
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let rates: Vec<f64> =
            video.chunks().iter().map(|c| c.power_rate_watts(&spec)).collect();
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1.3 * min, "power rates too flat: {min}–{max}");
    }

    #[test]
    fn genre_sampling_tracks_popularity() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let gaming = (0..n)
            .filter(|_| ContentModel::sample_genre(&mut rng) == Genre::Gaming)
            .count() as f64
            / n as f64;
        assert!((gaming - 0.55).abs() < 0.02, "gaming share {gaming}");
    }

    #[test]
    fn video_has_ladder_bitrate() {
        let v = ContentModel::new(Genre::Sports, 1).video(2, Resolution::HD, 30.0, 10.0);
        assert_eq!(v.chunks()[0].bitrate_kbps, BitrateLadder::default().bitrate_kbps(Resolution::HD));
    }
}
