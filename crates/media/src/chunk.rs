//! Video chunks — the unit LPVS schedules and meters.

use lpvs_display::spec::DisplaySpec;
use lpvs_display::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Identifier of a chunk within its video (the paper's `CID`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChunkId(pub u32);

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One video chunk: a few seconds of content summarized by its frame
/// statistics.
///
/// # Example
///
/// ```
/// use lpvs_media::chunk::{Chunk, ChunkId};
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// let chunk = Chunk::new(ChunkId(0), 10.0, FrameStats::uniform_gray(0.5), 3000.0);
/// let spec = DisplaySpec::oled_phone(Resolution::HD);
/// // Energy to play the chunk = power rate × duration.
/// let joules = chunk.energy_joules(&spec);
/// assert!(joules > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk identifier within its video.
    pub id: ChunkId,
    /// Playback duration Δ_κ in seconds.
    pub duration_secs: f64,
    /// Content statistics (averaged over the chunk's frames).
    pub stats: FrameStats,
    /// Encoded bitrate in kbit/s.
    pub bitrate_kbps: f64,
}

impl Chunk {
    /// Creates a chunk.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` or `bitrate_kbps` is not strictly
    /// positive and finite.
    pub fn new(id: ChunkId, duration_secs: f64, stats: FrameStats, bitrate_kbps: f64) -> Self {
        assert!(
            duration_secs.is_finite() && duration_secs > 0.0,
            "chunk duration must be positive"
        );
        assert!(
            bitrate_kbps.is_finite() && bitrate_kbps > 0.0,
            "chunk bitrate must be positive"
        );
        Self { id, duration_secs, stats, bitrate_kbps }
    }

    /// Display power rate `p(κ)` (watts) when this chunk plays on
    /// `spec` — the paper's `p_{n,m}(κ)` estimated "with existing power
    /// models" (§IV-B).
    pub fn power_rate_watts(&self, spec: &DisplaySpec) -> f64 {
        spec.power_watts(&self.stats)
    }

    /// Display energy (joules) consumed playing this chunk on `spec`.
    pub fn energy_joules(&self, spec: &DisplaySpec) -> f64 {
        self.power_rate_watts(spec) * self.duration_secs
    }

    /// Encoded size of the chunk in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.bitrate_kbps * self.duration_secs / 8.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_display::spec::Resolution;

    fn chunk(luma: f64) -> Chunk {
        Chunk::new(ChunkId(1), 10.0, FrameStats::uniform_gray(luma), 3000.0)
    }

    #[test]
    fn energy_is_power_times_duration() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let c = chunk(0.5);
        assert!((c.energy_joules(&spec) - c.power_rate_watts(&spec) * 10.0).abs() < 1e-12);
    }

    #[test]
    fn brighter_chunk_draws_more_on_oled() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        assert!(chunk(0.9).power_rate_watts(&spec) > chunk(0.2).power_rate_watts(&spec));
    }

    #[test]
    fn size_from_bitrate() {
        // 3000 kbit/s × 10 s = 30 Mbit = 3.75 MB.
        assert!((chunk(0.5).size_mb() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn chunk_id_displays_compactly() {
        assert_eq!(ChunkId(7).to_string(), "c7");
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = Chunk::new(ChunkId(0), 0.0, FrameStats::default(), 1000.0);
    }

    #[test]
    #[should_panic(expected = "bitrate")]
    fn zero_bitrate_rejected() {
        let _ = Chunk::new(ChunkId(0), 1.0, FrameStats::default(), 0.0);
    }
}
