//! Server-side transform encoder.
//!
//! In the LPVS emulator (paper Fig. 6) every requested video passes
//! through the encoder; chunks selected by the scheduler are
//! transformed with the technique matching the requesting device's
//! display, the rest bypass. The encoder also measures the realized
//! per-chunk power-reduction ratios whose slot average is the
//! observation Δ_n fed to the Bayesian estimator (paper §V-D).

use crate::chunk::Chunk;
use crate::video::Video;
use lpvs_display::quality::QualityBudget;
use lpvs_display::spec::{DisplayKind, DisplaySpec};
use lpvs_display::transform::{
    BacklightScaling, ColorTransform, SubpixelShutoff, Transform, TransformOutcome,
};
use serde::{Deserialize, Serialize};

/// One chunk after encoding: the original, the transform outcome, and
/// the realized reduction ratio on the target display.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedChunk {
    /// The source chunk.
    pub original: Chunk,
    /// Transform result (identity when the chunk offered no headroom).
    pub outcome: TransformOutcome,
    /// Realized power-reduction ratio γ on the target display.
    pub reduction_ratio: f64,
}

/// A fully encoded video for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedVideo {
    chunks: Vec<EncodedChunk>,
}

impl EncodedVideo {
    /// Encoded chunks in playback order.
    pub fn chunks(&self) -> &[EncodedChunk] {
        &self.chunks
    }

    /// Duration-weighted mean reduction ratio over the video — the
    /// observation Δ_n the estimator folds in after the slot plays.
    pub fn mean_reduction_ratio(&self) -> f64 {
        let total: f64 = self.chunks.iter().map(|c| c.original.duration_secs).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.chunks
            .iter()
            .map(|c| c.reduction_ratio * c.original.duration_secs)
            .sum::<f64>()
            / total
    }

    /// Total display energy (joules) to play the *transformed* video on
    /// `spec`.
    pub fn transformed_energy_joules(&self, spec: &DisplaySpec) -> f64 {
        self.chunks
            .iter()
            .map(|c| c.outcome.power_watts(spec) * c.original.duration_secs)
            .sum()
    }

    /// Total display energy (joules) to play the *original* video on
    /// `spec`.
    pub fn original_energy_joules(&self, spec: &DisplaySpec) -> f64 {
        self.chunks.iter().map(|c| c.original.energy_joules(spec)).sum()
    }

    /// Worst perceptual distortion across chunks.
    pub fn peak_perceptual_score(&self) -> f64 {
        self.chunks
            .iter()
            .map(|c| c.outcome.distortion.perceptual_score())
            .fold(0.0, f64::max)
    }
}

/// The transform encoder: picks the display-appropriate transform and
/// applies it chunk by chunk.
///
/// # Example
///
/// ```
/// use lpvs_media::content::{ContentModel, Genre};
/// use lpvs_media::encoder::TransformEncoder;
/// use lpvs_display::quality::QualityBudget;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
///
/// let video = ContentModel::new(Genre::Movie, 1).video(1, Resolution::HD, 120.0, 10.0);
/// let spec = DisplaySpec::lcd_phone(Resolution::HD);
/// let encoded = TransformEncoder::new(QualityBudget::default()).encode(&video, &spec);
/// assert!(encoded.transformed_energy_joules(&spec) < encoded.original_energy_joules(&spec));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformEncoder {
    budget: QualityBudget,
}

impl TransformEncoder {
    /// Creates an encoder with the given quality budget.
    pub fn new(budget: QualityBudget) -> Self {
        Self { budget }
    }

    /// The quality budget in force.
    pub fn budget(&self) -> &QualityBudget {
        &self.budget
    }

    /// Transforms one chunk for the target display: backlight scaling
    /// for LCD; color transform chained with subpixel shutoff for OLED
    /// (the Crayon-style combination of Table I row \[17\]).
    pub fn encode_chunk(&self, chunk: &Chunk, spec: &DisplaySpec) -> EncodedChunk {
        let outcome = match spec.kind {
            DisplayKind::Lcd => BacklightScaling::new(self.budget).apply(&chunk.stats, spec),
            DisplayKind::Oled => {
                let color = ColorTransform::new(self.budget).apply(&chunk.stats, spec);
                let shutoff = SubpixelShutoff::new(self.budget).apply(&color.stats, spec);
                color.then(shutoff)
            }
        };
        let reduction_ratio = outcome.reduction_ratio(&chunk.stats, spec);
        EncodedChunk { original: chunk.clone(), outcome, reduction_ratio }
    }

    /// Transforms a whole video for the target display.
    pub fn encode(&self, video: &Video, spec: &DisplaySpec) -> EncodedVideo {
        let chunks = video.chunks().iter().map(|c| self.encode_chunk(c, spec)).collect();
        EncodedVideo { chunks }
    }

    /// Transforms an arbitrary chunk window (the `K_m` chunks available
    /// at a scheduling point).
    pub fn encode_window(&self, window: &[Chunk], spec: &DisplaySpec) -> EncodedVideo {
        let chunks = window.iter().map(|c| self.encode_chunk(c, spec)).collect();
        EncodedVideo { chunks }
    }
}

impl Default for TransformEncoder {
    fn default() -> Self {
        Self::new(QualityBudget::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentModel, Genre};
    use lpvs_display::spec::Resolution;

    fn video() -> Video {
        ContentModel::new(Genre::Gaming, 77).video(1, Resolution::HD, 300.0, 10.0)
    }

    #[test]
    fn oled_savings_land_in_table_i_band() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode(&video(), &spec);
        let gamma = encoded.mean_reduction_ratio();
        assert!((0.13..=0.60).contains(&gamma), "mean γ = {gamma}");
    }

    #[test]
    fn lcd_savings_are_substantial_on_dark_gaming() {
        let spec = DisplaySpec::lcd_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode(&video(), &spec);
        let gamma = encoded.mean_reduction_ratio();
        assert!(gamma > 0.2, "mean γ = {gamma}");
    }

    #[test]
    fn energy_accounting_is_consistent() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode(&video(), &spec);
        let orig = encoded.original_energy_joules(&spec);
        let tran = encoded.transformed_energy_joules(&spec);
        let gamma = encoded.mean_reduction_ratio();
        // The duration-weighted γ and the realized energy ratio differ
        // by the covariance between a chunk's brightness (its energy
        // weight) and its reduction ratio — bright chunks both cost
        // more and save more, so the energy ratio runs a few points
        // above γ. Pin the two to the same neighborhood and ordering.
        let ratio = 1.0 - tran / orig;
        assert!((ratio - gamma).abs() < 0.10, "γ {gamma} vs energy ratio {ratio}");
        assert!(ratio >= gamma - 1e-9, "bright-chunk covariance should not be negative");
    }

    #[test]
    fn per_chunk_ratios_vary_with_content() {
        let spec = DisplaySpec::lcd_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode(&video(), &spec);
        let ratios: Vec<f64> = encoded.chunks().iter().map(|c| c.reduction_ratio).collect();
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.05, "ratios too uniform: {min}–{max}");
    }

    #[test]
    fn distortion_never_exceeds_budget_score() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode(&video(), &spec);
        assert!(encoded.peak_perceptual_score() < 0.4);
    }

    #[test]
    fn window_encoding_matches_full_prefix() {
        let v = video();
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let enc = TransformEncoder::default();
        let full = enc.encode(&v, &spec);
        let window = enc.encode_window(v.window(0, 5), &spec);
        assert_eq!(window.chunks().len(), 5);
        assert_eq!(window.chunks()[..], full.chunks()[..5]);
    }

    #[test]
    fn empty_window_mean_ratio_is_zero() {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let encoded = TransformEncoder::default().encode_window(&[], &spec);
        assert_eq!(encoded.mean_reduction_ratio(), 0.0);
    }
}
