//! Edge resource-cost functions `g(·)` and `h(·)` (paper §IV-D).
//!
//! Video transforming is pixel-wise, so its compute cost scales with
//! pixel throughput (resolution × frame rate); its storage cost is the
//! transformed chunks buffered for the slot, which scales with bitrate
//! × duration. The calibration follows the paper's own sizing: one
//! Nokia AirFrame open edge server sustains video processing for about
//! **100 concurrent mobile devices** at the 720p operating point of the
//! Wowza transcoding benchmarks (paper refs. \[14\], \[15\]).

use lpvs_display::spec::Resolution;
use serde::{Deserialize, Serialize};

/// Reference pixel throughput: 720p at 30 fps = 1 compute unit.
const REFERENCE_PIXELS_PER_SEC: f64 = 1280.0 * 720.0 * 30.0;

/// Compute cost `g(d_n(t))` of transforming one stream for a slot, in
/// compute units (1.0 = one 720p30 stream).
///
/// # Example
///
/// ```
/// use lpvs_media::cost::transform_compute_units;
/// use lpvs_display::spec::Resolution;
///
/// let hd = transform_compute_units(Resolution::HD, 30.0);
/// let fhd = transform_compute_units(Resolution::FHD, 30.0);
/// assert!((hd - 1.0).abs() < 1e-12);
/// assert!((fhd / hd - 2.25).abs() < 1e-9); // 1080p has 2.25× the pixels
/// ```
pub fn transform_compute_units(resolution: Resolution, fps: f64) -> f64 {
    assert!(fps > 0.0, "frame rate must be positive");
    resolution.pixels() as f64 * fps / REFERENCE_PIXELS_PER_SEC
}

/// Storage cost `h(d_n(t))` of buffering one stream's transformed
/// chunks, in gigabytes.
///
/// # Example
///
/// ```
/// use lpvs_media::cost::storage_gb;
///
/// // 3 Mbit/s over a 300 s slot ≈ 0.1125 GB.
/// let gb = storage_gb(3000.0, 300.0);
/// assert!((gb - 0.1125).abs() < 1e-9);
/// ```
pub fn storage_gb(bitrate_kbps: f64, duration_secs: f64) -> f64 {
    assert!(bitrate_kbps >= 0.0 && duration_secs >= 0.0, "costs must be nonnegative");
    bitrate_kbps * duration_secs / 8.0 / 1e6
}

/// Capacity calibration of one edge server: the `(C, S)` pair of the
/// paper's constraints (6) and (7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeBudgetCalibration {
    /// Spare compute available for transforming, in compute units.
    pub compute_units: f64,
    /// Spare storage available for transformed chunks, in GB.
    pub storage_gb: f64,
}

impl EdgeBudgetCalibration {
    /// The paper's Nokia AirFrame sizing: ≈ 100 concurrent 720p30
    /// streams, with storage for those streams over a 5-minute slot
    /// plus 100 % headroom.
    pub fn nokia_airframe() -> Self {
        let streams = 100.0;
        Self {
            compute_units: streams * transform_compute_units(Resolution::HD, 30.0),
            storage_gb: 2.0 * streams * storage_gb(3000.0, 300.0),
        }
    }

    /// A calibration supporting `streams` concurrent 720p30 streams.
    pub fn for_streams(streams: usize) -> Self {
        let s = streams as f64;
        Self {
            compute_units: s * transform_compute_units(Resolution::HD, 30.0),
            storage_gb: 2.0 * s * storage_gb(3000.0, 300.0),
        }
    }

    /// How many concurrent streams of `resolution` at 30 fps the
    /// compute budget sustains.
    pub fn supported_streams(&self, resolution: Resolution) -> usize {
        (self.compute_units / transform_compute_units(resolution, 30.0)).floor() as usize
    }
}

impl Default for EdgeBudgetCalibration {
    fn default() -> Self {
        Self::nokia_airframe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airframe_sizing_matches_paper() {
        let cal = EdgeBudgetCalibration::nokia_airframe();
        assert_eq!(cal.supported_streams(Resolution::HD), 100);
        // Higher resolutions fit proportionally fewer streams.
        assert_eq!(cal.supported_streams(Resolution::FHD), 44);
        assert!(cal.supported_streams(Resolution::UHD) < 12);
    }

    #[test]
    fn compute_units_scale_with_pixels_and_fps() {
        let base = transform_compute_units(Resolution::HD, 30.0);
        assert!((transform_compute_units(Resolution::HD, 60.0) - 2.0 * base).abs() < 1e-12);
        assert!(
            (transform_compute_units(Resolution::UHD, 30.0) - 9.0 * base).abs() < 1e-9
        );
    }

    #[test]
    fn storage_is_linear() {
        assert_eq!(storage_gb(0.0, 300.0), 0.0);
        let one = storage_gb(6000.0, 300.0);
        assert!((storage_gb(6000.0, 600.0) - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn for_streams_scales() {
        let small = EdgeBudgetCalibration::for_streams(50);
        let big = EdgeBudgetCalibration::for_streams(200);
        assert!((big.compute_units / small.compute_units - 4.0).abs() < 1e-12);
        assert_eq!(small.supported_streams(Resolution::HD), 50);
    }

    #[test]
    #[should_panic(expected = "frame rate")]
    fn zero_fps_rejected() {
        let _ = transform_compute_units(Resolution::HD, 0.0);
    }
}
