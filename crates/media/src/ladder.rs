//! Live-streaming bitrate/resolution ladder.
//!
//! Twitch-style services publish each stream at a ladder of
//! resolutions, each with a target bitrate. The trace records bitrates;
//! this module maps them to resolutions (and back) so the emulator can
//! assign display-appropriate variants to devices (paper §VI-B:
//! "randomly choosing from available display resolutions under the
//! supported bitrates").

use lpvs_display::spec::Resolution;
use serde::{Deserialize, Serialize};

/// A resolution → bitrate ladder (kbit/s).
///
/// # Example
///
/// ```
/// use lpvs_media::ladder::BitrateLadder;
/// use lpvs_display::spec::Resolution;
///
/// let ladder = BitrateLadder::default();
/// assert_eq!(ladder.bitrate_kbps(Resolution::HD), 3000.0);
/// // A 4.5 Mbit/s source supports up to 720p.
/// assert_eq!(ladder.best_resolution_under(4500.0), Some(Resolution::HD));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitrateLadder {
    rungs: Vec<(Resolution, f64)>,
}

impl BitrateLadder {
    /// Builds a ladder from `(resolution, kbit/s)` rungs.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty or bitrates are not strictly
    /// increasing with pixel count.
    pub fn new(mut rungs: Vec<(Resolution, f64)>) -> Self {
        assert!(!rungs.is_empty(), "ladder needs at least one rung");
        rungs.sort_by_key(|(r, _)| r.pixels());
        assert!(
            rungs.windows(2).all(|w| w[0].1 < w[1].1),
            "bitrates must increase with resolution"
        );
        Self { rungs }
    }

    /// Rungs in ascending resolution order.
    pub fn rungs(&self) -> &[(Resolution, f64)] {
        &self.rungs
    }

    /// Target bitrate for `resolution` (exact rung, or interpolated by
    /// pixel count for off-ladder resolutions).
    pub fn bitrate_kbps(&self, resolution: Resolution) -> f64 {
        if let Some(&(_, b)) = self.rungs.iter().find(|(r, _)| *r == resolution) {
            return b;
        }
        // Off-ladder: scale the nearest rung by pixel ratio.
        let nearest = self
            .rungs
            .iter()
            .min_by_key(|(r, _)| r.pixels().abs_diff(resolution.pixels()))
            .expect("ladder is non-empty");
        nearest.1 * resolution.pixels() as f64 / nearest.0.pixels() as f64
    }

    /// Highest resolution whose rung bitrate fits within
    /// `available_kbps`, if any.
    pub fn best_resolution_under(&self, available_kbps: f64) -> Option<Resolution> {
        self.rungs
            .iter()
            .rev()
            .find(|(_, b)| *b <= available_kbps)
            .map(|(r, _)| *r)
    }

    /// All resolutions whose rung bitrate fits within `available_kbps`.
    pub fn resolutions_under(&self, available_kbps: f64) -> Vec<Resolution> {
        self.rungs
            .iter()
            .filter(|(_, b)| *b <= available_kbps)
            .map(|(r, _)| *r)
            .collect()
    }
}

impl Default for BitrateLadder {
    /// The standard live-streaming ladder: 480p @ 1.2, 720p @ 3,
    /// 1080p @ 6, 1440p @ 10, 4K @ 20 Mbit/s.
    fn default() -> Self {
        Self::new(vec![
            (Resolution::SD, 1200.0),
            (Resolution::HD, 3000.0),
            (Resolution::FHD, 6000.0),
            (Resolution::QHD, 10_000.0),
            (Resolution::UHD, 20_000.0),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_is_ascending() {
        let l = BitrateLadder::default();
        assert_eq!(l.rungs().len(), 5);
        assert!(l.rungs().windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn best_resolution_picks_highest_fitting() {
        let l = BitrateLadder::default();
        assert_eq!(l.best_resolution_under(25_000.0), Some(Resolution::UHD));
        assert_eq!(l.best_resolution_under(7000.0), Some(Resolution::FHD));
        assert_eq!(l.best_resolution_under(1200.0), Some(Resolution::SD));
        assert_eq!(l.best_resolution_under(500.0), None);
    }

    #[test]
    fn resolutions_under_lists_all_fitting() {
        let l = BitrateLadder::default();
        assert_eq!(
            l.resolutions_under(6500.0),
            vec![Resolution::SD, Resolution::HD, Resolution::FHD]
        );
        assert!(l.resolutions_under(100.0).is_empty());
    }

    #[test]
    fn off_ladder_resolution_interpolates() {
        let l = BitrateLadder::default();
        let odd = Resolution { width: 1280, height: 720 };
        assert_eq!(l.bitrate_kbps(odd), 3000.0); // exact rung
        let wide = Resolution { width: 2560, height: 1080 };
        let b = l.bitrate_kbps(wide);
        assert!(b > 6000.0 && b < 10_000.0, "interpolated {b}");
    }

    #[test]
    #[should_panic(expected = "increase with resolution")]
    fn non_monotone_ladder_rejected() {
        let _ = BitrateLadder::new(vec![
            (Resolution::SD, 5000.0),
            (Resolution::HD, 3000.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn empty_ladder_rejected() {
        let _ = BitrateLadder::new(vec![]);
    }
}
