//! # lpvs-media — video, content, and encoding substrate
//!
//! LPVS schedules *video chunks*: a complete video is split into short
//! chunks whose content statistics drive per-chunk power rates
//! (paper §IV-A, eq. 1, and Fig. 4). This crate provides everything
//! between the trace and the display models:
//!
//! * [`chunk`] / [`video`] — the chunk/video data model (`VID`,
//!   `CID` identifiers, durations Δ_κ, per-chunk [`FrameStats`]);
//! * [`content`] — a genre-conditioned Markov scene model synthesizing
//!   realistic per-chunk statistics (gaming is dark and saturated,
//!   sports bright, talk shows mid-key, …);
//! * [`ladder`] — the live-streaming bitrate/resolution ladder;
//! * [`abr`] — a buffer-aware adaptive-bitrate controller deriving
//!   per-viewer resolutions from network conditions;
//! * [`cost`] — the transforming resource-cost functions `g(·)` and
//!   `h(·)` of paper §IV-D, calibrated to the Wowza transcoding
//!   benchmarks the paper cites (≈ 100 concurrent 720p streams per
//!   edge server);
//! * [`encoder`] — the server-side transform encoder: applies the
//!   display-appropriate transform to each chunk and reports the
//!   realized power-reduction ratio (the observation Δ_n the Bayesian
//!   estimator consumes).
//!
//! [`FrameStats`]: lpvs_display::stats::FrameStats
//!
//! # Example
//!
//! ```
//! use lpvs_media::content::{ContentModel, Genre};
//! use lpvs_media::encoder::TransformEncoder;
//! use lpvs_display::quality::QualityBudget;
//! use lpvs_display::spec::{DisplaySpec, Resolution};
//!
//! // Synthesize five minutes of gaming content in 10-second chunks…
//! let video = ContentModel::new(Genre::Gaming, 99)
//!     .video(1, Resolution::HD, 300.0, 10.0);
//! assert_eq!(video.chunks().len(), 30);
//!
//! // …and transform it for an OLED phone.
//! let spec = DisplaySpec::oled_phone(Resolution::HD);
//! let encoder = TransformEncoder::new(QualityBudget::default());
//! let encoded = encoder.encode(&video, &spec);
//! assert!(encoded.mean_reduction_ratio() > 0.05);
//! ```

#![warn(missing_docs)]

pub mod abr;
pub mod chunk;
pub mod content;
pub mod cost;
pub mod encoder;
pub mod ladder;
pub mod network;
pub mod video;

pub use abr::AbrController;
pub use chunk::{Chunk, ChunkId};
pub use content::{ContentModel, Genre};
pub use cost::{storage_gb, transform_compute_units, EdgeBudgetCalibration};
pub use encoder::{EncodedChunk, EncodedVideo, TransformEncoder};
pub use ladder::BitrateLadder;
pub use network::BandwidthModel;
pub use video::{Video, VideoId};
