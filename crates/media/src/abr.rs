//! Adaptive bitrate (ABR) selection.
//!
//! The paper's scenario hands each viewer a resolution "under the
//! supported bitrates" (§VI-B). Real players run an ABR loop; this
//! module provides a buffer-aware one — a simplified BBA-style
//! controller — so the emulator can derive per-viewer resolutions from
//! network conditions rather than fiat:
//!
//! * throughput below the lowest rung → lowest rung (and the buffer
//!   drains);
//! * a safety factor keeps the chosen rung below measured throughput;
//! * a low buffer forces a downshift, a full one permits an upshift.

use crate::ladder::BitrateLadder;
use lpvs_display::spec::Resolution;
use serde::{Deserialize, Serialize};

/// Buffer-aware ABR controller state for one viewer.
///
/// # Example
///
/// ```
/// use lpvs_media::abr::AbrController;
/// use lpvs_media::ladder::BitrateLadder;
/// use lpvs_display::spec::Resolution;
///
/// let mut abr = AbrController::new(BitrateLadder::default());
/// // Plenty of throughput: climbs the ladder as the buffer fills.
/// let mut last = Resolution::SD;
/// for _ in 0..20 {
///     last = abr.next_resolution(9_000.0, 10.0);
/// }
/// assert_eq!(last, Resolution::FHD);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbrController {
    ladder: BitrateLadder,
    /// Seconds of video currently buffered.
    buffer_secs: f64,
    /// Exponentially smoothed throughput estimate (kbit/s).
    throughput_kbps: f64,
    /// Currently selected rung.
    current: Resolution,
}

/// Keep the chosen rung at or below this fraction of measured
/// throughput.
const SAFETY: f64 = 0.8;
/// Below this buffer level, force the lowest safe rung.
const PANIC_BUFFER_SECS: f64 = 5.0;
/// Above this buffer level, allow climbing one rung.
const COMFORT_BUFFER_SECS: f64 = 15.0;
/// Buffer cap (player limit).
const MAX_BUFFER_SECS: f64 = 30.0;
/// Throughput EWMA weight for the newest sample.
const EWMA: f64 = 0.3;

impl AbrController {
    /// A controller starting at the ladder's lowest rung with an empty
    /// buffer.
    pub fn new(ladder: BitrateLadder) -> Self {
        let current = ladder.rungs()[0].0;
        Self { ladder, buffer_secs: 0.0, throughput_kbps: 0.0, current }
    }

    /// Seconds of video buffered.
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_secs
    }

    /// Smoothed throughput estimate (kbit/s).
    pub fn throughput_kbps(&self) -> f64 {
        self.throughput_kbps
    }

    /// Currently selected resolution.
    pub fn current(&self) -> Resolution {
        self.current
    }

    /// Advances one decision epoch: folds in a throughput sample
    /// (kbit/s) over `elapsed_secs` of playback, updates the buffer,
    /// and returns the rung for the next segment.
    ///
    /// # Panics
    ///
    /// Panics on a negative throughput sample or elapsed time.
    pub fn next_resolution(&mut self, sample_kbps: f64, elapsed_secs: f64) -> Resolution {
        assert!(sample_kbps >= 0.0, "throughput cannot be negative");
        assert!(elapsed_secs >= 0.0, "time cannot run backwards");

        self.throughput_kbps = if self.throughput_kbps <= 0.0 {
            sample_kbps
        } else {
            EWMA * sample_kbps + (1.0 - EWMA) * self.throughput_kbps
        };

        // Buffer dynamics: we download at `sample` while consuming at
        // the current rung's rate.
        let current_rate = self.ladder.bitrate_kbps(self.current);
        let fill = if current_rate > 0.0 {
            elapsed_secs * (sample_kbps / current_rate - 1.0)
        } else {
            elapsed_secs
        };
        self.buffer_secs = (self.buffer_secs + fill).clamp(0.0, MAX_BUFFER_SECS);

        let safe_kbps = SAFETY * self.throughput_kbps;
        let safe = self.ladder.best_resolution_under(safe_kbps);
        let lowest = self.ladder.rungs()[0].0;

        self.current = match safe {
            None => lowest, // below the whole ladder: ride the floor
            Some(best) => {
                if self.buffer_secs < PANIC_BUFFER_SECS {
                    // Rebuffering risk: drop to the safe rung outright.
                    best.min_by_pixels(self.current)
                } else if self.buffer_secs >= COMFORT_BUFFER_SECS {
                    // Comfortable: climb toward the safe rung one rung
                    // per epoch.
                    self.step_toward(best)
                } else {
                    // In between: hold unless the current rung became
                    // unsafe.
                    if self.ladder.bitrate_kbps(self.current) > safe_kbps {
                        best
                    } else {
                        self.current
                    }
                }
            }
        };
        self.current
    }

    /// Moves one ladder rung from `current` toward `target`.
    fn step_toward(&self, target: Resolution) -> Resolution {
        let rungs = self.ladder.rungs();
        let pos = |r: Resolution| rungs.iter().position(|(x, _)| *x == r).unwrap_or(0);
        let cur = pos(self.current);
        let tgt = pos(target);
        let next = if tgt > cur { cur + 1 } else if tgt < cur { cur - 1 } else { cur };
        rungs[next].0
    }
}

/// Helper: the smaller of two resolutions by pixel count.
trait MinByPixels {
    fn min_by_pixels(self, other: Resolution) -> Resolution;
}

impl MinByPixels for Resolution {
    fn min_by_pixels(self, other: Resolution) -> Resolution {
        if self.pixels() <= other.pixels() {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AbrController {
        AbrController::new(BitrateLadder::default())
    }

    #[test]
    fn starts_at_the_bottom() {
        let abr = controller();
        assert_eq!(abr.current(), Resolution::SD);
        assert_eq!(abr.buffer_secs(), 0.0);
    }

    #[test]
    fn climbs_under_ample_throughput() {
        let mut abr = controller();
        let mut seen = vec![abr.current()];
        for _ in 0..30 {
            seen.push(abr.next_resolution(26_000.0, 10.0));
        }
        // Ends at the top rung, visiting intermediate rungs on the way.
        assert_eq!(*seen.last().unwrap(), Resolution::UHD);
        assert!(seen.contains(&Resolution::FHD));
        // Never skips more than one rung per epoch.
        for w in seen.windows(2) {
            let ladder = BitrateLadder::default();
            let pos = |r: Resolution| {
                ladder.rungs().iter().position(|(x, _)| *x == r).unwrap()
            };
            assert!(pos(w[1]).abs_diff(pos(w[0])) <= 1);
        }
    }

    #[test]
    fn throttles_on_collapse() {
        let mut abr = controller();
        for _ in 0..30 {
            abr.next_resolution(26_000.0, 10.0);
        }
        assert_eq!(abr.current(), Resolution::UHD);
        // Throughput collapses: buffer drains, controller drops fast.
        let mut last = abr.current();
        for _ in 0..12 {
            last = abr.next_resolution(1_000.0, 10.0);
        }
        assert_eq!(last, Resolution::SD);
    }

    #[test]
    fn sub_ladder_throughput_rides_the_floor() {
        let mut abr = controller();
        for _ in 0..5 {
            abr.next_resolution(500.0, 10.0);
        }
        assert_eq!(abr.current(), Resolution::SD);
        assert_eq!(abr.buffer_secs(), 0.0); // cannot even sustain SD
    }

    #[test]
    fn holds_steady_at_matched_throughput() {
        let mut abr = controller();
        // 4.5 Mbit/s: safely 720p (3 Mbit rung; 1080p needs 6).
        let mut last = abr.current();
        for _ in 0..40 {
            last = abr.next_resolution(4_500.0, 10.0);
        }
        assert_eq!(last, Resolution::HD);
    }

    #[test]
    fn buffer_is_capped() {
        let mut abr = controller();
        for _ in 0..100 {
            abr.next_resolution(50_000.0, 10.0);
        }
        assert!(abr.buffer_secs() <= MAX_BUFFER_SECS + 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_sample_rejected() {
        let _ = controller().next_resolution(-1.0, 10.0);
    }
}
