//! CDN → edge prefetch cache.
//!
//! The edge server prefetches video chunks from the CDN PoP; how many
//! chunks of a video are present at a scheduling point determines the
//! paper's `K_m` (eq. 1, Fig. 4: some users' windows are partly
//! unavailable). Two pieces live here:
//!
//! * [`PrefetchCache`] — a size-bounded LRU of cached chunks with
//!   hit/miss accounting;
//! * [`PrefetchPolicy`] — how far ahead of a playhead the edge
//!   prefetches, optionally boosted by channel popularity.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// How aggressively the edge prefetches ahead of each viewer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// Everything already produced is cached (sufficient storage).
    Full,
    /// A fixed look-ahead window of `chunks` beyond the playhead.
    Window {
        /// Chunks prefetched beyond the playhead.
        chunks: usize,
    },
    /// A base window widened for popular channels: the window grows by
    /// `per_hundred_viewers` chunks per 100 concurrent viewers, capped
    /// at `max_chunks`.
    PopularityBoosted {
        /// Base look-ahead window.
        base: usize,
        /// Extra chunks per 100 viewers.
        per_hundred_viewers: usize,
        /// Hard cap on the window.
        max_chunks: usize,
    },
}

impl PrefetchPolicy {
    /// Number of chunks available at a scheduling point for a video of
    /// `produced` chunks with the viewer's playhead at `playhead`
    /// (chunks already played) and `viewers` watching the channel.
    ///
    /// Returns the paper's `K_m`: how many not-yet-played chunks the
    /// edge holds.
    pub fn available_chunks(&self, produced: usize, playhead: usize, viewers: u32) -> usize {
        let remaining = produced.saturating_sub(playhead);
        match *self {
            PrefetchPolicy::Full => remaining,
            PrefetchPolicy::Window { chunks } => remaining.min(chunks),
            PrefetchPolicy::PopularityBoosted { base, per_hundred_viewers, max_chunks } => {
                let boost = (viewers as usize / 100) * per_hundred_viewers;
                remaining.min((base + boost).min(max_chunks))
            }
        }
    }
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy::Window { chunks: 30 }
    }
}

/// A size-bounded LRU cache with hit/miss accounting.
///
/// Keys are whatever the caller uses to identify chunks (e.g.
/// `(VideoId, ChunkId)`); values carry only their size, since the
/// emulator never needs chunk *bytes*.
///
/// # Example
///
/// ```
/// use lpvs_edge::cache::PrefetchCache;
///
/// let mut cache: PrefetchCache<(u64, u32)> = PrefetchCache::new(1.0);
/// cache.insert((1, 0), 0.4);
/// cache.insert((1, 1), 0.4);
/// cache.insert((1, 2), 0.4); // evicts (1, 0)
/// assert!(!cache.contains(&(1, 0)));
/// assert!(cache.contains(&(1, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchCache<K: Eq + Hash + Clone> {
    capacity_gb: f64,
    used_gb: f64,
    /// Key → (size, last-use stamp).
    entries: HashMap<K, (f64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone> PrefetchCache<K> {
    /// Creates a cache with the given capacity in GB.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub fn new(capacity_gb: f64) -> Self {
        assert!(capacity_gb > 0.0, "cache capacity must be positive");
        Self {
            capacity_gb,
            used_gb: 0.0,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in GB.
    pub fn capacity_gb(&self) -> f64 {
        self.capacity_gb
    }

    /// Bytes currently cached, in GB.
    pub fn used_gb(&self) -> f64 {
        self.used_gb
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits recorded by [`PrefetchCache::lookup`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded by [`PrefetchCache::lookup`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]` (0 before any lookup).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Membership check without touching recency or statistics.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Records an access: refreshes recency on hit, counts a miss
    /// otherwise. Returns whether it was a hit.
    pub fn lookup(&mut self, key: &K) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.1 = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts (or refreshes) an entry of `size_gb`, evicting the
    /// least-recently-used entries until it fits. An entry larger than
    /// the whole cache is rejected (returns `false`).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite size.
    pub fn insert(&mut self, key: K, size_gb: f64) -> bool {
        assert!(size_gb.is_finite() && size_gb >= 0.0, "entry size must be nonnegative");
        if size_gb > self.capacity_gb {
            return false;
        }
        self.clock += 1;
        if let Some((old, _)) = self.entries.remove(&key) {
            self.used_gb -= old;
        }
        while self.used_gb + size_gb > self.capacity_gb + 1e-12 {
            self.evict_lru();
        }
        self.entries.insert(key, (size_gb, self.clock));
        self.used_gb += size_gb;
        true
    }

    /// Evicts the least-recently-used entry, if any.
    pub fn evict_lru(&mut self) -> Option<K> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())?;
        if let Some((size, _)) = self.entries.remove(&victim) {
            self.used_gb -= size;
        }
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c: PrefetchCache<u32> = PrefetchCache::new(3.0);
        c.insert(1, 1.0);
        c.insert(2, 1.0);
        c.insert(3, 1.0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(&1));
        c.insert(4, 1.0);
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3) && c.contains(&4));
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut c: PrefetchCache<u32> = PrefetchCache::new(2.0);
        c.insert(1, 1.0);
        assert!(c.lookup(&1));
        assert!(!c.lookup(&9));
        assert!(!c.lookup(&9));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reinserting_updates_size() {
        let mut c: PrefetchCache<u32> = PrefetchCache::new(2.0);
        c.insert(1, 1.5);
        c.insert(1, 0.5); // shrink in place
        assert!((c.used_gb() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c: PrefetchCache<u32> = PrefetchCache::new(1.0);
        assert!(!c.insert(1, 2.0));
        assert!(c.is_empty());
    }

    #[test]
    fn policy_full_exposes_everything_remaining() {
        let p = PrefetchPolicy::Full;
        assert_eq!(p.available_chunks(100, 40, 5), 60);
        assert_eq!(p.available_chunks(10, 50, 5), 0);
    }

    #[test]
    fn policy_window_caps_lookahead() {
        let p = PrefetchPolicy::Window { chunks: 30 };
        assert_eq!(p.available_chunks(1000, 0, 5), 30);
        assert_eq!(p.available_chunks(20, 5, 5), 15);
    }

    #[test]
    fn policy_popularity_boosts_and_caps() {
        let p = PrefetchPolicy::PopularityBoosted {
            base: 10,
            per_hundred_viewers: 5,
            max_chunks: 40,
        };
        assert_eq!(p.available_chunks(1000, 0, 50), 10); // no boost yet
        assert_eq!(p.available_chunks(1000, 0, 250), 20); // +2 × 5
        assert_eq!(p.available_chunks(1000, 0, 100_000), 40); // capped
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: PrefetchCache<u32> = PrefetchCache::new(0.0);
    }
}
