//! # lpvs-edge — edge-computing substrate
//!
//! The LPVS scenario (paper §IV-A, Fig. 3) is a 5G mobile-edge
//! platform: base stations with co-located edge servers serve *virtual
//! clusters* (VCs) of mobile devices, prefetching video from CDN PoPs.
//! This crate models that substrate:
//!
//! * [`battery`] — device batteries with joule-level accounting;
//! * [`device`] — mobile devices: display spec, battery, whole-phone
//!   power draw, and the user's video-abandonment threshold;
//! * [`server`] — edge servers with the compute/storage budgets of the
//!   paper's constraints (6)–(7) and per-slot admission;
//! * [`cluster`] — virtual clusters and a calibrated population
//!   generator (LCD/OLED mix, resolution mix, Gaussian initial battery
//!   as in §VI-B);
//! * [`cache`] — the CDN→edge prefetch cache deciding how many chunks
//!   `K_m` of each video are available at a scheduling point;
//! * [`slot`] — the 5-minute scheduling clock (paper Remark 1);
//! * [`fleet`] — the provider-scale [`FleetScheduler`]: a columnar
//!   device fleet partitioned across N edge shards, each running the
//!   full resilient pipeline on its own thread, with a bounded
//!   cross-shard anxiety-rebalancing pass.
//!
//! # Example
//!
//! ```
//! use lpvs_edge::cluster::{ClusterGenerator, VirtualCluster};
//!
//! let vc: VirtualCluster = ClusterGenerator::paper_setup(80, 11).generate();
//! assert_eq!(vc.devices().len(), 80);
//! // The Nokia AirFrame budget admits all 80 devices' 720p transforms.
//! assert!(vc.server().compute_capacity() >= 80.0);
//! ```

#![warn(missing_docs)]

pub mod battery;
pub mod cache;
pub mod cluster;
pub mod device;
pub mod fleet;
pub mod server;
pub mod slot;

pub use battery::Battery;
pub use cache::{PrefetchCache, PrefetchPolicy};
pub use cluster::{ClusterGenerator, VirtualCluster};
pub use device::{Device, DeviceId};
pub use fleet::{FleetConfig, FleetSchedule, FleetScheduler, Partitioner, ShardReport};
pub use server::EdgeServer;
pub use slot::SlotClock;
