//! Device battery with joule-level accounting.

use serde::{Deserialize, Serialize};

/// Joules per watt-hour.
const J_PER_WH: f64 = 3600.0;

/// A phone battery.
///
/// Tracks remaining energy in joules against a fixed capacity. The
/// level is what devices report to the scheduler at each scheduling
/// point (the paper's `e_{n,m}(1)`).
///
/// # Example
///
/// ```
/// use lpvs_edge::battery::Battery;
///
/// let mut b = Battery::phone_at(0.5);
/// assert_eq!(b.percent(), 50);
/// b.drain_joules(b.remaining_joules() / 2.0);
/// assert_eq!(b.percent(), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// Typical phone battery capacity: ≈ 4,000 mAh at 3.85 V ≈ 15.4 Wh.
    pub const PHONE_CAPACITY_WH: f64 = 15.4;

    /// Creates a battery with the given capacity (Wh) at the given
    /// initial fraction.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive or the fraction is
    /// outside `[0, 1]`.
    pub fn new(capacity_wh: f64, fraction: f64) -> Self {
        assert!(capacity_wh > 0.0, "battery capacity must be positive");
        assert!((0.0..=1.0).contains(&fraction), "battery fraction must be in [0, 1]");
        let capacity_j = capacity_wh * J_PER_WH;
        Self { capacity_j, remaining_j: capacity_j * fraction }
    }

    /// A typical phone battery at the given fraction.
    pub fn phone_at(fraction: f64) -> Self {
        Self::new(Self::PHONE_CAPACITY_WH, fraction)
    }

    /// Total capacity in joules.
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy in joules.
    pub fn remaining_joules(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.remaining_j / self.capacity_j
    }

    /// Remaining level as an integer percent (0–100, floor — a phone
    /// showing "20 %" has at least 20 % charge).
    pub fn percent(&self) -> u8 {
        (self.fraction() * 100.0).floor().clamp(0.0, 100.0) as u8
    }

    /// True once the battery is (numerically) empty.
    pub fn is_empty(&self) -> bool {
        self.remaining_j <= 1e-9
    }

    /// Drains `joules`, saturating at empty. Returns the energy
    /// actually drained.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite drain.
    pub fn drain_joules(&mut self, joules: f64) -> f64 {
        assert!(joules.is_finite() && joules >= 0.0, "drain must be nonnegative");
        let drained = joules.min(self.remaining_j);
        self.remaining_j -= drained;
        drained
    }

    /// Seconds the battery sustains a constant `watts` draw.
    pub fn seconds_at(&self, watts: f64) -> f64 {
        if watts <= 0.0 {
            return f64::INFINITY;
        }
        self.remaining_j / watts
    }
}

impl Default for Battery {
    /// A full phone battery.
    fn default() -> Self {
        Self::phone_at(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion() {
        let b = Battery::phone_at(1.0);
        assert!((b.capacity_joules() - 15.4 * 3600.0).abs() < 1e-9);
        assert_eq!(b.percent(), 100);
    }

    #[test]
    fn drain_saturates_at_empty() {
        let mut b = Battery::new(1.0, 0.1); // 360 J
        let drained = b.drain_joules(1000.0);
        assert!((drained - 360.0).abs() < 1e-9);
        assert!(b.is_empty());
        assert_eq!(b.percent(), 0);
    }

    #[test]
    fn percent_floors() {
        let b = Battery::new(1.0, 0.199);
        assert_eq!(b.percent(), 19);
    }

    #[test]
    fn seconds_at_constant_draw() {
        let b = Battery::new(1.0, 0.5); // 1800 J
        assert!((b.seconds_at(2.0) - 900.0).abs() < 1e-9);
        assert_eq!(b.seconds_at(0.0), f64::INFINITY);
    }

    #[test]
    fn playback_time_is_realistic() {
        // A full phone battery with ~1.3 W total draw should stream for
        // many hours (phones realistically manage 8–14 h of video).
        let b = Battery::phone_at(1.0);
        let hours = b.seconds_at(1.3) / 3600.0;
        assert!((8.0..16.0).contains(&hours), "streaming life {hours} h");
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_drain_rejected() {
        let mut b = Battery::default();
        b.drain_joules(-1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_out_of_range_rejected() {
        let _ = Battery::new(10.0, 1.5);
    }
}
