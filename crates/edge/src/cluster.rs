//! Virtual clusters and their population generator.
//!
//! All devices under one base station form a *virtual cluster* sharing
//! one edge server (paper §IV-A). The paper's emulation assigns device
//! display specs by "randomly choosing from available display
//! resolutions under the supported bitrates" and initial battery levels
//! from a Gaussian distribution (§VI-B); [`ClusterGenerator`]
//! reproduces that setup.

use crate::battery::Battery;
use crate::device::{Device, DeviceId};
use crate::server::EdgeServer;
use lpvs_display::spec::{DisplayKind, DisplaySpec, Resolution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A virtual cluster: devices plus their shared edge server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualCluster {
    devices: Vec<Device>,
    server: EdgeServer,
}

impl VirtualCluster {
    /// Creates a cluster.
    pub fn new(devices: Vec<Device>, server: EdgeServer) -> Self {
        Self { devices, server }
    }

    /// Member devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable member devices (the emulator drains batteries through
    /// this).
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// The shared edge server.
    pub fn server(&self) -> &EdgeServer {
        &self.server
    }

    /// Mutable edge server.
    pub fn server_mut(&mut self) -> &mut EdgeServer {
        &mut self.server
    }

    /// Devices still actively watching.
    pub fn watching_count(&self) -> usize {
        self.devices.iter().filter(|d| d.is_watching()).count()
    }

    /// Mean battery fraction across members.
    pub fn mean_battery_fraction(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices.iter().map(|d| d.battery().fraction()).sum::<f64>()
            / self.devices.len() as f64
    }
}

/// Seeded generator of calibrated cluster populations.
///
/// # Example
///
/// ```
/// use lpvs_edge::cluster::ClusterGenerator;
///
/// let vc = ClusterGenerator::paper_setup(100, 3).generate();
/// let oled = vc
///     .devices()
///     .iter()
///     .filter(|d| d.spec().kind == lpvs_display::spec::DisplayKind::Oled)
///     .count();
/// assert!(oled > 40 && oled < 80); // ≈ 60 % OLED mix
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterGenerator {
    size: usize,
    seed: u64,
    /// Share of OLED devices (the 2019-era flagship mix).
    oled_share: f64,
    /// Mean of the Gaussian initial battery fraction.
    battery_mean: f64,
    /// Std-dev of the Gaussian initial battery fraction.
    battery_std: f64,
    /// Edge server sizing in concurrent 720p streams.
    server_streams: usize,
    /// Battery capacity in Wh.
    battery_capacity_wh: f64,
    /// Give-up thresholds to draw from (battery percent). Empty ⇒ the
    /// built-in survey-shaped mixture.
    giveup_pool: Vec<u8>,
}

impl ClusterGenerator {
    /// The paper's emulation setup: Gaussian battery `N(0.5, 0.2²)`
    /// clamped to `[2 %, 100 %]`, 60 % OLED, AirFrame-class server.
    pub fn paper_setup(size: usize, seed: u64) -> Self {
        assert!(size > 0, "cluster size must be positive");
        Self {
            size,
            seed,
            oled_share: 0.6,
            battery_mean: 0.5,
            battery_std: 0.2,
            server_streams: 100,
            battery_capacity_wh: Battery::PHONE_CAPACITY_WH,
            giveup_pool: Vec::new(),
        }
    }

    /// Overrides the Gaussian battery parameters.
    pub fn with_battery(mut self, mean: f64, std: f64) -> Self {
        assert!((0.0..=1.0).contains(&mean) && std >= 0.0, "invalid battery parameters");
        self.battery_mean = mean;
        self.battery_std = std;
        self
    }

    /// Overrides the edge server sizing (concurrent 720p streams).
    pub fn with_server_streams(mut self, streams: usize) -> Self {
        self.server_streams = streams;
        self
    }

    /// Overrides the battery capacity (Wh). The paper's emulation never
    /// pins absolute capacities; a smaller effective video-energy
    /// budget reproduces its tens-of-minutes TPV scale (Fig. 9).
    pub fn with_battery_capacity(mut self, wh: f64) -> Self {
        assert!(wh > 0.0, "battery capacity must be positive");
        self.battery_capacity_wh = wh;
        self
    }

    /// Supplies survey-derived give-up thresholds to draw from.
    pub fn with_giveup_pool(mut self, pool: Vec<u8>) -> Self {
        self.giveup_pool = pool;
        self
    }

    /// Number of devices generated.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Generates the cluster (deterministic in the seed).
    pub fn generate(&self) -> VirtualCluster {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc105_7e12u64.rotate_left(1));
        let devices = (0..self.size)
            .map(|i| {
                let kind = if rng.gen_bool(self.oled_share) {
                    DisplayKind::Oled
                } else {
                    DisplayKind::Lcd
                };
                let resolution = sample_resolution(&mut rng);
                let spec = match kind {
                    DisplayKind::Oled => DisplaySpec::oled_phone(resolution),
                    DisplayKind::Lcd => DisplaySpec::lcd_phone(resolution),
                }
                .with_brightness(rng.gen_range(0.5..0.9));
                let fraction = sample_battery(self.battery_mean, self.battery_std, &mut rng);
                let giveup = self.sample_giveup(&mut rng);
                Device::new(
                    DeviceId(i as u32),
                    spec,
                    Battery::new(self.battery_capacity_wh, fraction),
                    giveup,
                )
            })
            .collect();
        VirtualCluster::new(devices, EdgeServer::for_streams(self.server_streams))
    }

    fn sample_giveup<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        if !self.giveup_pool.is_empty() {
            return self.giveup_pool[rng.gen_range(0..self.giveup_pool.len())];
        }
        // Survey-shaped mixture: ~50 % below 10, ~30 % in 10–19,
        // ~15 % in 20–34, ~5 % above.
        let t: f64 = rng.gen_range(0.0..1.0);
        if t < 0.50 {
            rng.gen_range(1..=9)
        } else if t < 0.80 {
            rng.gen_range(10..=19)
        } else if t < 0.95 {
            rng.gen_range(20..=34)
        } else {
            rng.gen_range(35..=60)
        }
    }
}

/// 2019-era phone resolution mix: 720p-class panels still common,
/// 1080p dominant among video watchers, QHD flagships a minority.
fn sample_resolution<R: Rng + ?Sized>(rng: &mut R) -> Resolution {
    let t: f64 = rng.gen_range(0.0..1.0);
    if t < 0.05 {
        Resolution::SD
    } else if t < 0.50 {
        Resolution::HD
    } else if t < 0.88 {
        Resolution::FHD
    } else {
        Resolution::QHD
    }
}

/// Gaussian battery fraction clamped to `[0.02, 1.0]` (Box–Muller).
fn sample_battery<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + std * z).clamp(0.02, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ClusterGenerator::paper_setup(50, 3).generate();
        let b = ClusterGenerator::paper_setup(50, 3).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn battery_distribution_is_gaussian_around_half() {
        let vc = ClusterGenerator::paper_setup(4000, 9).generate();
        let mean = vc.mean_battery_fraction();
        assert!((mean - 0.5).abs() < 0.03, "mean battery {mean}");
        // Clamping keeps everything physical.
        assert!(vc.devices().iter().all(|d| {
            let f = d.battery().fraction();
            (0.02..=1.0).contains(&f)
        }));
    }

    #[test]
    fn custom_battery_parameters_respected() {
        let vc = ClusterGenerator::paper_setup(2000, 4)
            .with_battery(0.25, 0.05)
            .generate();
        let mean = vc.mean_battery_fraction();
        assert!((mean - 0.25).abs() < 0.02, "mean battery {mean}");
    }

    #[test]
    fn giveup_pool_is_used_verbatim() {
        let vc = ClusterGenerator::paper_setup(200, 5)
            .with_giveup_pool(vec![7, 13])
            .generate();
        assert!(vc.devices().iter().all(|d| [7u8, 13].contains(&d.giveup_percent())));
    }

    #[test]
    fn battery_capacity_override() {
        let vc = ClusterGenerator::paper_setup(5, 1).with_battery_capacity(4.0).generate();
        for d in vc.devices() {
            assert!((d.battery().capacity_joules() - 4.0 * 3600.0).abs() < 1e-9);
        }
    }

    #[test]
    fn server_sizing_follows_streams() {
        let vc = ClusterGenerator::paper_setup(10, 1).with_server_streams(25).generate();
        assert!((vc.server().compute_capacity() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn watching_count_starts_full() {
        let vc = ClusterGenerator::paper_setup(60, 2).generate();
        // Devices whose battery already sits at/below their give-up
        // threshold may abandon immediately once played; at t = 0 all
        // still count as watching.
        assert_eq!(vc.watching_count(), 60);
    }

    #[test]
    fn resolution_mix_is_video_heavy() {
        let vc = ClusterGenerator::paper_setup(3000, 8).generate();
        let fhd = vc
            .devices()
            .iter()
            .filter(|d| d.spec().resolution == Resolution::FHD)
            .count() as f64
            / 3000.0;
        assert!((fhd - 0.38).abs() < 0.05, "FHD share {fhd}");
    }
}
