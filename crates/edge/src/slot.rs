//! The scheduling clock: 5-minute slots (paper Remark 1).

use serde::{Deserialize, Serialize};

/// Per-slot scheduling budget, re-exported from `lpvs-core`.
///
/// The type moved to [`lpvs_core::budget`] when the crate dependency
/// was reversed (this crate's [`FleetScheduler`](crate::fleet) now
/// builds *on top of* the core scheduler); the re-export keeps every
/// `lpvs_edge::slot::SlotBudget` call site working unchanged.
pub use lpvs_core::budget::SlotBudget;

/// Seconds per scheduling slot (5 minutes, matching the Twitch trace's
/// sampling interval).
pub const DEFAULT_SLOT_SECS: f64 = 300.0;

/// A slot clock: converts between wall time, slot indices, and slot
/// boundaries.
///
/// # Example
///
/// ```
/// use lpvs_edge::slot::SlotClock;
///
/// let clock = SlotClock::paper_default();
/// assert_eq!(clock.slot_of_secs(0.0), 0);
/// assert_eq!(clock.slot_of_secs(299.9), 0);
/// assert_eq!(clock.slot_of_secs(300.0), 1);
/// assert_eq!(clock.start_secs(3), 900.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotClock {
    slot_secs: f64,
}

impl SlotClock {
    /// A clock with the given slot length in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless the slot length is strictly positive and finite.
    pub fn new(slot_secs: f64) -> Self {
        assert!(
            slot_secs.is_finite() && slot_secs > 0.0,
            "slot length must be positive"
        );
        Self { slot_secs }
    }

    /// The paper's 5-minute scheduling period.
    pub fn paper_default() -> Self {
        Self::new(DEFAULT_SLOT_SECS)
    }

    /// Slot length in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// Slot index containing the given wall time.
    pub fn slot_of_secs(&self, secs: f64) -> u64 {
        (secs.max(0.0) / self.slot_secs) as u64
    }

    /// Wall time at which `slot` starts.
    pub fn start_secs(&self, slot: u64) -> f64 {
        slot as f64 * self.slot_secs
    }

    /// Remaining seconds of the slot containing `secs`.
    pub fn remaining_secs(&self, secs: f64) -> f64 {
        let next = self.start_secs(self.slot_of_secs(secs) + 1);
        next - secs.max(0.0)
    }

    /// Number of whole slots covering `duration_secs` (ceiling).
    pub fn slots_for(&self, duration_secs: f64) -> u64 {
        (duration_secs.max(0.0) / self.slot_secs).ceil() as u64
    }
}

impl Default for SlotClock {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_half_open() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slot_of_secs(0.0), 0);
        assert_eq!(c.slot_of_secs(299.999), 0);
        assert_eq!(c.slot_of_secs(300.0), 1);
        assert_eq!(c.slot_of_secs(3000.0), 10);
    }

    #[test]
    fn remaining_time_counts_down() {
        let c = SlotClock::new(100.0);
        assert!((c.remaining_secs(0.0) - 100.0).abs() < 1e-12);
        assert!((c.remaining_secs(30.0) - 70.0).abs() < 1e-12);
        assert!((c.remaining_secs(199.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slots_for_is_a_ceiling() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slots_for(0.0), 0);
        assert_eq!(c.slots_for(1.0), 1);
        assert_eq!(c.slots_for(300.0), 1);
        assert_eq!(c.slots_for(301.0), 2);
    }

    #[test]
    fn negative_times_clamp_to_zero() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slot_of_secs(-5.0), 0);
        assert_eq!(c.slots_for(-5.0), 0);
    }

    #[test]
    #[should_panic(expected = "slot length")]
    fn zero_slot_rejected() {
        let _ = SlotClock::new(0.0);
    }
}
