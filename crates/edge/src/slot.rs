//! The scheduling clock: 5-minute slots (paper Remark 1).

use serde::{Deserialize, Serialize};

/// Seconds per scheduling slot (5 minutes, matching the Twitch trace's
/// sampling interval).
pub const DEFAULT_SLOT_SECS: f64 = 300.0;

/// A slot clock: converts between wall time, slot indices, and slot
/// boundaries.
///
/// # Example
///
/// ```
/// use lpvs_edge::slot::SlotClock;
///
/// let clock = SlotClock::paper_default();
/// assert_eq!(clock.slot_of_secs(0.0), 0);
/// assert_eq!(clock.slot_of_secs(299.9), 0);
/// assert_eq!(clock.slot_of_secs(300.0), 1);
/// assert_eq!(clock.start_secs(3), 900.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotClock {
    slot_secs: f64,
}

impl SlotClock {
    /// A clock with the given slot length in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless the slot length is strictly positive and finite.
    pub fn new(slot_secs: f64) -> Self {
        assert!(
            slot_secs.is_finite() && slot_secs > 0.0,
            "slot length must be positive"
        );
        Self { slot_secs }
    }

    /// The paper's 5-minute scheduling period.
    pub fn paper_default() -> Self {
        Self::new(DEFAULT_SLOT_SECS)
    }

    /// Slot length in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// Slot index containing the given wall time.
    pub fn slot_of_secs(&self, secs: f64) -> u64 {
        (secs.max(0.0) / self.slot_secs) as u64
    }

    /// Wall time at which `slot` starts.
    pub fn start_secs(&self, slot: u64) -> f64 {
        slot as f64 * self.slot_secs
    }

    /// Remaining seconds of the slot containing `secs`.
    pub fn remaining_secs(&self, secs: f64) -> f64 {
        let next = self.start_secs(self.slot_of_secs(secs) + 1);
        next - secs.max(0.0)
    }

    /// Number of whole slots covering `duration_secs` (ceiling).
    pub fn slots_for(&self, duration_secs: f64) -> u64 {
        (duration_secs.max(0.0) / self.slot_secs).ceil() as u64
    }
}

impl Default for SlotClock {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-slot scheduling budget: how much work the scheduler may spend
/// before the slot's decision is due.
///
/// The default is unbounded — the scheduler runs its configured
/// pipeline to completion. Faults (or a provider SLA) can tighten
/// either knob; the resilient scheduler walks its degradation ladder
/// when the budget does not allow the configured solver to finish.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotBudget {
    /// Wall-clock deadline (seconds) for the whole scheduling run.
    /// `None` means no deadline. A deadline of zero forces the
    /// scheduler straight to its cheapest fallbacks.
    pub deadline_secs: Option<f64>,
    /// Cap on branch-and-bound nodes for this slot. `None` leaves the
    /// configured node limit in force; a cap only ever tightens it.
    pub solver_nodes: Option<usize>,
}

impl SlotBudget {
    /// No deadline, no node cap: the scheduler's normal regime.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Budget with a wall-clock deadline in seconds.
    pub fn with_deadline_secs(mut self, secs: f64) -> Self {
        self.deadline_secs = Some(secs.max(0.0));
        self
    }

    /// Budget with a branch-and-bound node cap.
    pub fn with_solver_nodes(mut self, nodes: usize) -> Self {
        self.solver_nodes = Some(nodes);
        self
    }

    /// Applies a transient budget cut: the node cap becomes `fraction`
    /// of `baseline_nodes` (at least one node). Non-finite or negative
    /// fractions are treated as a full cut.
    pub fn cut(mut self, fraction: f64, baseline_nodes: usize) -> Self {
        let fraction = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 0.0 };
        let nodes = ((baseline_nodes as f64) * fraction).floor() as usize;
        self.solver_nodes = Some(nodes.max(1).min(self.solver_nodes.unwrap_or(usize::MAX)));
        self
    }

    /// Whether either knob is tightened.
    pub fn is_bounded(&self) -> bool {
        self.deadline_secs.is_some() || self.solver_nodes.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_half_open() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slot_of_secs(0.0), 0);
        assert_eq!(c.slot_of_secs(299.999), 0);
        assert_eq!(c.slot_of_secs(300.0), 1);
        assert_eq!(c.slot_of_secs(3000.0), 10);
    }

    #[test]
    fn remaining_time_counts_down() {
        let c = SlotClock::new(100.0);
        assert!((c.remaining_secs(0.0) - 100.0).abs() < 1e-12);
        assert!((c.remaining_secs(30.0) - 70.0).abs() < 1e-12);
        assert!((c.remaining_secs(199.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slots_for_is_a_ceiling() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slots_for(0.0), 0);
        assert_eq!(c.slots_for(1.0), 1);
        assert_eq!(c.slots_for(300.0), 1);
        assert_eq!(c.slots_for(301.0), 2);
    }

    #[test]
    fn negative_times_clamp_to_zero() {
        let c = SlotClock::paper_default();
        assert_eq!(c.slot_of_secs(-5.0), 0);
        assert_eq!(c.slots_for(-5.0), 0);
    }

    #[test]
    #[should_panic(expected = "slot length")]
    fn zero_slot_rejected() {
        let _ = SlotClock::new(0.0);
    }

    #[test]
    fn default_budget_is_unbounded() {
        let b = SlotBudget::unbounded();
        assert!(!b.is_bounded());
        assert_eq!(b.deadline_secs, None);
        assert_eq!(b.solver_nodes, None);
    }

    #[test]
    fn budget_knobs_tighten() {
        let b = SlotBudget::unbounded().with_deadline_secs(0.5).with_solver_nodes(16);
        assert!(b.is_bounded());
        assert_eq!(b.deadline_secs, Some(0.5));
        assert_eq!(b.solver_nodes, Some(16));
        // Negative deadlines clamp to zero rather than panicking.
        assert_eq!(SlotBudget::unbounded().with_deadline_secs(-1.0).deadline_secs, Some(0.0));
    }

    #[test]
    fn budget_cut_scales_and_floors_at_one_node() {
        assert_eq!(SlotBudget::unbounded().cut(0.25, 128).solver_nodes, Some(32));
        assert_eq!(SlotBudget::unbounded().cut(0.0, 128).solver_nodes, Some(1));
        assert_eq!(SlotBudget::unbounded().cut(f64::NAN, 128).solver_nodes, Some(1));
        // A cut never loosens an existing cap.
        assert_eq!(SlotBudget::unbounded().with_solver_nodes(8).cut(0.5, 128).solver_nodes, Some(8));
    }
}
