//! Provider-scale sharded scheduling: one fleet, many edge servers.
//!
//! The paper schedules one virtual cluster against one edge server. A
//! provider operates many base stations, each with its own co-located
//! server, over a fleet orders of magnitude larger than a cluster.
//! [`FleetScheduler`] closes that gap in three steps:
//!
//! 1. **Partition** — the columnar
//!    [`DeviceFleet`](lpvs_core::fleet::DeviceFleet) is split across
//!    `N` shards, either by *locality* (contiguous index ranges — O(1)
//!    zero-copy [`FleetView`](lpvs_core::fleet::FleetView)s, modeling
//!    devices already grouped by base station) or by *hash*
//!    (deterministic scatter, modeling provider-side load balancing).
//! 2. **Solve** — each shard materializes its own
//!    [`SlotProblem`](lpvs_core::problem::SlotProblem) and runs the full
//!    resilient pipeline
//!    ([`LpvsScheduler::schedule_resilient`](lpvs_core::scheduler::LpvsScheduler::schedule_resilient))
//!    on its own scoped thread, against its own server's capacities.
//!    Shards never share mutable state; results are joined in shard
//!    order, so the outcome is deterministic regardless of thread
//!    interleaving.
//! 3. **Rebalance** — a bounded cross-shard pass migrates marginal
//!    low-battery viewers from saturated shards to shards with spare
//!    capacity, reusing Phase-2's pure-addition criterion (the
//!    λ-weighted objective of eq. 13 must strictly improve) and the
//!    target server's own admission control — so per-shard capacity
//!    can never be violated by a migration.
//!
//! With one shard the partition is the identity, no migration target
//! exists, and the result is **bit-identical** to the monolithic
//! scheduler — the equivalence proptest in `tests/fleet.rs` pins this.

use crate::server::EdgeServer;
use lpvs_core::budget::SlotBudget;
use lpvs_core::fleet::DeviceFleet;
use lpvs_core::scheduler::{Degradation, LpvsScheduler, Schedule, ScheduleStats, SchedulerConfig};
use lpvs_core::Phase2Stats;
use lpvs_survey::curve::AnxietyCurve;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How the fleet is split across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Partitioner {
    /// Contiguous index ranges — devices are already grouped by base
    /// station, and each shard is an O(1) zero-copy fleet view.
    #[default]
    Locality,
    /// Deterministic multiplicative-hash scatter — provider-side load
    /// balancing with no locality assumption. Within a shard, devices
    /// keep their fleet order.
    Hash,
}

/// Fleet-scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of edge shards (≥ 1).
    pub num_shards: usize,
    /// Device-to-shard assignment strategy.
    pub partitioner: Partitioner,
    /// Per-shard scheduler configuration (solver path, Phase-2).
    pub scheduler: SchedulerConfig,
    /// Upper bound on cross-shard migrations per slot. Bounding the
    /// pass keeps the rebalance O(`max_migrations` · shards) after the
    /// candidate scan and caps how much churn a single slot can inject.
    pub max_migrations: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_shards: 1,
            partitioner: Partitioner::Locality,
            scheduler: SchedulerConfig::default(),
            max_migrations: 64,
        }
    }
}

/// One shard's slice of a fleet schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Global fleet indices assigned to this shard, in shard-problem
    /// order.
    pub devices: Vec<usize>,
    /// The shard scheduler's run statistics (rung reached, objective,
    /// Phase-1/2 work).
    pub stats: ScheduleStats,
    /// Global indices of devices migrated *into* this shard by the
    /// rebalancing pass (their load counts against this shard's server,
    /// not their home shard's).
    pub migrated_in: Vec<usize>,
}

/// A fleet-wide scheduling decision for one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSchedule {
    /// Transform decision per fleet device (global fleet order).
    pub selected: Vec<bool>,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Cross-shard migrations accepted by the rebalancing pass.
    pub migrations: usize,
    /// Fleet-wide objective (eq. 13) of the final selection.
    pub objective: f64,
    /// Fleet-wide energy saved by the final selection (J).
    pub energy_saved_j: f64,
    /// Wall-clock time for the whole fleet slot (partition + parallel
    /// solve + rebalance).
    pub runtime: Duration,
}

impl FleetSchedule {
    /// Number of devices selected fleet-wide.
    pub fn num_selected(&self) -> usize {
        self.selected.iter().filter(|&&x| x).count()
    }
}

/// Schedules a [`DeviceFleet`] across multiple edge shards.
#[derive(Debug, Clone, Default)]
pub struct FleetScheduler {
    config: FleetConfig,
}

impl FleetScheduler {
    /// Creates a fleet scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero shards.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.num_shards >= 1, "a fleet needs at least one shard");
        Self { config }
    }

    /// Locality-partitioned scheduler with `num_shards` shards and the
    /// paper-default per-shard pipeline.
    pub fn with_shards(num_shards: usize) -> Self {
        Self::new(FleetConfig { num_shards, ..FleetConfig::default() })
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Assigns the *connected* devices of an `n`-device fleet to
    /// shards. Returns one global-index list per shard; within every
    /// shard, indices are in ascending fleet order.
    pub fn partition(&self, fleet: &DeviceFleet) -> Vec<Vec<usize>> {
        let k = self.config.num_shards;
        let connected: Vec<usize> = (0..fleet.len()).filter(|&i| fleet.connected(i)).collect();
        let mut shards = vec![Vec::new(); k];
        match self.config.partitioner {
            Partitioner::Locality => {
                // Balanced contiguous ranges: the first `n % k` shards
                // take one extra device.
                let n = connected.len();
                let base = n / k;
                let extra = n % k;
                let mut start = 0;
                for (s, shard) in shards.iter_mut().enumerate() {
                    let size = base + usize::from(s < extra);
                    shard.extend_from_slice(&connected[start..start + size]);
                    start += size;
                }
            }
            Partitioner::Hash => {
                // Fibonacci hashing: deterministic, well-scattered, and
                // independent of the shard count's divisors.
                for &i in &connected {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
                    shards[(h % k as u64) as usize].push(i);
                }
            }
        }
        shards
    }

    /// Splits one server's spare capacity evenly across `k` shard
    /// servers (total capacity is conserved up to float division).
    pub fn split_server(server: &EdgeServer, k: usize) -> Vec<EdgeServer> {
        assert!(k >= 1, "cannot split across zero shards");
        let f = k as f64;
        vec![
            EdgeServer::new(
                server.compute_capacity() / f,
                server.storage_capacity_gb() / f,
            );
            k
        ]
    }

    /// Schedules the fleet against one aggregate server whose capacity
    /// is split evenly across the configured shards.
    pub fn schedule(
        &self,
        fleet: &DeviceFleet,
        server: &EdgeServer,
        lambda: f64,
        curve: &AnxietyCurve,
        previous: Option<&[bool]>,
        budget: &SlotBudget,
    ) -> FleetSchedule {
        let servers = Self::split_server(server, self.config.num_shards);
        self.schedule_with_servers(fleet, &servers, lambda, curve, previous, budget)
    }

    /// Schedules the fleet against explicit per-shard servers.
    ///
    /// Each shard runs the full resilient pipeline on its own scoped
    /// thread; the per-slot `budget` applies to every shard
    /// independently (shards run concurrently, so the slot deadline is
    /// a per-shard wall-clock bound). A `previous` selection in global
    /// fleet order warm-starts each shard with its own slice.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len()` differs from the configured shard
    /// count.
    pub fn schedule_with_servers(
        &self,
        fleet: &DeviceFleet,
        servers: &[EdgeServer],
        lambda: f64,
        curve: &AnxietyCurve,
        previous: Option<&[bool]>,
        budget: &SlotBudget,
    ) -> FleetSchedule {
        assert_eq!(
            servers.len(),
            self.config.num_shards,
            "one server per configured shard required"
        );
        let start = Instant::now();
        let mut fleet_span =
            lpvs_obs::span!("fleet.slot", "devices" => fleet.len(), "shards" => servers.len());
        // Captured before the scoped threads spawn: implicit parentage
        // never crosses threads, so each shard span is handed the slot
        // context explicitly and joins this trace instead of orphaning.
        let slot_ctx = fleet_span.context();

        let shards = self.partition(fleet);
        // A warm start only applies when the population is unchanged.
        let previous = previous.filter(|p| p.len() == fleet.len());
        let problems: Vec<_> = shards
            .iter()
            .zip(servers)
            .map(|(indices, server)| {
                fleet.subproblem(
                    indices,
                    server.compute_capacity(),
                    server.storage_capacity_gb(),
                    lambda,
                    curve,
                )
            })
            .collect();
        let warm: Vec<Option<Vec<bool>>> = shards
            .iter()
            .map(|indices| previous.map(|p| indices.iter().map(|&i| p[i]).collect()))
            .collect();

        // One scoped thread per shard; join handles in shard order make
        // the gather deterministic without any shared mutable state.
        let scheduler = LpvsScheduler::new(self.config.scheduler);
        let results: Vec<Option<Schedule>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = problems
                .iter()
                .zip(&warm)
                .enumerate()
                .map(|(s, (problem, warm))| {
                    let scheduler = &scheduler;
                    scope.spawn(move |_| {
                        let _span = lpvs_obs::span_in!(
                            slot_ctx, "fleet.shard", "shard" => s, "devices" => problem.len()
                        );
                        scheduler.schedule_resilient(problem, warm.as_deref(), budget)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().ok()).collect()
        })
        .unwrap_or_default();

        let schedule = self.assemble(fleet, servers, &shards, results, lambda, curve, start);
        fleet_span.record("migrations", schedule.migrations as f64);
        schedule
    }

    /// The per-shard schedule a dead or faulted shard degrades to:
    /// passthrough (nobody transformed, every device rejected).
    pub fn passthrough_schedule(devices: usize) -> Schedule {
        Schedule {
            selected: vec![false; devices],
            stats: ScheduleStats {
                objective: 0.0,
                energy_saved_j: 0.0,
                infeasible_devices: 0,
                phase1_nodes: 0,
                phase1_pivots: 0,
                phase2: Phase2Stats::default(),
                degradation: Degradation::Passthrough,
                rejected_devices: devices,
                runtime: Duration::ZERO,
            },
        }
    }

    /// Joins per-shard schedules into a fleet-wide decision: scatter
    /// into global order, run the bounded cross-shard rebalance, and
    /// total the objective. A `None` result (a shard whose solver died)
    /// degrades to [`passthrough_schedule`](Self::passthrough_schedule).
    ///
    /// This is the second half of
    /// [`schedule_with_servers`](Self::schedule_with_servers), exposed
    /// so runtimes that keep their own persistent shard workers (the
    /// pipelined slot runtime) join results through the **same** code
    /// path and stay bit-identical to the scoped-thread scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        &self,
        fleet: &DeviceFleet,
        servers: &[EdgeServer],
        shards: &[Vec<usize>],
        results: Vec<Option<Schedule>>,
        lambda: f64,
        curve: &AnxietyCurve,
        start: Instant,
    ) -> FleetSchedule {
        let mut selected = vec![false; fleet.len()];
        let mut reports = Vec::with_capacity(shards.len());
        for (s, indices) in shards.iter().enumerate() {
            let schedule = results
                .get(s)
                .and_then(Clone::clone)
                .unwrap_or_else(|| Self::passthrough_schedule(indices.len()));
            for (&global, &x) in indices.iter().zip(&schedule.selected) {
                selected[global] = x;
            }
            reports.push(ShardReport {
                shard: s,
                devices: indices.clone(),
                stats: schedule.stats,
                migrated_in: Vec::new(),
            });
        }

        let migrations =
            self.rebalance(fleet, servers, shards, lambda, curve, &mut selected, &mut reports);

        // Fleet-wide accounting through the batched columnar kernels;
        // per-row terms and fold order match the sequential loops
        // bit-for-bit.
        let cols = fleet.columns();
        let all: Vec<usize> = (0..fleet.len()).collect();
        let mut terms = Vec::new();
        lpvs_core::device_objective_batch(
            &cols,
            &all,
            lpvs_core::Select::PerRow(&selected),
            lambda,
            curve,
            &mut terms,
        );
        let objective: f64 = terms.iter().sum();
        let mut feasible = Vec::new();
        let mut savings = Vec::new();
        lpvs_core::transform_savings_batch(&cols, &all, &mut feasible, &mut savings);
        let energy_saved_j: f64 =
            savings.iter().zip(&selected).map(|(s, &x)| if x { *s } else { 0.0 }).sum();

        if lpvs_obs::enabled() {
            lpvs_obs::add("fleet_migrations_total", migrations as u64);
            lpvs_obs::inc("fleet_slots_total");
            lpvs_obs::gauge_set("fleet_shards", servers.len() as f64);
            lpvs_obs::observe("fleet_slot_seconds", start.elapsed().as_secs_f64());
        }

        FleetSchedule {
            selected,
            shards: reports,
            migrations,
            objective,
            energy_saved_j,
            runtime: start.elapsed(),
        }
    }

    /// Bounded cross-shard rebalancing (the anxiety-repair pass of
    /// Phase-2, lifted fleet-wide). Candidates are the unselected,
    /// connected, transform-feasible devices whose transform strictly
    /// improves the λ-weighted objective (the Phase-2 pure-addition
    /// criterion), scanned in descending anxiety order; each is
    /// migrated to the foreign shard with the most free compute that
    /// admits it. Returns the number of accepted migrations.
    #[allow(clippy::too_many_arguments)]
    fn rebalance(
        &self,
        fleet: &DeviceFleet,
        servers: &[EdgeServer],
        shards: &[Vec<usize>],
        lambda: f64,
        curve: &AnxietyCurve,
        selected: &mut [bool],
        reports: &mut [ShardReport],
    ) -> usize {
        if self.config.max_migrations == 0 || servers.len() < 2 {
            return 0;
        }
        let _span = lpvs_obs::span!("fleet.rebalance", "shards" => servers.len());

        // Reconstruct per-shard usage through the servers' own
        // admission control; shard schedules are capacity-feasible, so
        // every admission must succeed.
        let mut usage: Vec<EdgeServer> = servers.to_vec();
        let mut home = vec![usize::MAX; fleet.len()];
        for (s, indices) in shards.iter().enumerate() {
            usage[s].reset_slot();
            for &i in indices {
                home[i] = s;
                if selected[i] {
                    let admitted = usage[s].try_admit(fleet.compute_cost(i), fleet.storage_cost_gb(i));
                    debug_assert!(admitted, "shard schedule exceeded its own capacity");
                }
            }
        }

        // Candidates in descending anxiety order (Phase-2's ranking),
        // index-ascending on ties for determinism. Feasibility and the
        // eq.-13 gains run through the batched kernels: one pass over
        // the prefiltered rows instead of per-candidate row calls.
        let cols = fleet.columns();
        let mut candidates: Vec<usize> = (0..fleet.len())
            .filter(|&i| !selected[i] && fleet.connected(i) && home[i] != usize::MAX)
            .collect();
        let mut feasible = Vec::new();
        lpvs_core::transform_feasible_batch(&cols, &candidates, &mut feasible);
        candidates = candidates
            .into_iter()
            .zip(feasible)
            .filter_map(|(i, f)| f.then_some(i))
            .collect();
        candidates.sort_by(|&a, &b| {
            let aa = curve.phi(fleet.battery_fraction(a));
            let ab = curve.phi(fleet.battery_fraction(b));
            ab.partial_cmp(&aa).expect("finite anxiety").then(a.cmp(&b))
        });
        let mut on = Vec::new();
        let mut off = Vec::new();
        lpvs_core::device_objective_batch(
            &cols,
            &candidates,
            lpvs_core::Select::Uniform(true),
            lambda,
            curve,
            &mut on,
        );
        lpvs_core::device_objective_batch(
            &cols,
            &candidates,
            lpvs_core::Select::Uniform(false),
            lambda,
            curve,
            &mut off,
        );

        let mut migrations = 0;
        for (k, &i) in candidates.iter().enumerate() {
            if migrations >= self.config.max_migrations {
                break;
            }
            // The Phase-2 pure-addition criterion: transforming must
            // strictly improve the device's eq.-13 contribution.
            let gain_in = on[k] - off[k];
            if gain_in >= -1e-12 {
                continue;
            }
            let (g, h) = (fleet.compute_cost(i), fleet.storage_cost_gb(i));
            // Most-free-compute foreign shard that admits the device;
            // lowest shard id on ties.
            let target = (0..usage.len())
                .filter(|&s| s != home[i] && usage[s].fits(g, h))
                .max_by(|&a, &b| {
                    usage[a]
                        .compute_free()
                        .partial_cmp(&usage[b].compute_free())
                        .expect("finite capacity")
                        .then(b.cmp(&a))
                });
            if let Some(s) = target {
                let admitted = usage[s].try_admit(g, h);
                debug_assert!(admitted, "target shard stopped fitting between check and admit");
                selected[i] = true;
                reports[s].migrated_in.push(i);
                migrations += 1;
            }
        }
        migrations
    }
}

/// Intersects a shard's device list with a fleet-wide dirty set,
/// returning *shard-local* positions (indexes into `indices`).
///
/// Both inputs must be ascending: `indices` is a shard's global rows in
/// shard order (both partitioners emit them ascending) and `dirty` is a
/// [`SlotDelta`](lpvs_core::delta::SlotDelta)'s ascending frontier. A
/// single sorted merge, O(|indices| + |dirty|), so taking a shard's
/// frontier never costs more than scanning the shard.
pub fn shard_frontier(indices: &[usize], dirty: &[usize]) -> Vec<usize> {
    debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "shard rows must ascend");
    debug_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty set must ascend");
    let mut out = Vec::new();
    let mut d = dirty.iter().peekable();
    for (local, &global) in indices.iter().enumerate() {
        while let Some(&&next) = d.peek() {
            if next < global {
                d.next();
            } else {
                break;
            }
        }
        if d.peek() == Some(&&global) {
            out.push(local);
            d.next();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_core::problem::DeviceRequest;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fleet(n: usize, seed: u64) -> DeviceFleet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = DeviceFleet::new();
        for _ in 0..n {
            f.push_request(DeviceRequest::uniform(
                rng.gen_range(0.5..2.0),
                10.0,
                30,
                rng.gen_range(0.05..0.95) * 55_440.0,
                55_440.0,
                rng.gen_range(0.1..0.5),
                1.0,
                0.1125,
            ));
        }
        f
    }

    fn capacity_used(fleet: &DeviceFleet, indices: &[usize], selected: &[bool]) -> (f64, f64) {
        indices.iter().filter(|&&i| selected[i]).fold((0.0, 0.0), |(g, h), &i| {
            (g + fleet.compute_cost(i), h + fleet.storage_cost_gb(i))
        })
    }

    #[test]
    fn locality_partition_is_balanced_and_ordered() {
        let f = fleet(10, 1);
        let s = FleetScheduler::with_shards(3);
        let parts = s.partition(&f);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
    }

    #[test]
    fn hash_partition_covers_every_connected_device_once() {
        let mut f = fleet(200, 2);
        f.set_connected(17, false);
        let s = FleetScheduler::new(FleetConfig {
            num_shards: 4,
            partitioner: Partitioner::Hash,
            ..FleetConfig::default()
        });
        let parts = s.partition(&f);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..200).filter(|&i| i != 17).collect();
        assert_eq!(all, expected);
        // The scatter actually spreads load.
        assert!(parts.iter().all(|p| !p.is_empty()));
        // Within-shard order is fleet order.
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn split_server_conserves_capacity() {
        let server = EdgeServer::new(100.0, 11.25);
        let halves = FleetScheduler::split_server(&server, 4);
        assert_eq!(halves.len(), 4);
        let total: f64 = halves.iter().map(EdgeServer::compute_capacity).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn multi_shard_schedule_respects_every_shard_capacity() {
        let f = fleet(120, 3);
        let server = EdgeServer::new(40.0, 4.5); // tight: ~1/3 of the fleet
        let s = FleetScheduler::with_shards(4);
        let out = s.schedule(
            &f,
            &server,
            1.0,
            &AnxietyCurve::paper_shape(),
            None,
            &SlotBudget::unbounded(),
        );
        assert_eq!(out.selected.len(), 120);
        assert!(out.num_selected() > 0, "a tight-but-positive budget must select someone");
        // Exact per-shard accounting: a migrated device's load belongs
        // to the shard that admitted it, not its home shard.
        let migrated: std::collections::HashSet<usize> =
            out.shards.iter().flat_map(|r| r.migrated_in.iter().copied()).collect();
        let per_shard = server.compute_capacity() / 4.0;
        for report in &out.shards {
            let home: Vec<usize> = report
                .devices
                .iter()
                .copied()
                .filter(|i| !migrated.contains(i))
                .chain(report.migrated_in.iter().copied())
                .collect();
            let (g, h) = capacity_used(&f, &home, &out.selected);
            assert!(g <= per_shard + 1e-9, "shard {} compute blown: {g}", report.shard);
            assert!(h <= server.storage_capacity_gb() / 4.0 + 1e-9);
        }
    }

    #[test]
    fn rebalancing_is_bounded_and_counted() {
        // Shard 0 saturated (low-battery devices with real savings),
        // shard 1 idle (full batteries, γ = 0 ⇒ nothing worth
        // transforming locally): migration has both supply and room.
        let mut f = DeviceFleet::new();
        for i in 0..40 {
            let (battery, gamma) = if i < 20 { (0.10, 0.35) } else { (0.85, 0.0) };
            f.push_request(DeviceRequest::uniform(
                1.5,
                10.0,
                30,
                battery * 55_440.0,
                55_440.0,
                gamma,
                1.0,
                0.1125,
            ));
        }
        let config = FleetConfig { num_shards: 2, max_migrations: 5, ..FleetConfig::default() };
        let out = FleetScheduler::new(config).schedule(
            &f,
            &EdgeServer::new(24.0, 2.7), // 12 compute per shard, 20 wanted
            2.0,
            &AnxietyCurve::paper_shape(),
            None,
            &SlotBudget::unbounded(),
        );
        assert!(out.migrations <= 5);
        assert!(out.migrations > 0, "saturated/idle split must trigger migration");
        let reported: usize = out.shards.iter().map(|r| r.migrated_in.len()).sum();
        assert_eq!(reported, out.migrations);
    }

    #[test]
    fn one_shard_never_migrates() {
        let f = fleet(50, 4);
        let out = FleetScheduler::with_shards(1).schedule(
            &f,
            &EdgeServer::new(20.0, 2.25),
            1.0,
            &AnxietyCurve::paper_shape(),
            None,
            &SlotBudget::unbounded(),
        );
        assert_eq!(out.migrations, 0);
        assert_eq!(out.shards.len(), 1);
        assert_eq!(out.shards[0].devices.len(), 50);
    }

    #[test]
    fn disconnected_devices_are_never_selected() {
        let mut f = fleet(30, 5);
        for i in [0, 7, 29] {
            f.set_connected(i, false);
        }
        let out = FleetScheduler::with_shards(2).schedule(
            &f,
            &EdgeServer::new(100.0, 11.25),
            1.0,
            &AnxietyCurve::paper_shape(),
            None,
            &SlotBudget::unbounded(),
        );
        for i in [0, 7, 29] {
            assert!(!out.selected[i], "disconnected device {i} was scheduled");
        }
        assert!(out.num_selected() > 0);
    }

    #[test]
    fn warm_start_slices_apply_per_shard() {
        let f = fleet(60, 6);
        let s = FleetScheduler::with_shards(3);
        let server = EdgeServer::new(100.0, 11.25);
        let curve = AnxietyCurve::paper_shape();
        let cold =
            s.schedule(&f, &server, 1.0, &curve, None, &SlotBudget::unbounded());
        let warm = s.schedule(
            &f,
            &server,
            1.0,
            &curve,
            Some(&cold.selected),
            &SlotBudget::unbounded(),
        );
        assert_eq!(warm.selected.len(), 60);
        // A mismatched previous selection is ignored, not fatal.
        let odd = s.schedule(
            &f,
            &server,
            1.0,
            &curve,
            Some(&[true; 3]),
            &SlotBudget::unbounded(),
        );
        assert_eq!(odd.selected.len(), 60);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = FleetScheduler::new(FleetConfig { num_shards: 0, ..FleetConfig::default() });
    }

    #[test]
    fn empty_fleet_is_trivial() {
        let out = FleetScheduler::with_shards(2).schedule(
            &DeviceFleet::new(),
            &EdgeServer::new(10.0, 1.0),
            1.0,
            &AnxietyCurve::paper_shape(),
            None,
            &SlotBudget::unbounded(),
        );
        assert!(out.selected.is_empty());
        assert_eq!(out.migrations, 0);
        assert_eq!(out.objective, 0.0);
    }

    #[test]
    fn shard_frontier_intersects_in_local_coordinates() {
        // Shard rows 2, 5, 9, 14; dirty 0, 5, 9, 20 → locals 1, 2.
        assert_eq!(shard_frontier(&[2, 5, 9, 14], &[0, 5, 9, 20]), vec![1, 2]);
        assert_eq!(shard_frontier(&[], &[1, 2]), Vec::<usize>::new());
        assert_eq!(shard_frontier(&[3, 4], &[]), Vec::<usize>::new());
        assert_eq!(shard_frontier(&[0, 1, 2], &[0, 1, 2]), vec![0, 1, 2]);
        // Dirty rows outside the shard never leak in.
        assert_eq!(shard_frontier(&[10, 20], &[11, 19]), Vec::<usize>::new());
    }

    #[test]
    fn shard_frontiers_cover_the_whole_dirty_set() {
        // Across both partitioners, every dirty row lands in exactly
        // one shard's local frontier.
        let f = fleet(97, 11);
        for partitioner in [Partitioner::Locality, Partitioner::Hash] {
            let sched = FleetScheduler::new(FleetConfig {
                num_shards: 3,
                partitioner,
                ..FleetConfig::default()
            });
            let shards = sched.partition(&f);
            let dirty: Vec<usize> = (0..97).step_by(7).collect();
            let mut seen = 0;
            for shard in &shards {
                for local in shard_frontier(shard, &dirty) {
                    assert!(dirty.contains(&shard[local]));
                    seen += 1;
                }
            }
            assert_eq!(seen, dirty.len(), "{partitioner:?} lost dirty rows");
        }
    }
}
