//! Mobile devices: what a VC member reports to the scheduler.

use crate::battery::Battery;
use lpvs_display::component::{ComponentBudget, PhoneComponent};
use lpvs_display::spec::DisplaySpec;
use lpvs_display::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Identifier of a device within its virtual cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A mobile device watching video in a virtual cluster.
///
/// At each scheduling point the device reports its display spec and
/// energy status (paper §VI-B "information gathering"); during playback
/// it drains its battery at the display rate plus the non-display floor
/// of the Fig. 1 component budget.
///
/// # Example
///
/// ```
/// use lpvs_edge::device::{Device, DeviceId};
/// use lpvs_edge::battery::Battery;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// let mut d = Device::new(
///     DeviceId(0),
///     DisplaySpec::oled_phone(Resolution::HD),
///     Battery::phone_at(0.3),
///     15,
/// );
/// let frame = FrameStats::uniform_gray(0.5);
/// d.play(&frame, 300.0, 1.0); // five untransformed minutes
/// assert!(d.battery().fraction() < 0.3);
/// assert!(!d.has_given_up());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    spec: DisplaySpec,
    battery: Battery,
    /// Battery percent at which this user abandons the video (from the
    /// survey's give-up question).
    giveup_percent: u8,
    /// Non-display power draw in watts (CPU, radio, …).
    non_display_w: f64,
    /// Accumulated watch time in seconds.
    watched_secs: f64,
    /// Set once the user abandons (battery at/below the threshold).
    given_up: bool,
    /// Whether the device is currently reachable. Disconnected devices
    /// neither report telemetry nor play; reconnecting restores them
    /// (their battery state is unchanged while away).
    connected: bool,
}

impl Device {
    /// Creates a device. The non-display draw is taken from the Fig. 1
    /// component budget for the display kind.
    pub fn new(id: DeviceId, spec: DisplaySpec, battery: Battery, giveup_percent: u8) -> Self {
        let budget = ComponentBudget::video_playback(spec.kind);
        let non_display_mw: f64 =
            budget.total_mw() - budget.milliwatts(PhoneComponent::Display);
        Self {
            id,
            spec,
            battery,
            giveup_percent,
            non_display_w: non_display_mw / 1000.0,
            watched_secs: 0.0,
            given_up: false,
            connected: true,
        }
    }

    /// Device identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Display specification.
    pub fn spec(&self) -> &DisplaySpec {
        &self.spec
    }

    /// Battery state.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Give-up threshold in battery percent.
    pub fn giveup_percent(&self) -> u8 {
        self.giveup_percent
    }

    /// Non-display power draw (W).
    pub fn non_display_watts(&self) -> f64 {
        self.non_display_w
    }

    /// Total accumulated watch time in seconds.
    pub fn watched_secs(&self) -> f64 {
        self.watched_secs
    }

    /// Whether the user has abandoned watching.
    pub fn has_given_up(&self) -> bool {
        self.given_up
    }

    /// Whether the device is currently reachable.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Drops the device off the network (mid-session disconnect fault).
    /// Idempotent; playback and telemetry stop until reconnected.
    pub fn disconnect(&mut self) {
        self.connected = false;
    }

    /// Restores connectivity after a disconnect. Idempotent.
    pub fn reconnect(&mut self) {
        self.connected = true;
    }

    /// Whether the device can keep watching: connected, battery above
    /// the give-up threshold, and not already abandoned.
    pub fn is_watching(&self) -> bool {
        self.connected && !self.given_up && !self.battery.is_empty()
    }

    /// Whole-device power rate (W) when showing `frame` with the
    /// display power scaled by `display_scale` (1.0 = untransformed;
    /// `1 − γ` when transformed).
    pub fn power_rate_watts(&self, frame: &FrameStats, display_scale: f64) -> f64 {
        self.spec.power_watts(frame) * display_scale + self.non_display_w
    }

    /// Plays `seconds` of content with the given display scale,
    /// draining the battery and advancing watch time. Marks the user
    /// as given-up once the battery falls to their threshold. Returns
    /// the seconds actually watched (shorter if the threshold or empty
    /// battery is hit mid-play).
    pub fn play(&mut self, frame: &FrameStats, seconds: f64, display_scale: f64) -> f64 {
        self.play_with(frame, seconds, display_scale, true)
    }

    /// Like [`Device::play`], but optionally charging only the display
    /// (`include_floor = false`) — the paper's implicit energy model,
    /// where the power rate `p` *is* the display rate and γ applies to
    /// all of it. Kept for paper-faithful comparisons.
    pub fn play_with(
        &mut self,
        frame: &FrameStats,
        seconds: f64,
        display_scale: f64,
        include_floor: bool,
    ) -> f64 {
        if !self.is_watching() || seconds <= 0.0 {
            return 0.0;
        }
        let watts = if include_floor {
            self.power_rate_watts(frame, display_scale)
        } else {
            self.spec.power_watts(frame) * display_scale
        };
        // Seconds until the give-up threshold is crossed.
        let threshold_j =
            self.battery.capacity_joules() * f64::from(self.giveup_percent) / 100.0;
        let headroom_j = (self.battery.remaining_joules() - threshold_j).max(0.0);
        let playable = (headroom_j / watts).min(seconds);
        self.battery.drain_joules(watts * playable);
        self.watched_secs += playable;
        if playable < seconds {
            self.given_up = true;
        }
        playable
    }

    /// Energy status snapshot in joules (the `e_{n,m}(1)` report).
    pub fn energy_status_joules(&self) -> f64 {
        self.battery.remaining_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpvs_display::spec::Resolution;

    fn device(fraction: f64, giveup: u8) -> Device {
        Device::new(
            DeviceId(1),
            DisplaySpec::oled_phone(Resolution::HD),
            Battery::phone_at(fraction),
            giveup,
        )
    }

    #[test]
    fn non_display_floor_is_realistic() {
        let d = device(1.0, 10);
        // Fig. 1 non-display components: ≈ 0.56 W.
        assert!((0.4..0.8).contains(&d.non_display_watts()));
    }

    #[test]
    fn transformed_playback_drains_less() {
        let frame = FrameStats::uniform_gray(0.6);
        let mut plain = device(0.5, 1);
        let mut saved = device(0.5, 1);
        plain.play(&frame, 600.0, 1.0);
        saved.play(&frame, 600.0, 0.65); // γ = 0.35
        assert!(saved.battery().remaining_joules() > plain.battery().remaining_joules());
    }

    #[test]
    fn gives_up_exactly_at_threshold() {
        let frame = FrameStats::uniform_gray(0.6);
        let mut d = device(0.21, 20);
        // Play far longer than the 1 % headroom allows.
        let watched = d.play(&frame, 100_000.0, 1.0);
        assert!(d.has_given_up());
        assert!(!d.is_watching());
        assert!((d.battery().fraction() - 0.20).abs() < 1e-9);
        assert!(watched > 0.0 && watched < 100_000.0);
        // Further play is refused.
        assert_eq!(d.play(&frame, 100.0, 1.0), 0.0);
    }

    #[test]
    fn watch_time_accumulates_across_slots() {
        let frame = FrameStats::uniform_gray(0.4);
        let mut d = device(0.9, 5);
        d.play(&frame, 300.0, 1.0);
        d.play(&frame, 300.0, 1.0);
        assert!((d.watched_secs() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn display_only_drain_is_slower() {
        let frame = FrameStats::uniform_gray(0.6);
        let mut full = device(0.5, 1);
        let mut display_only = device(0.5, 1);
        full.play_with(&frame, 600.0, 1.0, true);
        display_only.play_with(&frame, 600.0, 1.0, false);
        assert!(
            display_only.battery().remaining_joules() > full.battery().remaining_joules()
        );
    }

    #[test]
    fn zero_threshold_watches_to_empty() {
        let frame = FrameStats::uniform_gray(0.8);
        let mut d = device(0.02, 0);
        let watched = d.play(&frame, 1e9, 1.0);
        assert!(watched > 0.0);
        assert!(d.battery().is_empty());
    }

    #[test]
    fn disconnect_pauses_playback_and_reconnect_resumes() {
        let frame = FrameStats::uniform_gray(0.6);
        let mut d = device(0.8, 5);
        assert!(d.is_connected());
        d.disconnect();
        assert!(!d.is_connected());
        assert!(!d.is_watching());
        // Offline play drains nothing and advances no watch time.
        assert_eq!(d.play(&frame, 300.0, 1.0), 0.0);
        assert!((d.battery().fraction() - 0.8).abs() < 1e-12);
        d.reconnect();
        assert!(d.is_watching());
        assert!(d.play(&frame, 300.0, 1.0) > 0.0);
    }

    #[test]
    fn power_rate_includes_both_parts() {
        let d = device(1.0, 10);
        let frame = FrameStats::uniform_gray(0.6);
        let display = d.spec().power_watts(&frame);
        assert!(
            (d.power_rate_watts(&frame, 1.0) - display - d.non_display_watts()).abs() < 1e-12
        );
        // Scaling only touches the display share.
        let scaled = d.power_rate_watts(&frame, 0.5);
        assert!((scaled - 0.5 * display - d.non_display_watts()).abs() < 1e-12);
    }
}
