//! Edge servers: the `(C, S)` capacity pair of constraints (6)–(7).

use lpvs_media::cost::EdgeBudgetCalibration;
use serde::{Deserialize, Serialize};

/// An edge server with spare compute and storage for video
/// transforming.
///
/// Admission is per scheduling slot: the scheduler reserves resources
/// for each selected device, and [`EdgeServer::reset_slot`] releases
/// everything at the next scheduling point.
///
/// # Example
///
/// ```
/// use lpvs_edge::server::EdgeServer;
///
/// let mut server = EdgeServer::nokia_airframe();
/// assert!(server.try_admit(1.0, 0.1));
/// assert!(server.compute_used() > 0.0);
/// server.reset_slot();
/// assert_eq!(server.compute_used(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    compute_capacity: f64,
    storage_capacity_gb: f64,
    compute_used: f64,
    storage_used_gb: f64,
}

impl EdgeServer {
    /// Creates a server with the given spare capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is negative or non-finite.
    pub fn new(compute_capacity: f64, storage_capacity_gb: f64) -> Self {
        assert!(
            compute_capacity.is_finite() && compute_capacity >= 0.0,
            "compute capacity must be nonnegative"
        );
        assert!(
            storage_capacity_gb.is_finite() && storage_capacity_gb >= 0.0,
            "storage capacity must be nonnegative"
        );
        Self {
            compute_capacity,
            storage_capacity_gb,
            compute_used: 0.0,
            storage_used_gb: 0.0,
        }
    }

    /// The paper's Nokia AirFrame sizing (≈ 100 concurrent 720p
    /// transforms).
    pub fn nokia_airframe() -> Self {
        let cal = EdgeBudgetCalibration::nokia_airframe();
        Self::new(cal.compute_units, cal.storage_gb)
    }

    /// A server sized for `streams` concurrent 720p30 transforms.
    pub fn for_streams(streams: usize) -> Self {
        let cal = EdgeBudgetCalibration::for_streams(streams);
        Self::new(cal.compute_units, cal.storage_gb)
    }

    /// Total spare compute (units).
    pub fn compute_capacity(&self) -> f64 {
        self.compute_capacity
    }

    /// Total spare storage (GB).
    pub fn storage_capacity_gb(&self) -> f64 {
        self.storage_capacity_gb
    }

    /// Compute reserved this slot.
    pub fn compute_used(&self) -> f64 {
        self.compute_used
    }

    /// Storage reserved this slot.
    pub fn storage_used_gb(&self) -> f64 {
        self.storage_used_gb
    }

    /// Remaining compute this slot.
    pub fn compute_free(&self) -> f64 {
        self.compute_capacity - self.compute_used
    }

    /// Remaining storage this slot.
    pub fn storage_free_gb(&self) -> f64 {
        self.storage_capacity_gb - self.storage_used_gb
    }

    /// Whether a request with costs `(g, h)` fits right now.
    pub fn fits(&self, compute: f64, storage_gb: f64) -> bool {
        compute <= self.compute_free() + 1e-9 && storage_gb <= self.storage_free_gb() + 1e-9
    }

    /// Reserves `(g, h)` if it fits; returns whether it was admitted.
    pub fn try_admit(&mut self, compute: f64, storage_gb: f64) -> bool {
        if !self.fits(compute, storage_gb) {
            return false;
        }
        self.compute_used += compute;
        self.storage_used_gb += storage_gb;
        // `fits` allows 1e-9 of float slack per admission; usage must
        // never drift past capacity by more than that slack.
        debug_assert!(
            self.compute_used <= self.compute_capacity + 1e-9,
            "admission overshot compute capacity: {} > {}",
            self.compute_used,
            self.compute_capacity
        );
        debug_assert!(
            self.storage_used_gb <= self.storage_capacity_gb + 1e-9,
            "admission overshot storage capacity: {} > {}",
            self.storage_used_gb,
            self.storage_capacity_gb
        );
        true
    }

    /// Releases all reservations at a scheduling point.
    pub fn reset_slot(&mut self) {
        self.compute_used = 0.0;
        self.storage_used_gb = 0.0;
        debug_assert!(self.fits(0.0, 0.0), "a freshly reset server must admit a free request");
    }

    /// A browned-out view of this server: both capacities scaled by
    /// `factor` ∈ [0, 1]. Reservations are not carried over — the
    /// derated server starts its slot empty. Out-of-range factors are
    /// clamped; a non-finite factor (corrupt fault telemetry) is
    /// treated as a full brownout, the fail-safe direction.
    pub fn browned_out(&self, factor: f64) -> EdgeServer {
        let factor = if factor.is_finite() { factor.clamp(0.0, 1.0) } else { 0.0 };
        lpvs_obs::gauge_set("edge_brownout_factor", factor);
        EdgeServer::new(self.compute_capacity * factor, self.storage_capacity_gb * factor)
    }

    /// Compute utilization in `[0, 1]` (0 when capacity is zero).
    pub fn compute_utilization(&self) -> f64 {
        if self.compute_capacity <= 0.0 {
            0.0
        } else {
            self.compute_used / self.compute_capacity
        }
    }

    /// Publishes this server's current capacity and utilization as
    /// telemetry gauges (no-op when recording is disabled). Callers
    /// decide the cadence — the emulator publishes once per slot,
    /// after admission settles.
    pub fn publish_gauges(&self) {
        if lpvs_obs::enabled() {
            lpvs_obs::gauge_set("edge_compute_capacity", self.compute_capacity);
            lpvs_obs::gauge_set("edge_storage_capacity_gb", self.storage_capacity_gb);
            lpvs_obs::gauge_set("edge_compute_utilization", self.compute_utilization());
        }
    }
}

impl Default for EdgeServer {
    fn default() -> Self {
        Self::nokia_airframe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airframe_admits_one_hundred_hd_streams() {
        let mut s = EdgeServer::nokia_airframe();
        let mut admitted = 0;
        while s.try_admit(1.0, 0.1125) {
            admitted += 1;
        }
        assert_eq!(admitted, 100);
    }

    #[test]
    fn rejection_preserves_state() {
        let mut s = EdgeServer::new(1.0, 1.0);
        assert!(s.try_admit(0.8, 0.5));
        let before = s;
        assert!(!s.try_admit(0.5, 0.1)); // compute would overflow
        assert_eq!(s, before);
        assert!(!s.try_admit(0.1, 0.6)); // storage would overflow
        assert_eq!(s, before);
    }

    #[test]
    fn reset_releases_everything() {
        let mut s = EdgeServer::new(2.0, 2.0);
        s.try_admit(1.5, 1.0);
        assert!(s.compute_utilization() > 0.7);
        s.reset_slot();
        assert_eq!(s.compute_used(), 0.0);
        assert_eq!(s.storage_used_gb(), 0.0);
        assert_eq!(s.compute_utilization(), 0.0);
    }

    #[test]
    fn zero_capacity_admits_only_free_requests() {
        let mut s = EdgeServer::new(0.0, 0.0);
        assert!(s.try_admit(0.0, 0.0));
        assert!(!s.try_admit(0.1, 0.0));
        assert_eq!(s.compute_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "compute capacity")]
    fn negative_capacity_rejected() {
        let _ = EdgeServer::new(-1.0, 0.0);
    }

    #[test]
    fn brownout_derates_both_capacities() {
        let s = EdgeServer::new(10.0, 2.0);
        let b = s.browned_out(0.3);
        assert!((b.compute_capacity() - 3.0).abs() < 1e-12);
        assert!((b.storage_capacity_gb() - 0.6).abs() < 1e-12);
        assert_eq!(b.compute_used(), 0.0);
    }

    #[test]
    fn brownout_then_admit_respects_the_derated_capacity() {
        // Regression: a browned-out server must enforce its *derated*
        // budget from a clean slate — reservations on the original
        // server neither carry over nor inflate the derated capacity.
        let mut s = EdgeServer::new(10.0, 2.0);
        assert!(s.try_admit(9.0, 1.5));
        let mut b = s.browned_out(0.3); // 3.0 compute, 0.6 GB
        assert_eq!(b.compute_used(), 0.0);
        assert!(b.try_admit(2.0, 0.4));
        assert!(!b.try_admit(2.0, 0.1), "derated compute budget must bind");
        assert!(!b.try_admit(0.5, 0.3), "derated storage budget must bind");
        assert!(b.try_admit(1.0, 0.2)); // exactly exhausts both
        b.reset_slot();
        assert!(b.try_admit(3.0, 0.6), "reset must release the full derated budget");
    }

    #[test]
    fn brownout_clamps_and_fails_safe_on_garbage() {
        let s = EdgeServer::new(10.0, 2.0);
        assert_eq!(s.browned_out(1.7).compute_capacity(), 10.0);
        assert_eq!(s.browned_out(-0.5).compute_capacity(), 0.0);
        assert_eq!(s.browned_out(f64::NAN).compute_capacity(), 0.0);
        assert_eq!(s.browned_out(f64::INFINITY).compute_capacity(), 0.0);
    }
}
