//! One survey response.
//!
//! The questionnaire (the paper's ref. \[27\]) collects demographics and,
//! crucially for LPVS, two battery-level questions:
//!
//! 1. *At what battery level will you charge your phone, when
//!    possible?* — drives the anxiety-curve extraction (§III-B);
//! 2. *At what battery level will you give up watching a video you are
//!    interested in?* — drives the time-per-viewer analysis (§VII-C).

use serde::{Deserialize, Serialize};

/// Participant gender as collected by the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Male respondent.
    Male,
    /// Female respondent.
    Female,
}

/// Participant age band (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AgeBand {
    /// Under 18.
    Under18,
    /// 18–25.
    From18To25,
    /// 25–35.
    From25To35,
    /// 35–45.
    From35To45,
    /// 45–65.
    From45To65,
}

/// Participant occupation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Occupation {
    /// Student.
    Student,
    /// Government or institution employee.
    GovInst,
    /// Company employee.
    Company,
    /// Freelancer.
    Freelance,
    /// Other occupations.
    Other,
}

/// Smartphone brand (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Brand {
    /// Apple iPhone.
    IPhone,
    /// Huawei.
    Huawei,
    /// Xiaomi.
    Xiaomi,
    /// All other brands.
    Other,
}

/// One cleaned survey response.
///
/// # Example
///
/// ```
/// use lpvs_survey::participant::*;
///
/// let p = Participant {
///     gender: Gender::Female,
///     age: AgeBand::From18To25,
///     occupation: Occupation::Student,
///     brand: Brand::IPhone,
///     suffers_lba: true,
///     charge_level: 25,
///     giveup_level: 12,
/// };
/// assert!(p.is_valid());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Participant {
    /// Gender.
    pub gender: Gender,
    /// Age band.
    pub age: AgeBand,
    /// Occupation.
    pub occupation: Occupation,
    /// Smartphone brand.
    pub brand: Brand,
    /// Whether the respondent reports any degree of low-battery anxiety.
    pub suffers_lba: bool,
    /// Battery percentage (1–100) at which they charge when possible.
    pub charge_level: u8,
    /// Battery percentage (1–100) at which they give up watching a
    /// video they are interested in.
    pub giveup_level: u8,
}

impl Participant {
    /// Validity check applied during data cleansing: both battery
    /// levels must be in 1–100, and giving up should not happen above
    /// the charging threshold plus sanity margin (respondents who give
    /// up earlier than they would charge are inconsistent and were
    /// dropped by the paper's cleansing pass).
    pub fn is_valid(&self) -> bool {
        (1..=100).contains(&self.charge_level)
            && (1..=100).contains(&self.giveup_level)
            && self.giveup_level <= self.charge_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Participant {
        Participant {
            gender: Gender::Male,
            age: AgeBand::From25To35,
            occupation: Occupation::Company,
            brand: Brand::Huawei,
            suffers_lba: true,
            charge_level: 30,
            giveup_level: 10,
        }
    }

    #[test]
    fn valid_participant_passes() {
        assert!(base().is_valid());
    }

    #[test]
    fn zero_levels_fail_cleansing() {
        assert!(!Participant { charge_level: 0, ..base() }.is_valid());
        assert!(!Participant { giveup_level: 0, ..base() }.is_valid());
    }

    #[test]
    fn inconsistent_ordering_fails_cleansing() {
        // Gives up at 50 % but would only charge at 30 %: inconsistent.
        assert!(!Participant { charge_level: 30, giveup_level: 50, ..base() }.is_valid());
    }

    #[test]
    fn boundary_levels_pass() {
        assert!(Participant { charge_level: 100, giveup_level: 1, ..base() }.is_valid());
        assert!(Participant { charge_level: 1, giveup_level: 1, ..base() }.is_valid());
    }
}
