//! Whole-survey statistics: the §III-A headline numbers and Table II.

use crate::participant::{AgeBand, Brand, Gender, Occupation, Participant};
use serde::{Deserialize, Serialize};

/// Aggregated statistics of a survey cohort.
///
/// # Example
///
/// ```
/// use lpvs_survey::generator::SurveyGenerator;
/// use lpvs_survey::summary::SurveySummary;
///
/// let cohort = SurveyGenerator::paper_cohort(2).generate();
/// let summary = SurveySummary::from_cohort(&cohort);
/// assert!(summary.lba_prevalence > 0.88);
/// assert!(summary.giveup_at_or_above(10) > 0.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySummary {
    /// Number of (cleaned) responses.
    pub respondents: usize,
    /// Fraction reporting any low-battery anxiety.
    pub lba_prevalence: f64,
    /// Mean battery level at which users charge.
    pub mean_charge_level: f64,
    /// Mean battery level at which users abandon a video.
    pub mean_giveup_level: f64,
    /// Histogram of give-up levels (index 0 = level 1 %).
    giveup_hist: Vec<usize>,
    /// Histogram of charge levels (index 0 = level 1 %).
    charge_hist: Vec<usize>,
    /// Demographic counts for Table II.
    gender: Vec<(Gender, usize)>,
    age: Vec<(AgeBand, usize)>,
    occupation: Vec<(Occupation, usize)>,
    brand: Vec<(Brand, usize)>,
}

impl SurveySummary {
    /// Computes all statistics of a cohort.
    ///
    /// # Panics
    ///
    /// Panics if the cohort is empty.
    pub fn from_cohort(cohort: &[Participant]) -> Self {
        assert!(!cohort.is_empty(), "cannot summarize an empty cohort");
        let n = cohort.len() as f64;
        let mut giveup_hist = vec![0usize; 100];
        let mut charge_hist = vec![0usize; 100];
        for p in cohort {
            giveup_hist[(p.giveup_level.clamp(1, 100) - 1) as usize] += 1;
            charge_hist[(p.charge_level.clamp(1, 100) - 1) as usize] += 1;
        }
        let count_by = |f: &dyn Fn(&Participant) -> bool| cohort.iter().filter(|p| f(p)).count();
        Self {
            respondents: cohort.len(),
            lba_prevalence: count_by(&|p| p.suffers_lba) as f64 / n,
            mean_charge_level: cohort.iter().map(|p| p.charge_level as f64).sum::<f64>() / n,
            mean_giveup_level: cohort.iter().map(|p| p.giveup_level as f64).sum::<f64>() / n,
            giveup_hist,
            charge_hist,
            gender: [Gender::Male, Gender::Female]
                .into_iter()
                .map(|g| (g, count_by(&|p| p.gender == g)))
                .collect(),
            age: [
                AgeBand::Under18,
                AgeBand::From18To25,
                AgeBand::From25To35,
                AgeBand::From35To45,
                AgeBand::From45To65,
            ]
            .into_iter()
            .map(|a| (a, count_by(&|p| p.age == a)))
            .collect(),
            occupation: [
                Occupation::Student,
                Occupation::GovInst,
                Occupation::Company,
                Occupation::Freelance,
                Occupation::Other,
            ]
            .into_iter()
            .map(|o| (o, count_by(&|p| p.occupation == o)))
            .collect(),
            brand: [Brand::IPhone, Brand::Huawei, Brand::Xiaomi, Brand::Other]
                .into_iter()
                .map(|b| (b, count_by(&|p| p.brand == b)))
                .collect(),
        }
    }

    /// Fraction of users whose give-up level is at or above `level` —
    /// i.e. the audience already lost once the battery reaches `level`.
    pub fn giveup_at_or_above(&self, level: u8) -> f64 {
        let level = level.clamp(1, 100) as usize;
        let lost: usize = self.giveup_hist[level - 1..].iter().sum();
        lost as f64 / self.respondents as f64
    }

    /// Fraction of users who charge at or above `level`.
    pub fn charge_at_or_above(&self, level: u8) -> f64 {
        let level = level.clamp(1, 100) as usize;
        let n: usize = self.charge_hist[level - 1..].iter().sum();
        n as f64 / self.respondents as f64
    }

    /// Table II rows as `(subject, count, percent)` in the paper's
    /// print order.
    pub fn table2_rows(&self) -> Vec<(String, usize, f64)> {
        let n = self.respondents as f64;
        let mut rows = Vec::new();
        let mut push = |label: String, count: usize| {
            rows.push((label, count, 100.0 * count as f64 / n));
        };
        for (g, c) in &self.gender {
            push(format!("{g:?}"), *c);
        }
        for (a, c) in &self.age {
            push(format!("{a:?}"), *c);
        }
        for (o, c) in &self.occupation {
            push(format!("{o:?}"), *c);
        }
        for (b, c) in &self.brand {
            push(format!("{b:?}"), *c);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SurveyGenerator;

    fn summary() -> SurveySummary {
        SurveySummary::from_cohort(&SurveyGenerator::paper_cohort(17).generate())
    }

    #[test]
    fn headline_numbers_are_near_paper() {
        let s = summary();
        assert_eq!(s.respondents, 2032);
        assert!((s.lba_prevalence - 0.9188).abs() < 0.02);
        // "Nearly half … give up below 10 %": lost audience at 10 %
        // battery ≈ 50 %.
        let lost_at_10 = s.giveup_at_or_above(10);
        assert!((0.40..=0.60).contains(&lost_at_10), "{lost_at_10}");
    }

    #[test]
    fn survival_fractions_are_monotone() {
        let s = summary();
        let mut prev = 1.0;
        for level in [1u8, 10, 20, 40, 80] {
            let f = s.giveup_at_or_above(level);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn table2_counts_sum_per_category() {
        let s = summary();
        let rows = s.table2_rows();
        // 2 gender + 5 age + 5 occupation + 4 brand rows.
        assert_eq!(rows.len(), 16);
        let gender_total: usize = rows[..2].iter().map(|r| r.1).sum();
        assert_eq!(gender_total, 2032);
        let brand_total: usize = rows[12..].iter().map(|r| r.1).sum();
        assert_eq!(brand_total, 2032);
    }

    #[test]
    fn demographics_track_published_marginals() {
        let s = summary();
        let student = s
            .occupation
            .iter()
            .find(|(o, _)| *o == Occupation::Student)
            .map(|(_, c)| *c)
            .unwrap();
        let share = student as f64 / 2032.0;
        assert!((share - 0.5039).abs() < 0.05, "student share {share}");
    }

    #[test]
    fn charge_levels_all_anxious_at_one_percent() {
        let s = summary();
        assert!((s.charge_at_or_above(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty cohort")]
    fn empty_cohort_rejected() {
        let _ = SurveySummary::from_cohort(&[]);
    }
}
