//! Statistical analysis of survey cohorts.
//!
//! The paper reads its anxiety curve off a single cohort. This module
//! adds the uncertainty quantification a careful reader wants:
//! bootstrap confidence bands for the extracted curve, and correlation
//! between the charging and abandonment thresholds (the two questions
//! LPVS consumes).

use crate::curve::{AnxietyCurve, LEVELS};
use crate::extraction::extract_curve;
use crate::participant::Participant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pointwise confidence band around the extracted anxiety curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveBand {
    /// Lower band (per battery level).
    pub lower: AnxietyCurve,
    /// Curve extracted from the full cohort.
    pub center: AnxietyCurve,
    /// Upper band (per battery level).
    pub upper: AnxietyCurve,
    /// Bootstrap resamples used.
    pub resamples: usize,
}

impl CurveBand {
    /// Maximum band half-width across battery levels — a scalar
    /// summary of extraction uncertainty.
    pub fn max_half_width(&self) -> f64 {
        (0..LEVELS)
            .map(|i| {
                let level = (i + 1) as u8;
                (self.upper.level(level) - self.lower.level(level)) / 2.0
            })
            .fold(0.0, f64::max)
    }
}

/// Bootstrap confidence band for the anxiety curve: resamples the
/// cohort with replacement, extracts a curve per resample, and takes
/// pointwise `[α/2, 1 − α/2]` quantiles.
///
/// # Panics
///
/// Panics if the cohort is empty, `resamples == 0`, or `alpha` is not
/// in `(0, 1)`.
///
/// # Example
///
/// ```
/// use lpvs_survey::analysis::bootstrap_curve_band;
/// use lpvs_survey::generator::SurveyGenerator;
///
/// let cohort = SurveyGenerator::paper_cohort(3).generate();
/// let band = bootstrap_curve_band(&cohort, 50, 0.05, 7);
/// // 2,032 respondents pin the curve within a few percent.
/// assert!(band.max_half_width() < 0.05);
/// ```
pub fn bootstrap_curve_band(
    cohort: &[Participant],
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> CurveBand {
    assert!(!cohort.is_empty(), "cannot bootstrap an empty cohort");
    assert!(resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");

    let center = extract_curve(cohort.iter().map(|p| p.charge_level));
    let mut rng = StdRng::seed_from_u64(seed);
    // samples[level][resample]
    let mut samples: Vec<Vec<f64>> =
        (0..LEVELS).map(|_| Vec::with_capacity(resamples)).collect();
    for _ in 0..resamples {
        let draw =
            (0..cohort.len()).map(|_| cohort[rng.gen_range(0..cohort.len())].charge_level);
        let curve = extract_curve(draw);
        for (level_samples, &v) in samples.iter_mut().zip(curve.values()) {
            level_samples.push(v);
        }
    }

    let mut lower = [0.0; LEVELS];
    let mut upper = [0.0; LEVELS];
    for (i, level_samples) in samples.iter_mut().enumerate() {
        level_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite anxiety"));
        lower[i] = quantile(level_samples, alpha / 2.0);
        upper[i] = quantile(level_samples, 1.0 - alpha / 2.0);
    }
    CurveBand {
        lower: AnxietyCurve::from_levels(lower),
        center,
        upper: AnxietyCurve::from_levels(upper),
        resamples,
    }
}

/// Empirical quantile of a sorted slice (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pearson correlation between two per-participant extractors.
///
/// Returns `None` when either variable is constant (undefined
/// correlation).
pub fn pearson<FA, FB>(cohort: &[Participant], a: FA, b: FB) -> Option<f64>
where
    FA: Fn(&Participant) -> f64,
    FB: Fn(&Participant) -> f64,
{
    if cohort.len() < 2 {
        return None;
    }
    let n = cohort.len() as f64;
    let xs: Vec<f64> = cohort.iter().map(&a).collect();
    let ys: Vec<f64> = cohort.iter().map(&b).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// Correlation between charging threshold and video-abandonment
/// threshold — positive in any behaviourally consistent cohort (both
/// measure battery sensitivity).
pub fn charge_giveup_correlation(cohort: &[Participant]) -> Option<f64> {
    pearson(cohort, |p| f64::from(p.charge_level), |p| f64::from(p.giveup_level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SurveyGenerator;

    fn cohort() -> Vec<Participant> {
        SurveyGenerator::paper_cohort(9).generate()
    }

    #[test]
    fn band_contains_center() {
        let c = cohort();
        let band = bootstrap_curve_band(&c, 40, 0.05, 3);
        for level in (1..=100u8).step_by(7) {
            assert!(band.lower.level(level) <= band.center.level(level) + 1e-9);
            assert!(band.center.level(level) <= band.upper.level(level) + 1e-9);
        }
    }

    #[test]
    fn band_tightens_with_cohort_size() {
        let small = SurveyGenerator::new(100, 1).generate();
        let large = SurveyGenerator::new(4000, 1).generate();
        let band_small = bootstrap_curve_band(&small, 60, 0.05, 2);
        let band_large = bootstrap_curve_band(&large, 60, 0.05, 2);
        assert!(
            band_large.max_half_width() < band_small.max_half_width(),
            "{} vs {}",
            band_large.max_half_width(),
            band_small.max_half_width()
        );
    }

    #[test]
    fn paper_cohort_band_is_tight() {
        let band = bootstrap_curve_band(&cohort(), 60, 0.05, 4);
        // 2,032 respondents: the 95 % band is a few percent wide, which
        // is why a single extraction suffices for scheduling.
        assert!(band.max_half_width() < 0.05, "{}", band.max_half_width());
    }

    #[test]
    fn charge_and_giveup_correlate_positively() {
        let r = charge_giveup_correlation(&cohort()).unwrap();
        assert!(r > 0.2, "correlation {r}");
        assert!(r < 1.0);
    }

    #[test]
    fn pearson_of_identical_variables_is_one() {
        let c = cohort();
        let r = pearson(&c, |p| f64::from(p.charge_level), |p| {
            f64::from(p.charge_level)
        })
        .unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_for_constants() {
        let c = cohort();
        assert!(pearson(&c, |_| 1.0, |p| f64::from(p.charge_level)).is_none());
        assert!(pearson(&c[..1], |p| f64::from(p.charge_level), |p| {
            f64::from(p.giveup_level)
        })
        .is_none());
    }

    #[test]
    #[should_panic(expected = "empty cohort")]
    fn empty_cohort_rejected() {
        let _ = bootstrap_curve_band(&[], 10, 0.05, 1);
    }
}
