//! Table II marginal distributions.
//!
//! The appendix of the paper reports the cohort's composition. The
//! generator samples from these marginals so a synthetic cohort's
//! Table II matches the published one up to sampling noise, and the
//! summary module recounts them for the Table II regenerator.

use crate::participant::{AgeBand, Brand, Gender, Occupation};
use rand::Rng;

/// Published gender frequencies: 1,095 male / 937 female of 2,032.
pub const GENDER_WEIGHTS: [(Gender, f64); 2] =
    [(Gender::Male, 1095.0), (Gender::Female, 937.0)];

/// Published age-band frequencies.
pub const AGE_WEIGHTS: [(AgeBand, f64); 5] = [
    (AgeBand::Under18, 9.0),
    (AgeBand::From18To25, 888.0),
    (AgeBand::From25To35, 460.0),
    (AgeBand::From35To45, 250.0),
    (AgeBand::From45To65, 119.0),
];

/// Published occupation frequencies.
pub const OCCUPATION_WEIGHTS: [(Occupation, f64); 5] = [
    (Occupation::Student, 1024.0),
    (Occupation::GovInst, 271.0),
    (Occupation::Company, 434.0),
    (Occupation::Freelance, 144.0),
    (Occupation::Other, 159.0),
];

/// Published smartphone brand frequencies.
pub const BRAND_WEIGHTS: [(Brand, f64); 4] = [
    (Brand::IPhone, 737.0),
    (Brand::Huawei, 682.0),
    (Brand::Xiaomi, 228.0),
    (Brand::Other, 385.0),
];

/// Samples one item from a weighted table.
///
/// # Panics
///
/// Panics if all weights are zero or negative.
pub fn sample_weighted<T: Copy, R: Rng + ?Sized>(table: &[(T, f64)], rng: &mut R) -> T {
    let total: f64 = table.iter().map(|(_, w)| w.max(0.0)).sum();
    assert!(total > 0.0, "weighted table has no positive mass");
    let mut ticket = rng.gen_range(0.0..total);
    for &(item, w) in table {
        let w = w.max(0.0);
        if ticket < w {
            return item;
        }
        ticket -= w;
    }
    table.last().expect("non-empty table").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn published_totals_sum_to_cohort() {
        let g: f64 = GENDER_WEIGHTS.iter().map(|(_, w)| w).sum();
        let a: f64 = AGE_WEIGHTS.iter().map(|(_, w)| w).sum();
        let o: f64 = OCCUPATION_WEIGHTS.iter().map(|(_, w)| w).sum();
        let b: f64 = BRAND_WEIGHTS.iter().map(|(_, w)| w).sum();
        // Age bands in the published table sum to 1,726 (several
        // respondents declined); the others cover the full 2,032.
        assert_eq!(g, 2032.0);
        assert_eq!(o, 2032.0);
        assert_eq!(b, 2032.0);
        assert!(a > 1700.0 && a <= 2032.0);
    }

    #[test]
    fn weighted_sampling_tracks_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 40_000;
        let students = (0..n)
            .filter(|_| {
                sample_weighted(&OCCUPATION_WEIGHTS, &mut rng) == Occupation::Student
            })
            .count();
        let expected = 1024.0 / 2032.0;
        let got = students as f64 / n as f64;
        assert!((got - expected).abs() < 0.01, "student share {got} vs {expected}");
    }

    #[test]
    fn degenerate_weights_pick_the_only_positive_item() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = sample_weighted(&[(1u8, 0.0), (2u8, 5.0)], &mut rng);
            assert_eq!(x, 2);
        }
    }

    #[test]
    #[should_panic(expected = "no positive mass")]
    fn all_zero_weights_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = sample_weighted(&[(1u8, 0.0)], &mut rng);
    }
}
