//! The anxiety curve φ(·) — the paper's Fig. 2.
//!
//! [`AnxietyCurve`] maps a battery level to an anxiety degree in
//! `[0, 1]`. It is the empirical function the joint objective (paper
//! eq. 8a) evaluates, so it sits on the hot path of the scheduler;
//! evaluation is a constant-time table lookup with linear
//! interpolation.

use serde::{Deserialize, Serialize};

/// Number of battery-level bins (1 %–100 %).
pub const LEVELS: usize = 100;

/// Anxiety degree as a function of battery level.
///
/// `values[i]` is the anxiety at battery level `i + 1` percent. The
/// curve is conventionally monotone non-increasing in battery level
/// (more battery, less anxiety); [`AnxietyCurve::is_monotone`] checks
/// it and the extraction procedure guarantees it.
///
/// # Example
///
/// ```
/// use lpvs_survey::curve::AnxietyCurve;
///
/// let curve = AnxietyCurve::paper_shape();
/// assert!(curve.phi(0.05) > curve.phi(0.5));
/// assert!(curve.is_monotone());
/// // The icon-change spike sits at 20 %.
/// assert_eq!(curve.sharpest_rise(), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnxietyCurve {
    #[serde(with = "levels_serde")]
    values: [f64; LEVELS],
}

impl AnxietyCurve {
    /// Builds a curve from per-level anxiety values
    /// (`values[i]` = anxiety at battery level `i + 1` %).
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]` or not finite.
    pub fn from_levels(values: [f64; LEVELS]) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)),
            "anxiety values must lie in [0, 1]"
        );
        Self { values }
    }

    /// The linear reference curve (the dashed diagonal in Fig. 2):
    /// anxiety = 1 − battery fraction.
    pub fn linear() -> Self {
        let mut values = [0.0; LEVELS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = 1.0 - (i as f64 + 1.0) / LEVELS as f64;
        }
        Self { values }
    }

    /// A deterministic reference curve with the published shape:
    /// convex decay above 20 %, concave flattening below 20 %, and a
    /// sharp rise crossing 20 % (the battery-icon color change).
    ///
    /// Useful when an experiment should not depend on survey sampling
    /// noise; the survey-extracted curve has the same features.
    pub fn paper_shape() -> Self {
        let mut values = [0.0; LEVELS];
        for (i, v) in values.iter_mut().enumerate() {
            let b = (i + 1) as f64;
            *v = if b <= 20.0 {
                // Concave: flat near empty, steepening toward 20 %.
                0.62 + 0.38 * (1.0 - (b / 20.0).powi(2))
            } else {
                // Convex decay from just below the jump down to zero.
                0.45 * ((100.0 - b) / 80.0).powf(1.8)
            };
        }
        Self { values }
    }

    /// Anxiety at an integer battery level (percent). Levels outside
    /// 1–100 are clamped.
    pub fn level(&self, battery_percent: u8) -> f64 {
        let b = battery_percent.clamp(1, 100) as usize;
        self.values[b - 1]
    }

    /// φ(e): anxiety at battery fraction `e ∈ [0, 1]`, linearly
    /// interpolated between levels. Below 1 % the curve is extended
    /// flat (a dying phone cannot get less comforting).
    pub fn phi(&self, energy_fraction: f64) -> f64 {
        let e = energy_fraction.clamp(0.0, 1.0) * 100.0;
        if e <= 1.0 {
            return self.values[0];
        }
        if e >= 100.0 {
            return self.values[LEVELS - 1];
        }
        let lo = e.floor() as usize; // battery level of lower sample
        let hi = lo + 1;
        let frac = e - lo as f64;
        let a = self.values[lo - 1];
        let b = self.values[hi - 1];
        a + (b - a) * frac
    }

    /// Raw per-level values (index 0 = 1 % battery).
    pub fn values(&self) -> &[f64; LEVELS] {
        &self.values
    }

    /// True if anxiety never increases as battery level rises.
    pub fn is_monotone(&self) -> bool {
        self.values.windows(2).all(|w| w[0] >= w[1] - 1e-12)
    }

    /// Battery level `b` at which anxiety jumps the most when the
    /// battery drops from `b + 1` to `b`.
    pub fn sharpest_rise(&self) -> u8 {
        let mut best = (1u8, f64::MIN);
        for b in 1..LEVELS {
            let jump = self.values[b - 1] - self.values[b];
            if jump > best.1 {
                best = (b as u8, jump);
            }
        }
        best.0
    }

    /// Mean second difference of the curve over battery levels
    /// `[from, to]` (inclusive, as a function of battery level).
    /// Positive ⇒ convex, negative ⇒ concave on that span.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ from + 1 < to ≤ 100`.
    pub fn mean_curvature(&self, from: u8, to: u8) -> f64 {
        let (from, to) = (from as usize, to as usize);
        assert!(from >= 1 && from + 1 < to && to <= LEVELS, "invalid curvature span");
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in from + 1..to {
            sum += self.values[b] - 2.0 * self.values[b - 1] + self.values[b - 2];
            n += 1;
        }
        sum / n as f64
    }

    /// Mean anxiety over the whole battery range — a scalar used to
    /// compare populations before/after an intervention.
    pub fn mean_anxiety(&self) -> f64 {
        self.values.iter().sum::<f64>() / LEVELS as f64
    }
}

impl Default for AnxietyCurve {
    /// The deterministic paper-shaped curve.
    fn default() -> Self {
        Self::paper_shape()
    }
}

// Referenced via `#[serde(with = "levels_serde")]`; the vendored derive
// does not emit that reference, so the lint cannot see the use.
#[allow(dead_code)]
mod levels_serde {
    //! Serde shims for the fixed-size level table (serde's built-in
    //! array impls stop at 32 elements).
    use super::LEVELS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[f64; LEVELS], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(v.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[f64; LEVELS], D::Error> {
        let v = Vec::<f64>::deserialize(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| D::Error::custom(format!("expected {LEVELS} levels, got {n}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_curve_is_the_diagonal() {
        let c = AnxietyCurve::linear();
        assert!((c.phi(0.5) - 0.5).abs() < 0.02);
        assert!((c.level(100) - 0.0).abs() < 1e-12);
        assert!(c.is_monotone());
    }

    #[test]
    fn paper_shape_has_documented_features() {
        let c = AnxietyCurve::paper_shape();
        assert!(c.is_monotone());
        assert_eq!(c.sharpest_rise(), 20);
        // Convex above the jump, concave below (as functions of level).
        assert!(c.mean_curvature(25, 95) > 0.0, "not convex above 20");
        assert!(c.mean_curvature(2, 19) < 0.0, "not concave below 20");
        // Near-certain anxiety at a dying battery.
        assert!(c.level(1) > 0.95);
        assert!(c.level(100) < 0.05);
    }

    #[test]
    fn phi_interpolates_between_levels() {
        let c = AnxietyCurve::paper_shape();
        let a = c.level(40);
        let b = c.level(41);
        let mid = c.phi(0.405);
        assert!((mid - 0.5 * (a + b)).abs() < 1e-9);
    }

    #[test]
    fn phi_clamps_extremes() {
        let c = AnxietyCurve::paper_shape();
        assert_eq!(c.phi(-0.5), c.level(1));
        assert_eq!(c.phi(2.0), c.level(100));
        assert_eq!(c.phi(0.0), c.level(1));
        assert_eq!(c.phi(1.0), c.level(100));
    }

    #[test]
    fn sharpest_rise_found_on_custom_curve() {
        let mut values = [0.0; LEVELS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = if i < 49 { 0.9 } else { 0.1 };
        }
        let c = AnxietyCurve::from_levels(values);
        // values[48] = 0.9 (level 49), values[49] = 0.1 (level 50): the
        // big jump happens when the battery drops from 50 to 49.
        assert_eq!(c.sharpest_rise(), 49);
    }

    #[test]
    fn mean_anxiety_of_linear_is_half() {
        assert!((AnxietyCurve::linear().mean_anxiety() - 0.495).abs() < 0.01);
    }

    #[test]
    fn serde_round_trip() {
        let c = AnxietyCurve::paper_shape();
        let json = serde_json_like(&c);
        assert!(json.contains("values"));
    }

    /// Minimal serialization smoke test without pulling serde_json:
    /// serde's derive is exercised via the `serde::Serialize` impl
    /// compiled above; here we only assert Debug formatting works.
    fn serde_json_like(c: &AnxietyCurve) -> String {
        format!("{c:?}").replace("AnxietyCurve", "values")
    }

    #[test]
    #[should_panic(expected = "anxiety values")]
    fn out_of_range_values_rejected() {
        let mut values = [0.0; LEVELS];
        values[3] = 1.5;
        let _ = AnxietyCurve::from_levels(values);
    }

    #[test]
    #[should_panic(expected = "invalid curvature span")]
    fn bad_curvature_span_rejected() {
        let _ = AnxietyCurve::paper_shape().mean_curvature(50, 51);
    }
}
