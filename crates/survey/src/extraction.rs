//! The paper's four-step LBA-curve extraction (§III-B).
//!
//! 1. initialize 100 empty bins for battery levels 1–100;
//! 2. for each answer `a`, add one to every bin in `[1, a]`;
//! 3. repeat for all answers, yielding a declining discrete curve;
//! 4. normalize the cumulative counts to `[0, 1]`.
//!
//! The result is the anxiety degree at each battery level: the fraction
//! of users who would already be (re)charging — i.e. already anxious —
//! at that level.

use crate::curve::AnxietyCurve;

/// Extracts the anxiety curve from charge-level answers (each in
/// 1–100; out-of-range answers are clamped, mirroring data cleansing).
///
/// # Panics
///
/// Panics if `answers` is empty — an empty survey has no curve.
///
/// # Example
///
/// ```
/// use lpvs_survey::extraction::extract_curve;
///
/// // Three users who charge at 20 %, one battery-agnostic at 80 %.
/// let curve = extract_curve([20u8, 20, 20, 80]);
/// // At 10 % battery all four are anxious; at 50 % only one.
/// assert!((curve.level(10) - 1.0).abs() < 1e-12);
/// assert!((curve.level(50) - 0.25).abs() < 1e-12);
/// ```
pub fn extract_curve<I: IntoIterator<Item = u8>>(answers: I) -> AnxietyCurve {
    let mut bins = [0.0f64; 100];
    let mut count = 0usize;
    for a in answers {
        let a = a.clamp(1, 100) as usize;
        // Step 2: increment bins 1..=a (index 0..a).
        for bin in bins.iter_mut().take(a) {
            *bin += 1.0;
        }
        count += 1;
    }
    assert!(count > 0, "cannot extract a curve from an empty survey");
    // Step 4: normalize to [0, 1].
    for bin in &mut bins {
        *bin /= count as f64;
    }
    AnxietyCurve::from_levels(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SurveyGenerator;

    #[test]
    fn single_answer_is_a_step() {
        let curve = extract_curve([30u8]);
        assert_eq!(curve.level(30), 1.0);
        assert_eq!(curve.level(31), 0.0);
        assert_eq!(curve.level(1), 1.0);
    }

    #[test]
    fn curve_is_monotone_decreasing_in_battery_level() {
        let cohort = SurveyGenerator::paper_cohort(3).generate();
        let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
        for b in 1..100 {
            assert!(
                curve.level(b) >= curve.level(b + 1) - 1e-12,
                "not monotone at {b}"
            );
        }
    }

    #[test]
    fn anxiety_is_one_at_empty_battery() {
        // Every answer ≥ 1 increments bin 1.
        let curve = extract_curve([5u8, 50, 95]);
        assert_eq!(curve.level(1), 1.0);
    }

    #[test]
    fn out_of_range_answers_are_clamped() {
        let curve = extract_curve([0u8, 200]);
        // 0 clamps to 1, 200 clamps to 100.
        assert_eq!(curve.level(1), 1.0);
        assert_eq!(curve.level(100), 0.5);
    }

    #[test]
    fn paper_cohort_shows_sharp_rise_at_twenty() {
        let cohort = SurveyGenerator::paper_cohort(11).generate();
        let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
        // The jump across the icon threshold dwarfs neighbouring jumps.
        let jump_at_20 = curve.level(18) - curve.level(22);
        let jump_above = curve.level(26) - curve.level(30);
        assert!(
            jump_at_20 > 2.0 * jump_above,
            "no sharp rise: {jump_at_20} vs {jump_above}"
        );
    }

    #[test]
    #[should_panic(expected = "empty survey")]
    fn empty_survey_rejected() {
        let _ = extract_curve(std::iter::empty::<u8>());
    }
}
