//! # lpvs-survey — low-battery-anxiety survey synthesis and modelling
//!
//! The paper's §III grounds LPVS in a 2,032-participant survey from
//! which it extracts the **LBA curve**: anxiety degree as a function of
//! battery level (Fig. 2). The raw responses are not redistributable,
//! so this crate provides:
//!
//! * [`participant`] — the response record (demographics + the two
//!   battery-level questions LPVS consumes);
//! * [`demographics`] — the Table II marginal distributions and
//!   frequency tables;
//! * [`generator`] — a synthetic-cohort generator calibrated to every
//!   statistic the paper reports (91.88 % LBA prevalence, charge-level
//!   behaviour with the icon-triggered spike at 20 %, give-up levels
//!   with ≈ 20 % abandonment at 20 % battery and ≈ 50 % at 10 %);
//! * [`extraction`] — the paper's exact four-step cumulative-binning
//!   procedure turning raw answers into the curve;
//! * [`curve`] — [`AnxietyCurve`]: the φ(·) the scheduler evaluates,
//!   with interpolation, shape analysis (convex above 20 %, concave
//!   below, sharp rise at 20 %), and reference shapes;
//! * [`summary`] — whole-survey statistics backing Table II and the
//!   §III-A headline numbers;
//! * [`analysis`] — bootstrap confidence bands for the curve and
//!   correlations between the battery-behaviour questions.
//!
//! # Example
//!
//! ```
//! use lpvs_survey::generator::SurveyGenerator;
//! use lpvs_survey::extraction::extract_curve;
//!
//! let cohort = SurveyGenerator::paper_cohort(42).generate();
//! assert_eq!(cohort.len(), 2032);
//!
//! let curve = extract_curve(cohort.iter().map(|p| p.charge_level));
//! // Anxiety at 5 % battery far exceeds anxiety at 80 %.
//! assert!(curve.phi(0.05) > 4.0 * curve.phi(0.80));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod curve;
pub mod demographics;
pub mod extraction;
pub mod generator;
pub mod participant;
pub mod summary;

pub use analysis::{bootstrap_curve_band, charge_giveup_correlation, CurveBand};
pub use curve::AnxietyCurve;
pub use extraction::extract_curve;
pub use generator::SurveyGenerator;
pub use participant::{AgeBand, Brand, Gender, Occupation, Participant};
pub use summary::SurveySummary;

/// Number of participants in the paper's survey.
pub const PAPER_COHORT_SIZE: usize = 2032;

/// LBA prevalence the paper reports (1,867 of 2,032).
pub const PAPER_LBA_PREVALENCE: f64 = 1867.0 / 2032.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prevalence_constant_matches_reported_percentage() {
        assert!((PAPER_LBA_PREVALENCE - 0.9188).abs() < 1e-4);
    }
}
