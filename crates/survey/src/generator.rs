//! Synthetic survey cohort generator.
//!
//! The raw responses behind the paper's Fig. 2 are not public, so this
//! generator produces a cohort whose *marginals match every statistic
//! the paper reports*:
//!
//! * 91.88 % of respondents suffer LBA to some degree (§III-A);
//! * the charge-level distribution has a heavy spike at 20 % — the
//!   battery-icon color change — yielding the sharp anxiety rise the
//!   extracted curve shows at 20 %, with a convex decay above and a
//!   concave flattening below (Fig. 2);
//! * give-up levels reproduce the §I/§III-A abandonment behaviour:
//!   ≈ 20 % of viewers abandon at 20 % battery, rising to ≈ 50 % at
//!   10 % ("nearly half give up below 10 %").
//!
//! Because the LPVS scheduler consumes only the extracted curve and the
//! give-up thresholds, matching these marginals exercises the identical
//! downstream code path as the original data (see DESIGN.md §2).

use crate::demographics::{
    sample_weighted, AGE_WEIGHTS, BRAND_WEIGHTS, GENDER_WEIGHTS, OCCUPATION_WEIGHTS,
};
use crate::participant::Participant;
use crate::{PAPER_COHORT_SIZE, PAPER_LBA_PREVALENCE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deterministic, seeded generator of survey cohorts.
///
/// # Example
///
/// ```
/// use lpvs_survey::generator::SurveyGenerator;
///
/// let a = SurveyGenerator::paper_cohort(7).generate();
/// let b = SurveyGenerator::paper_cohort(7).generate();
/// assert_eq!(a, b); // same seed, same cohort
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyGenerator {
    size: usize,
    seed: u64,
}

impl SurveyGenerator {
    /// A generator for `size` participants with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(size > 0, "cohort size must be positive");
        Self { size, seed }
    }

    /// The paper's cohort size (2,032 participants).
    pub fn paper_cohort(seed: u64) -> Self {
        Self::new(PAPER_COHORT_SIZE, seed)
    }

    /// Cohort size this generator produces.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Generates the cohort. Deterministic in the seed.
    pub fn generate(&self) -> Vec<Participant> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.size).map(|_| sample_participant(&mut rng)).collect()
    }
}

/// Draws one participant with calibrated marginals.
fn sample_participant<R: Rng + ?Sized>(rng: &mut R) -> Participant {
    let suffers_lba = rng.gen_bool(PAPER_LBA_PREVALENCE);
    // Sample the give-up level first so its marginal matches the
    // reported abandonment anchors exactly, then pull the charging
    // threshold up to it when needed (one charges before abandoning).
    let giveup_level = sample_giveup_level(rng).max(1);
    let charge_level = sample_charge_level(rng, suffers_lba).max(giveup_level);
    Participant {
        gender: sample_weighted(&GENDER_WEIGHTS, rng),
        age: sample_weighted(&AGE_WEIGHTS, rng),
        occupation: sample_weighted(&OCCUPATION_WEIGHTS, rng),
        brand: sample_weighted(&BRAND_WEIGHTS, rng),
        suffers_lba,
        charge_level,
        giveup_level,
    }
}

/// Charging-threshold mixture:
///
/// | component              | share | levels            |
/// |------------------------|-------|-------------------|
/// | icon-triggered         | 30 %  | 18–22, mode at 20 |
/// | moderate worriers      | 35 %  | 20 + Exp(18)      |
/// | procrastinators        | 20 %  | uniform 5–19      |
/// | charge-when-dead       | 10 %  | uniform 1–9       |
/// | top-up-early           | 5 %   | uniform 45–90     |
///
/// Non-sufferers are drawn from the two late groups only.
fn sample_charge_level<R: Rng + ?Sized>(rng: &mut R, suffers_lba: bool) -> u8 {
    if !suffers_lba {
        // The 8 % without anxiety charge late or whenever convenient.
        return if rng.gen_bool(0.7) {
            rng.gen_range(1..=9)
        } else {
            rng.gen_range(5..=19)
        };
    }
    let ticket: f64 = rng.gen_range(0.0..1.0);
    if ticket < 0.30 {
        // Icon-triggered: tight triangular mass centered on 20.
        let offsets = [-2i8, -1, -1, 0, 0, 0, 0, 1, 1, 2];
        let off = offsets[rng.gen_range(0..offsets.len())];
        (20 + off) as u8
    } else if ticket < 0.65 {
        // Exponential tail above 20 — convex survival curve.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let level = 20.0 + (-u.ln()) * 18.0;
        level.round().clamp(20.0, 100.0) as u8
    } else if ticket < 0.85 {
        rng.gen_range(5..=19)
    } else if ticket < 0.95 {
        rng.gen_range(1..=9)
    } else {
        rng.gen_range(45..=90)
    }
}

/// Give-up level mixture targeting `P(give up at ≥20 %) ≈ 0.2` and
/// `P(give up at ≥10 %) ≈ 0.5`.
fn sample_giveup_level<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    let ticket: f64 = rng.gen_range(0.0..1.0);
    if ticket < 0.50 {
        rng.gen_range(1..=9)
    } else if ticket < 0.80 {
        rng.gen_range(10..=19)
    } else if ticket < 0.95 {
        rng.gen_range(20..=34)
    } else {
        rng.gen_range(35..=60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort() -> Vec<Participant> {
        SurveyGenerator::paper_cohort(1234).generate()
    }

    #[test]
    fn cohort_has_paper_size_and_is_clean() {
        let c = cohort();
        assert_eq!(c.len(), PAPER_COHORT_SIZE);
        assert!(c.iter().all(Participant::is_valid));
    }

    #[test]
    fn lba_prevalence_matches_paper() {
        let c = cohort();
        let rate = c.iter().filter(|p| p.suffers_lba).count() as f64 / c.len() as f64;
        assert!((rate - PAPER_LBA_PREVALENCE).abs() < 0.02, "prevalence {rate}");
    }

    #[test]
    fn giveup_marginals_match_reported_behaviour() {
        // Use a large cohort to beat sampling noise, then check the two
        // abandonment anchors the paper reports.
        let c = SurveyGenerator::new(50_000, 99).generate();
        let n = c.len() as f64;
        let at20 = c.iter().filter(|p| p.giveup_level >= 20).count() as f64 / n;
        let at10 = c.iter().filter(|p| p.giveup_level >= 10).count() as f64 / n;
        assert!((at20 - 0.20).abs() < 0.05, "P(give up ≥20 %) = {at20}");
        assert!((at10 - 0.50).abs() < 0.06, "P(give up ≥10 %) = {at10}");
    }

    #[test]
    fn charge_distribution_spikes_at_twenty() {
        let c = SurveyGenerator::new(50_000, 7).generate();
        let count = |lvl: u8| c.iter().filter(|p| p.charge_level == lvl).count();
        // The icon-trigger bin towers over its non-spike neighbours.
        assert!(count(20) > 3 * count(26));
        assert!(count(20) > 3 * count(14));
    }

    #[test]
    fn nearly_half_give_up_below_ten_percent() {
        let c = cohort();
        let below10 = c.iter().filter(|p| p.giveup_level < 10).count() as f64;
        let share = below10 / c.len() as f64;
        assert!((0.42..=0.60).contains(&share), "share below 10 %: {share}");
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = SurveyGenerator::new(500, 5).generate();
        let b = SurveyGenerator::new(500, 5).generate();
        let c = SurveyGenerator::new(500, 6).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cohort size")]
    fn zero_size_rejected() {
        let _ = SurveyGenerator::new(0, 1);
    }
}
