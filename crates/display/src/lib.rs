//! # lpvs-display — display power models and energy-saving transforms
//!
//! Display power is the lever LPVS pulls: during video playback the
//! screen is the dominant consumer on both LCD and OLED phones
//! (paper Fig. 1), and per-pixel content transforms can cut its draw by
//! 13–49 % on average (paper Table I). This crate provides:
//!
//! * [`spec`] — display specifications: panel kind, resolution,
//!   physical size, brightness setting;
//! * [`stats`] — compact per-frame content statistics (luminance
//!   histogram + RGB channel moments) that every power model and
//!   transform in this workspace consumes, so no actual pixel buffers
//!   ever need to exist;
//! * [`lcd`] — a DLS-style backlight-dominated LCD power model
//!   (Chang et al., the paper's ref. \[20\]);
//! * [`oled`] — a per-channel OLED power model where blue subpixels
//!   cost about twice green and red sits between (Crayon,
//!   the paper's ref. \[17\]);
//! * [`component`] — the whole-phone component power budget behind
//!   Fig. 1;
//! * [`transform`] — the energy-saving content transforms: backlight
//!   scaling with luminance compensation (LCD), hue-preserving color
//!   darkening (OLED), and subpixel shutoff (OLED);
//! * [`strategy`] — the Table I strategy registry binding published
//!   saving ranges to the transform implementations;
//! * [`colorspace`] — RGB↔HSV conversion and hue-shift metrics used to
//!   verify the transforms stay in the perceptually validated regime;
//! * [`quality`] — distortion metrics and budgets shared by the
//!   transforms.
//!
//! # Example
//!
//! ```
//! use lpvs_display::spec::{DisplaySpec, Resolution};
//! use lpvs_display::stats::FrameStats;
//! use lpvs_display::transform::{ColorTransform, Transform};
//! use lpvs_display::quality::QualityBudget;
//!
//! let spec = DisplaySpec::oled_phone(Resolution::FHD);
//! let frame = FrameStats::uniform_gray(0.6);
//! let before = spec.power_watts(&frame);
//!
//! let transform = ColorTransform::new(QualityBudget::default());
//! let out = transform.apply(&frame, &spec);
//! let after = spec.power_watts(&out.stats);
//! assert!(after < before);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod colorspace;
pub mod component;
pub mod lcd;
pub mod oled;
pub mod profile;
pub mod quality;
pub mod spec;
pub mod stats;
pub mod strategy;
pub mod transform;

pub use calibration::{fit_lcd, fit_oled, LcdFit, OledFit};
pub use colorspace::{hsv_to_rgb, hue_distance, rgb_to_hsv, Hsv};
pub use component::{ComponentBudget, PhoneComponent};
pub use lcd::LcdPowerModel;
pub use oled::OledPowerModel;
pub use profile::PowerProfile;
pub use quality::{Distortion, QualityBudget};
pub use spec::{DisplayKind, DisplaySpec, Resolution};
pub use stats::FrameStats;
pub use strategy::{Strategy, StrategyFamily, TABLE_I};
pub use transform::{
    BacklightScaling, ColorTransform, SubpixelShutoff, Transform, TransformOutcome,
};
