//! The Table I strategy registry.
//!
//! Table I of the paper reviews eleven published display power-saving
//! strategies with their claimed saving ranges, averaging to the
//! 13–49 % band from which the Bayesian prior on γ is drawn. This
//! module encodes that table and binds each row to the transform
//! implementation (and operating point) in [`crate::transform`] that
//! realizes it, so the bench harness can regenerate Table I with
//! *measured* savings next to the claimed ones.

use crate::quality::QualityBudget;
use crate::spec::{DisplayKind, DisplaySpec};
use crate::stats::FrameStats;
use crate::transform::{
    BacklightScaling, ColorTransform, SubpixelShutoff, Transform, TransformOutcome,
};
use serde::{Deserialize, Serialize};

/// Which transform family realizes a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyFamily {
    /// LCD backlight scaling with luminance compensation.
    Backlight,
    /// OLED channel attenuation / color remapping.
    Color,
    /// OLED subpixel disabling / resolution scaling.
    Subpixel,
    /// Color attenuation combined with subpixel disabling.
    ColorAndSubpixel,
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// Strategy name as printed in the table.
    pub name: &'static str,
    /// Panel technology the strategy targets.
    pub kind: DisplayKind,
    /// Transform family that realizes it here.
    pub family: StrategyFamily,
    /// Claimed minimum saving (fraction).
    pub claimed_min: f64,
    /// Claimed maximum saving (fraction).
    pub claimed_max: f64,
    /// Citation key in the paper's bibliography.
    pub reference: &'static str,
}

/// The eleven rows of Table I.
pub const TABLE_I: [Strategy; 11] = [
    Strategy {
        name: "quality adapted backlight scaling",
        kind: DisplayKind::Lcd,
        family: StrategyFamily::Backlight,
        claimed_min: 0.27,
        claimed_max: 0.42,
        reference: "[18]",
    },
    Strategy {
        name: "dynamic backlight scaling",
        kind: DisplayKind::Lcd,
        family: StrategyFamily::Backlight,
        claimed_min: 0.15,
        claimed_max: 0.49,
        reference: "[19]",
    },
    Strategy {
        name: "dynamic backlight luminance scaling",
        kind: DisplayKind::Lcd,
        family: StrategyFamily::Backlight,
        claimed_min: 0.20,
        claimed_max: 0.80,
        reference: "[20]",
    },
    Strategy {
        name: "brightness & contrast scaling",
        kind: DisplayKind::Lcd,
        family: StrategyFamily::Backlight,
        claimed_min: 0.0,
        claimed_max: 0.50,
        reference: "[21]",
    },
    Strategy {
        name: "luminance dimming & compensation",
        kind: DisplayKind::Lcd,
        family: StrategyFamily::Backlight,
        claimed_min: 0.20,
        claimed_max: 0.38,
        reference: "[22]",
    },
    Strategy {
        name: "color and shape transforming",
        kind: DisplayKind::Oled,
        family: StrategyFamily::ColorAndSubpixel,
        claimed_min: 0.25,
        claimed_max: 0.66,
        reference: "[17]",
    },
    Strategy {
        name: "color transforming and darkening",
        kind: DisplayKind::Oled,
        family: StrategyFamily::Color,
        claimed_min: 0.0,
        claimed_max: 0.60,
        reference: "[23]",
    },
    Strategy {
        name: "color transforming with constraints",
        kind: DisplayKind::Oled,
        family: StrategyFamily::Color,
        claimed_min: 0.0,
        claimed_max: 0.64,
        reference: "[12]",
    },
    Strategy {
        name: "pixel disabling & resolution scaling",
        kind: DisplayKind::Oled,
        family: StrategyFamily::Subpixel,
        claimed_min: 0.0,
        claimed_max: 0.26,
        reference: "[24]",
    },
    Strategy {
        name: "image pixel scaling",
        kind: DisplayKind::Oled,
        family: StrategyFamily::ColorAndSubpixel,
        claimed_min: 0.38,
        claimed_max: 0.42,
        reference: "[25]",
    },
    Strategy {
        name: "redundant subpixel shutoff",
        kind: DisplayKind::Oled,
        family: StrategyFamily::Subpixel,
        claimed_min: 0.0,
        claimed_max: 0.21,
        reference: "[6]",
    },
];

/// The average (min, max) saving band across all Table I rows — the
/// `[γ_L, γ_U]` the paper derives (≈ 13 %–49 %).
pub fn average_band() -> (f64, f64) {
    let n = TABLE_I.len() as f64;
    let min = TABLE_I.iter().map(|s| s.claimed_min).sum::<f64>() / n;
    let max = TABLE_I.iter().map(|s| s.claimed_max).sum::<f64>() / n;
    (min, max)
}

impl Strategy {
    /// Applies the strategy to one frame shown on `spec`, at the
    /// quality budget implied by how aggressive its claimed range is.
    pub fn apply(&self, frame: &FrameStats, spec: &DisplaySpec) -> TransformOutcome {
        // More aggressive claims correspond to laxer perceptual
        // budgets in the underlying papers.
        let budget = if self.claimed_max >= 0.6 {
            QualityBudget::aggressive()
        } else if self.claimed_max >= 0.35 {
            QualityBudget::default()
        } else {
            QualityBudget::strict()
        };
        match self.family {
            StrategyFamily::Backlight => BacklightScaling::new(budget).apply(frame, spec),
            StrategyFamily::Color => ColorTransform::new(budget).apply(frame, spec),
            StrategyFamily::Subpixel => SubpixelShutoff::new(budget).apply(frame, spec),
            StrategyFamily::ColorAndSubpixel => {
                let first = ColorTransform::new(budget).apply(frame, spec);
                let second = SubpixelShutoff::new(budget).apply(&first.stats, spec);
                first.then(second)
            }
        }
    }

    /// Measured mean saving of this strategy over a corpus of frames.
    pub fn measured_saving(&self, corpus: &[FrameStats], spec: &DisplaySpec) -> f64 {
        if corpus.is_empty() {
            return 0.0;
        }
        corpus
            .iter()
            .map(|f| self.apply(f, spec).reduction_ratio(f, spec))
            .sum::<f64>()
            / corpus.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    #[test]
    fn average_band_matches_paper() {
        let (lo, hi) = average_band();
        assert!((lo - 0.13).abs() < 0.005, "lower bound {lo}");
        assert!((hi - 0.49).abs() < 0.005, "upper bound {hi}");
    }

    #[test]
    fn rows_are_well_formed() {
        for s in TABLE_I {
            assert!(s.claimed_min >= 0.0);
            assert!(s.claimed_min <= s.claimed_max);
            assert!(s.claimed_max <= 1.0);
            assert!(!s.name.is_empty());
        }
    }

    #[test]
    fn five_lcd_six_oled_rows() {
        let lcd = TABLE_I.iter().filter(|s| s.kind == DisplayKind::Lcd).count();
        assert_eq!(lcd, 5);
        assert_eq!(TABLE_I.len() - lcd, 6);
    }

    fn corpus() -> Vec<FrameStats> {
        // A small mix of dark, typical and bright scenes.
        [0.2, 0.35, 0.5, 0.65, 0.8]
            .iter()
            .map(|&v| FrameStats::from_encoded_rgb([v, v, v], 6))
            .collect()
    }

    #[test]
    fn measured_savings_land_near_claimed_ranges() {
        for s in TABLE_I {
            let spec = match s.kind {
                DisplayKind::Lcd => DisplaySpec::lcd_phone(Resolution::FHD),
                DisplayKind::Oled => DisplaySpec::oled_phone(Resolution::FHD),
            };
            let measured = s.measured_saving(&corpus(), &spec);
            assert!(
                measured >= 0.0 && measured <= s.claimed_max + 0.15,
                "{}: measured {measured} vs claimed ≤ {}",
                s.name,
                s.claimed_max
            );
            assert!(measured > 0.0, "{} saved nothing", s.name);
        }
    }

    #[test]
    fn strategies_match_their_panel_kind() {
        for s in TABLE_I {
            match s.family {
                StrategyFamily::Backlight => assert_eq!(s.kind, DisplayKind::Lcd),
                _ => assert_eq!(s.kind, DisplayKind::Oled),
            }
        }
    }

    #[test]
    fn empty_corpus_measures_zero() {
        let spec = DisplaySpec::lcd_phone(Resolution::FHD);
        assert_eq!(TABLE_I[0].measured_saving(&[], &spec), 0.0);
    }
}
