//! Subpixel shutoff for high-density OLED panels.
//!
//! "Too many pixels to perceive" (the paper's ref. \[6\]) observes that
//! at flagship pixel densities the eye cannot resolve individual
//! subpixels, so a fraction of them can be disabled with little visible
//! loss — up to ~21 % power reduction. The perceptibility of shutoff
//! falls with pixel density: this implementation scales the perceived
//! detail loss by `300 ppi / actual ppi` (300 ppi ≈ the classic
//! "retina" threshold at phone viewing distance) and then spends the
//! quality budget's resolution-loss allowance.

use crate::quality::{Distortion, QualityBudget};
use crate::spec::{DisplayKind, DisplaySpec};
use crate::stats::FrameStats;
use crate::transform::{Transform, TransformOutcome};
use serde::{Deserialize, Serialize};

/// Hard cap on the disabled fraction, from the published technique.
const MAX_SHUTOFF: f64 = 0.21;

/// Pixel density at which shutoff becomes effectively invisible.
const RETINA_PPI: f64 = 300.0;

/// Density-aware subpixel shutoff.
///
/// # Example
///
/// ```
/// use lpvs_display::quality::QualityBudget;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
/// use lpvs_display::transform::{SubpixelShutoff, Transform};
///
/// let spec = DisplaySpec::oled_phone(Resolution::QHD);
/// let t = SubpixelShutoff::new(QualityBudget::default());
/// let frame = FrameStats::uniform_gray(0.7);
/// let out = t.apply(&frame, &spec);
/// assert!(out.enabled_fraction < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubpixelShutoff {
    budget: QualityBudget,
}

impl SubpixelShutoff {
    /// Creates the transform with the given quality budget.
    pub fn new(budget: QualityBudget) -> Self {
        Self { budget }
    }

    /// The quality budget in force.
    pub fn budget(&self) -> &QualityBudget {
        &self.budget
    }

    /// Pixel density of a display in pixels per inch.
    pub fn ppi(spec: &DisplaySpec) -> f64 {
        let w = f64::from(spec.resolution.width);
        let h = f64::from(spec.resolution.height);
        (w * w + h * h).sqrt() / spec.diagonal_inches
    }

    /// Chooses the shutoff fraction for `spec`: the largest fraction
    /// whose perceived detail loss stays inside the budget, capped at
    /// the published 21 %.
    fn choose_shutoff(&self, spec: &DisplaySpec) -> (f64, f64) {
        let ppi = Self::ppi(spec);
        // Perceived loss per unit shutoff: 1 at/below retina density,
        // falling as density rises beyond it.
        let visibility = (RETINA_PPI / ppi).min(1.0);
        let shutoff = (self.budget.max_resolution_loss / visibility).min(MAX_SHUTOFF);
        (shutoff, shutoff * visibility)
    }
}

impl Transform for SubpixelShutoff {
    fn name(&self) -> &'static str {
        "subpixel-shutoff"
    }

    fn applies_to(&self) -> DisplayKind {
        DisplayKind::Oled
    }

    fn apply(&self, frame: &FrameStats, spec: &DisplaySpec) -> TransformOutcome {
        let (shutoff, perceived_loss) = self.choose_shutoff(spec);
        if shutoff <= 1e-12 {
            return TransformOutcome::identity(frame);
        }
        TransformOutcome {
            stats: frame.clone(),
            brightness_scale: 1.0,
            enabled_fraction: 1.0 - shutoff,
            distortion: Distortion { resolution_loss: perceived_loss, ..Distortion::none() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    fn t() -> SubpixelShutoff {
        SubpixelShutoff::new(QualityBudget::default())
    }

    #[test]
    fn ppi_computation() {
        // 1080p on 6.4": √(1920² + 1080²)/6.4 ≈ 344 ppi.
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let ppi = SubpixelShutoff::ppi(&spec);
        assert!((ppi - 344.0).abs() < 2.0, "ppi {ppi}");
    }

    #[test]
    fn shutoff_capped_at_published_limit() {
        let spec = DisplaySpec::oled_phone(Resolution::UHD); // very dense
        let out = SubpixelShutoff::new(QualityBudget::aggressive()).apply(
            &FrameStats::uniform_gray(0.5),
            &spec,
        );
        assert!(out.enabled_fraction >= 1.0 - MAX_SHUTOFF - 1e-12);
    }

    #[test]
    fn denser_panels_allow_more_shutoff() {
        let frame = FrameStats::uniform_gray(0.5);
        let budget = QualityBudget { max_resolution_loss: 0.1, ..QualityBudget::default() };
        let hd = SubpixelShutoff::new(budget)
            .apply(&frame, &DisplaySpec::oled_phone(Resolution::HD));
        let qhd = SubpixelShutoff::new(budget)
            .apply(&frame, &DisplaySpec::oled_phone(Resolution::QHD));
        assert!(qhd.enabled_fraction <= hd.enabled_fraction);
    }

    #[test]
    fn saving_matches_enabled_fraction() {
        let spec = DisplaySpec::oled_phone(Resolution::QHD);
        let frame = FrameStats::uniform_gray(0.8);
        let out = t().apply(&frame, &spec);
        let gamma = out.reduction_ratio(&frame, &spec);
        // Emissive power dominates, so γ ≈ shutoff fraction (slightly
        // less because the driver floor is untouched).
        let shutoff = 1.0 - out.enabled_fraction;
        assert!(gamma > 0.6 * shutoff && gamma <= shutoff + 1e-9, "γ {gamma} vs {shutoff}");
    }

    #[test]
    fn zero_budget_is_identity() {
        let budget = QualityBudget { max_resolution_loss: 0.0, ..QualityBudget::default() };
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let frame = FrameStats::uniform_gray(0.5);
        let out = SubpixelShutoff::new(budget).apply(&frame, &spec);
        assert_eq!(out.enabled_fraction, 1.0);
    }

    #[test]
    fn perceived_loss_within_budget() {
        let budget = QualityBudget::default();
        for res in Resolution::LADDER {
            let spec = DisplaySpec::oled_phone(res);
            let out = SubpixelShutoff::new(budget).apply(&FrameStats::default(), &spec);
            assert!(out.distortion.resolution_loss <= budget.max_resolution_loss + 1e-12);
        }
    }

    #[test]
    fn targets_oled() {
        assert_eq!(t().applies_to(), DisplayKind::Oled);
        assert_eq!(t().name(), "subpixel-shutoff");
    }
}
