//! Energy-saving content transforms.
//!
//! Three transform families cover Table I of the paper:
//!
//! * [`BacklightScaling`] (LCD) — dim the backlight by a factor `s` and
//!   compensate pixel luminance by `1/s`, clipping highlights;
//! * [`ColorTransform`] (OLED) — attenuate the RGB channels, spending a
//!   bounded color-shift budget preferentially on the channels that
//!   cost the most energy (blue first);
//! * [`SubpixelShutoff`] (OLED) — disable a fraction of subpixels,
//!   trading spatial detail for emissive power.
//!
//! A note on conventions: throughout this workspace the
//! **power-reduction ratio γ is the *saved* fraction** — transformed
//! power is `(1 − γ) · p`. The paper's eq. (3) multiplies `γ · p` for
//! the transformed rate while simultaneously initializing γ's prior
//! from Table I's *saving* percentages (mean 0.31); the two readings
//! are inconsistent with each other, and we follow the Table I /
//! prior-calibration reading because the Bayesian machinery of §V-D
//! depends on it. See DESIGN.md.

mod backlight;
mod color;
mod subpixel;

pub use backlight::BacklightScaling;
pub use color::ColorTransform;
pub use subpixel::SubpixelShutoff;

use crate::quality::Distortion;
use crate::spec::{DisplayKind, DisplaySpec};
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Result of applying a transform to one frame/chunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformOutcome {
    /// Content statistics after the transform.
    pub stats: FrameStats,
    /// Multiplier on the panel's brightness/backlight setting
    /// (1.0 = unchanged).
    pub brightness_scale: f64,
    /// Fraction of subpixels left enabled (1.0 = all; only meaningful
    /// for OLED).
    pub enabled_fraction: f64,
    /// Distortion introduced.
    pub distortion: Distortion,
}

impl TransformOutcome {
    /// An outcome that changes nothing (used when a transform decides
    /// the content offers no headroom).
    pub fn identity(frame: &FrameStats) -> Self {
        Self {
            stats: frame.clone(),
            brightness_scale: 1.0,
            enabled_fraction: 1.0,
            distortion: Distortion::none(),
        }
    }

    /// Display power in watts when this outcome is shown on `spec`,
    /// with the brightness and subpixel knobs applied.
    pub fn power_watts(&self, spec: &DisplaySpec) -> f64 {
        let adjusted =
            spec.with_brightness((spec.brightness * self.brightness_scale).clamp(0.0, 1.0));
        match spec.kind {
            DisplayKind::Lcd => crate::lcd::LcdPowerModel::for_spec(&adjusted)
                .power_watts(&self.stats),
            DisplayKind::Oled => crate::oled::OledPowerModel::for_spec(&adjusted)
                .with_enabled_fraction(self.enabled_fraction.clamp(f64::MIN_POSITIVE, 1.0))
                .power_watts(&self.stats),
        }
    }

    /// Power-reduction ratio γ relative to showing `original` untouched
    /// on `spec`: `γ = 1 − P_after / P_before`, clamped to `[0, 1)`.
    pub fn reduction_ratio(&self, original: &FrameStats, spec: &DisplaySpec) -> f64 {
        let before = spec.power_watts(original);
        if before <= 0.0 {
            return 0.0;
        }
        (1.0 - self.power_watts(spec) / before).clamp(0.0, 1.0 - f64::EPSILON)
    }

    /// Chains a second outcome on top of this one (e.g. color transform
    /// followed by subpixel shutoff). Scales multiply; distortions add
    /// component-wise (saturating at 1).
    pub fn then(&self, next: TransformOutcome) -> TransformOutcome {
        TransformOutcome {
            stats: next.stats,
            brightness_scale: self.brightness_scale * next.brightness_scale,
            enabled_fraction: self.enabled_fraction * next.enabled_fraction,
            distortion: Distortion {
                clipped_fraction: (self.distortion.clipped_fraction
                    + next.distortion.clipped_fraction)
                    .min(1.0),
                luminance_loss: (self.distortion.luminance_loss
                    + next.distortion.luminance_loss)
                    .min(1.0),
                color_shift: (self.distortion.color_shift + next.distortion.color_shift)
                    .min(1.0),
                resolution_loss: (self.distortion.resolution_loss
                    + next.distortion.resolution_loss)
                    .min(1.0),
            },
        }
    }
}

/// An energy-saving content transform.
///
/// Implementations decide their own operating point from the frame
/// statistics and their quality budget; `apply` must always return an
/// outcome whose distortion is within that budget (falling back to
/// [`TransformOutcome::identity`] when the content offers no headroom).
pub trait Transform {
    /// Short machine-friendly name (e.g. `"backlight-scaling"`).
    fn name(&self) -> &'static str;

    /// Panel technology the transform targets.
    fn applies_to(&self) -> DisplayKind;

    /// Applies the transform to one frame/chunk shown on `spec`.
    fn apply(&self, frame: &FrameStats, spec: &DisplaySpec) -> TransformOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityBudget;
    use crate::spec::Resolution;

    #[test]
    fn identity_outcome_preserves_power() {
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let frame = FrameStats::uniform_gray(0.6);
        let out = TransformOutcome::identity(&frame);
        assert!((out.power_watts(&spec) - spec.power_watts(&frame)).abs() < 1e-12);
        assert_eq!(out.reduction_ratio(&frame, &spec), 0.0);
    }

    #[test]
    fn chaining_multiplies_knobs_and_adds_distortion() {
        let frame = FrameStats::uniform_gray(0.6);
        let a = TransformOutcome {
            stats: frame.clone(),
            brightness_scale: 0.8,
            enabled_fraction: 1.0,
            distortion: Distortion { color_shift: 0.1, ..Distortion::none() },
        };
        let b = TransformOutcome {
            stats: frame.clone(),
            brightness_scale: 1.0,
            enabled_fraction: 0.9,
            distortion: Distortion { resolution_loss: 0.2, ..Distortion::none() },
        };
        let c = a.then(b);
        assert!((c.brightness_scale - 0.8).abs() < 1e-12);
        assert!((c.enabled_fraction - 0.9).abs() < 1e-12);
        assert!((c.distortion.color_shift - 0.1).abs() < 1e-12);
        assert!((c.distortion.resolution_loss - 0.2).abs() < 1e-12);
    }

    #[test]
    fn every_transform_respects_its_budget() {
        let budget = QualityBudget::default();
        let frames = [
            FrameStats::uniform_gray(0.1),
            FrameStats::uniform_gray(0.5),
            FrameStats::uniform_gray(0.95),
            FrameStats::from_encoded_rgb([0.9, 0.2, 0.7], 5),
            FrameStats::from_encoded_rgb([0.1, 0.9, 0.3], 8),
        ];
        let lcd = DisplaySpec::lcd_phone(Resolution::FHD);
        let oled = DisplaySpec::oled_phone(Resolution::FHD);
        let transforms: Vec<(Box<dyn Transform>, &DisplaySpec)> = vec![
            (Box::new(BacklightScaling::new(budget)), &lcd),
            (Box::new(ColorTransform::new(budget)), &oled),
            (Box::new(SubpixelShutoff::new(budget)), &oled),
        ];
        for (t, spec) in &transforms {
            for frame in &frames {
                let out = t.apply(frame, spec);
                assert!(
                    out.distortion.within(&budget),
                    "{} exceeded budget: {:?}",
                    t.name(),
                    out.distortion
                );
                // A transform must never *increase* power.
                assert!(
                    out.power_watts(spec) <= spec.power_watts(frame) + 1e-9,
                    "{} increased power",
                    t.name()
                );
            }
        }
    }
}
