//! Backlight scaling with luminance compensation (LCD).
//!
//! The DLS family of techniques (the paper's refs. \[18\]–\[22\]) dims the
//! backlight by a factor `s` and multiplies pixel luminance by `1/s`,
//! so perceived brightness is unchanged except for highlights above `s`
//! which clip to white. The transform therefore searches for the
//! smallest `s` whose clipping stays inside the quality budget: dark
//! scenes admit deep dimming (large savings), bright scenes barely any
//! — exactly the content-dependent power behaviour the paper's Fig. 4
//! sketches.

use crate::quality::{Distortion, QualityBudget};
use crate::spec::{DisplayKind, DisplaySpec};
use crate::stats::{bin_center, FrameStats, LUMA_BINS};
use crate::transform::{Transform, TransformOutcome};
use serde::{Deserialize, Serialize};

/// Deepest dimming considered: below this the panel's own response
/// becomes nonlinear and the published models stop applying.
const MIN_SCALE: f64 = 0.15;

/// Quality-constrained backlight scaling.
///
/// # Example
///
/// ```
/// use lpvs_display::quality::QualityBudget;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
/// use lpvs_display::transform::{BacklightScaling, Transform};
///
/// let spec = DisplaySpec::lcd_phone(Resolution::FHD);
/// let t = BacklightScaling::new(QualityBudget::default());
///
/// // A dark scene admits deep dimming…
/// let dark = t.apply(&FrameStats::uniform_gray(0.25), &spec);
/// // …while a bright scene barely any.
/// let bright = t.apply(&FrameStats::uniform_gray(0.95), &spec);
/// assert!(dark.brightness_scale < bright.brightness_scale);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacklightScaling {
    budget: QualityBudget,
}

impl BacklightScaling {
    /// Creates the transform with the given quality budget.
    pub fn new(budget: QualityBudget) -> Self {
        Self { budget }
    }

    /// The quality budget in force.
    pub fn budget(&self) -> &QualityBudget {
        &self.budget
    }

    /// Picks the smallest admissible backlight scale for `frame`,
    /// together with the clipping distortion it causes.
    fn choose_scale(&self, frame: &FrameStats) -> (f64, Distortion) {
        let mean = frame.mean_luma().max(1e-9);
        let mut best: Option<(f64, Distortion)> = None;
        // Candidate scales at bin edges, descending (1.0 → MIN_SCALE):
        // the deepest one still inside the budget wins.
        for i in (0..LUMA_BINS).rev() {
            let s = bin_center(i).max(MIN_SCALE);
            if s < MIN_SCALE {
                break;
            }
            let clipped = frame.fraction_above(s);
            // Mean luminance lost: E[max(v − s, 0)] / E[v].
            let lost: f64 = frame
                .luma_hist()
                .iter()
                .enumerate()
                .map(|(j, &p)| p * (bin_center(j) - s).max(0.0))
                .sum::<f64>()
                / mean;
            let distortion = Distortion {
                clipped_fraction: clipped,
                luminance_loss: lost,
                ..Distortion::none()
            };
            if distortion.within(&self.budget) {
                best = Some((s, distortion));
            } else {
                // Scales only get more aggressive from here; the last
                // admissible one is final.
                break;
            }
        }
        best.unwrap_or((1.0, Distortion::none()))
    }
}

impl Transform for BacklightScaling {
    fn name(&self) -> &'static str {
        "backlight-scaling"
    }

    fn applies_to(&self) -> DisplayKind {
        DisplayKind::Lcd
    }

    fn apply(&self, frame: &FrameStats, _spec: &DisplaySpec) -> TransformOutcome {
        let (scale, distortion) = self.choose_scale(frame);
        if scale >= 1.0 - 1e-12 {
            return TransformOutcome::identity(frame);
        }
        TransformOutcome {
            stats: frame.compensate(scale),
            brightness_scale: scale,
            enabled_fraction: 1.0,
            distortion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    fn spec() -> DisplaySpec {
        DisplaySpec::lcd_phone(Resolution::FHD)
    }

    fn t() -> BacklightScaling {
        BacklightScaling::new(QualityBudget::default())
    }

    #[test]
    fn dark_content_saves_big() {
        let out = t().apply(&FrameStats::uniform_gray(0.2), &spec());
        let gamma = out.reduction_ratio(&FrameStats::uniform_gray(0.2), &spec());
        assert!(gamma > 0.4, "dark-scene saving only {gamma}");
        assert!(out.brightness_scale < 0.4);
    }

    #[test]
    fn white_content_saves_almost_nothing() {
        // Full-white content admits only the sub-bin headroom of the
        // histogram quantization (< 1 bin of dimming).
        let frame = FrameStats::uniform_gray(1.0);
        let out = t().apply(&frame, &spec());
        assert!(out.brightness_scale > 1.0 - 1.0 / LUMA_BINS as f64);
        assert!(out.reduction_ratio(&frame, &spec()) < 0.02);
    }

    #[test]
    fn savings_fall_in_table_i_band_for_typical_video() {
        // Typical video luma sits around 0.3–0.6; Table I reports
        // 15–80 % for LCD backlight techniques.
        for &luma in &[0.3, 0.4, 0.5, 0.6] {
            let frame = FrameStats::from_encoded_rgb([luma, luma, luma], 6);
            let out = t().apply(&frame, &spec());
            let gamma = out.reduction_ratio(&frame, &spec());
            assert!(
                (0.10..=0.85).contains(&gamma),
                "saving {gamma} out of band for luma {luma}"
            );
        }
    }

    #[test]
    fn scale_monotone_in_brightness_of_content() {
        let mut prev = 0.0;
        for &luma in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let out = t().apply(&FrameStats::uniform_gray(luma), &spec());
            assert!(
                out.brightness_scale >= prev - 1e-12,
                "scale not monotone at luma {luma}"
            );
            prev = out.brightness_scale;
        }
    }

    #[test]
    fn stricter_budget_saves_less() {
        let frame = FrameStats::from_encoded_rgb([0.55, 0.55, 0.55], 8);
        let lax = BacklightScaling::new(QualityBudget::aggressive()).apply(&frame, &spec());
        let strict = BacklightScaling::new(QualityBudget::strict()).apply(&frame, &spec());
        assert!(lax.brightness_scale <= strict.brightness_scale);
    }

    #[test]
    fn clipping_stays_within_budget() {
        let budget = QualityBudget::default();
        for &luma in &[0.2, 0.5, 0.8] {
            let frame = FrameStats::from_encoded_rgb([luma; 3], 10);
            let out = BacklightScaling::new(budget).apply(&frame, &spec());
            assert!(out.distortion.clipped_fraction <= budget.max_clipped_fraction + 1e-12);
            assert!(out.distortion.luminance_loss <= budget.max_luminance_loss + 1e-12);
        }
    }

    #[test]
    fn compensated_content_is_brighter() {
        let frame = FrameStats::uniform_gray(0.3);
        let out = t().apply(&frame, &spec());
        assert!(out.stats.mean_luma() > frame.mean_luma());
    }

    #[test]
    fn targets_lcd() {
        assert_eq!(t().applies_to(), DisplayKind::Lcd);
        assert_eq!(t().name(), "backlight-scaling");
    }
}
