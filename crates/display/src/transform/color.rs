//! Quality-constrained OLED color transform.
//!
//! Chameleon, Crayon and their successors (the paper's refs. \[12\],
//! \[17\], \[23\]) save OLED energy by shifting displayed colors toward
//! cheaper ones. This implementation attenuates each RGB channel by a
//! factor `c_i = 1 − d_i`, spending a bounded RMS color-shift budget
//! `√(Σ d_i² / 3) ≤ D` where it buys the most energy. The optimal
//! allocation follows from the KKT conditions of
//!
//! ```text
//! max Σ_i w_i·g_i·(1 − (1 − d_i)^γ)   s.t.  Σ d_i² = 3D²
//! ```
//!
//! namely `d_i ∝ w_i·g_i·(1 − d_i)^(γ−1)`, which this module solves by
//! bisection on the proportionality constant with an inner fixed-point
//! loop. Because blue subpixels weigh twice green, blue is attenuated
//! hardest — the hallmark of the published transforms.

use crate::oled::CHANNEL_WEIGHTS;
use crate::quality::{Distortion, QualityBudget};
use crate::spec::{DisplayKind, DisplaySpec};
use crate::stats::{FrameStats, GAMMA};
use crate::transform::{Transform, TransformOutcome};
use serde::{Deserialize, Serialize};

/// Largest per-channel attenuation considered, to keep hue shifts in
/// the regime the perceptual studies validated.
const MAX_ATTENUATION: f64 = 0.45;

/// Hue-aware channel attenuation for OLED panels.
///
/// # Example
///
/// ```
/// use lpvs_display::quality::QualityBudget;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
/// use lpvs_display::transform::{ColorTransform, Transform};
///
/// let spec = DisplaySpec::oled_phone(Resolution::FHD);
/// let t = ColorTransform::new(QualityBudget::default());
/// let frame = FrameStats::uniform_gray(0.7);
/// let out = t.apply(&frame, &spec);
/// assert!(out.power_watts(&spec) < spec.power_watts(&frame));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColorTransform {
    budget: QualityBudget,
}

impl ColorTransform {
    /// Creates the transform with the given quality budget.
    pub fn new(budget: QualityBudget) -> Self {
        Self { budget }
    }

    /// The quality budget in force.
    pub fn budget(&self) -> &QualityBudget {
        &self.budget
    }

    /// Solves the constrained allocation: returns per-channel
    /// attenuations `d` with `√(Σ d_i²/3)` equal to the budget (or
    /// less, when the attenuation cap binds first).
    fn allocate(&self, frame: &FrameStats) -> [f64; 3] {
        let g = frame.linear_mean();
        let shift_budget = self.budget.max_color_shift;
        if shift_budget <= 0.0 {
            return [0.0; 3];
        }
        // Marginal value of attenuating channel i at d = 0.
        let value = [
            CHANNEL_WEIGHTS[0] * g[0],
            CHANNEL_WEIGHTS[1] * g[1],
            CHANNEL_WEIGHTS[2] * g[2],
        ];
        if value.iter().all(|&v| v <= 1e-12) {
            return [0.0; 3]; // black frame: nothing to save
        }
        let target_ss = 3.0 * shift_budget * shift_budget;

        // d_i(k) = min(cap, k · v_i · (1 − d_i)^(γ−1)), solved by an
        // inner fixed point; bisection on k matches Σ d² to the budget.
        // The fixed point contracts geometrically (d ≤ 0.45), so a
        // handful of sweeps with an early exit suffices — this runs for
        // every chunk of every transformed stream, so the iteration
        // budget is deliberately tight.
        let d_for = |k: f64| -> [f64; 3] {
            let mut d = [0.0f64; 3];
            for _ in 0..10 {
                let mut moved = 0.0f64;
                for i in 0..3 {
                    let next = (k * value[i] * (1.0 - d[i]).max(0.0).powf(GAMMA - 1.0))
                        .min(MAX_ATTENUATION);
                    moved = moved.max((next - d[i]).abs());
                    d[i] = next;
                }
                if moved < 1e-9 {
                    break;
                }
            }
            d
        };
        let ss = |d: &[f64; 3]| d.iter().map(|x| x * x).sum::<f64>();

        let mut lo = 0.0;
        let mut hi = 1.0;
        // Grow hi until the cap saturates or the budget is exceeded.
        while ss(&d_for(hi)) < target_ss && hi < 1e6 {
            let capped = d_for(hi).iter().all(|&x| x >= MAX_ATTENUATION - 1e-12);
            if capped {
                return d_for(hi);
            }
            hi *= 2.0;
        }
        for _ in 0..28 {
            let mid = 0.5 * (lo + hi);
            if ss(&d_for(mid)) < target_ss {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-6 * hi.max(1.0) {
                break;
            }
        }
        d_for(lo)
    }
}

impl Transform for ColorTransform {
    fn name(&self) -> &'static str {
        "color-transform"
    }

    fn applies_to(&self) -> DisplayKind {
        DisplayKind::Oled
    }

    fn apply(&self, frame: &FrameStats, _spec: &DisplaySpec) -> TransformOutcome {
        let d = self.allocate(frame);
        if d.iter().all(|&x| x <= 1e-12) {
            return TransformOutcome::identity(frame);
        }
        let factors = [1.0 - d[0], 1.0 - d[1], 1.0 - d[2]];
        let rms = (d.iter().map(|x| x * x).sum::<f64>() / 3.0).sqrt();
        TransformOutcome {
            stats: frame.scale_channels(factors),
            brightness_scale: 1.0,
            enabled_fraction: 1.0,
            distortion: Distortion { color_shift: rms, ..Distortion::none() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    fn spec() -> DisplaySpec {
        DisplaySpec::oled_phone(Resolution::FHD)
    }

    fn t() -> ColorTransform {
        ColorTransform::new(QualityBudget::default())
    }

    #[test]
    fn blue_attenuated_hardest_on_gray() {
        let d = t().allocate(&FrameStats::uniform_gray(0.7));
        assert!(d[2] > d[0], "blue {} vs red {}", d[2], d[0]);
        assert!(d[0] > d[1], "red {} vs green {}", d[0], d[1]);
    }

    #[test]
    fn shift_matches_budget_on_bright_content() {
        let budget = QualityBudget::default();
        let out = ColorTransform::new(budget).apply(&FrameStats::uniform_gray(0.9), &spec());
        assert!(out.distortion.color_shift <= budget.max_color_shift + 1e-9);
        assert!(
            out.distortion.color_shift > 0.8 * budget.max_color_shift,
            "left budget unspent: {}",
            out.distortion.color_shift
        );
    }

    #[test]
    fn savings_in_published_band_for_typical_video() {
        // Table I OLED color transforms report up to ~60 %; at the
        // default 15 % shift budget, typical content lands at 10–45 %.
        for &v in &[0.4, 0.6, 0.8] {
            let frame = FrameStats::uniform_gray(v);
            let out = t().apply(&frame, &spec());
            let gamma = out.reduction_ratio(&frame, &spec());
            assert!((0.05..=0.65).contains(&gamma), "saving {gamma} for gray {v}");
        }
    }

    #[test]
    fn black_frame_is_identity() {
        let frame = FrameStats::uniform_gray(0.0);
        let out = t().apply(&frame, &spec());
        assert_eq!(out.distortion.color_shift, 0.0);
        assert_eq!(out.brightness_scale, 1.0);
    }

    #[test]
    fn zero_budget_is_identity() {
        let budget = QualityBudget { max_color_shift: 0.0, ..QualityBudget::default() };
        let frame = FrameStats::uniform_gray(0.8);
        let spec = spec();
        let out = ColorTransform::new(budget).apply(&frame, &spec);
        assert_eq!(out.power_watts(&spec), spec.power_watts(&frame));
    }

    #[test]
    fn bigger_budget_saves_more() {
        let frame = FrameStats::uniform_gray(0.7);
        let small = ColorTransform::new(QualityBudget::strict()).apply(&frame, &spec());
        let large = ColorTransform::new(QualityBudget::aggressive()).apply(&frame, &spec());
        assert!(
            large.reduction_ratio(&frame, &spec()) > small.reduction_ratio(&frame, &spec())
        );
    }

    #[test]
    fn attenuation_capped() {
        // Even with an absurd budget, no channel loses more than the cap.
        let budget = QualityBudget { max_color_shift: 0.9, ..QualityBudget::aggressive() };
        let d = ColorTransform::new(budget).allocate(&FrameStats::uniform_gray(0.9));
        assert!(d.iter().all(|&x| x <= MAX_ATTENUATION + 1e-9));
    }

    #[test]
    fn allocation_follows_content() {
        // A red-dominant frame should spend more budget on red than a
        // blue-dominant frame does.
        let red_frame = FrameStats::from_encoded_rgb([0.9, 0.2, 0.2], 0);
        let blue_frame = FrameStats::from_encoded_rgb([0.2, 0.2, 0.9], 0);
        let dr = t().allocate(&red_frame);
        let db = t().allocate(&blue_frame);
        assert!(dr[0] > db[0]);
        assert!(db[2] > dr[2]);
    }

    #[test]
    fn targets_oled() {
        assert_eq!(t().applies_to(), DisplayKind::Oled);
        assert_eq!(t().name(), "color-transform");
    }
}
