//! Whole-phone component power budget during video playback (Fig. 1).
//!
//! The paper's Fig. 1 motivates everything else: during video playback
//! the display consumes more than any other hardware component, on both
//! LCD and OLED phones. The LCD numbers follow Carroll & Heiser's
//! smartphone power analysis (the paper's ref. \[9\]); the OLED display
//! figure is scaled up per the OLED/LCD comparison the paper cites
//! (ref. \[10\]) — OLEDs emit their own light and draw more on the bright
//! mixed content of typical video.

use crate::spec::DisplayKind;
use serde::{Deserialize, Serialize};

/// A hardware component of a smartphone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhoneComponent {
    /// Display panel (and backlight for LCD).
    Display,
    /// Application CPU cores.
    Cpu,
    /// GPU / video decoder.
    Gpu,
    /// Cellular/Wi-Fi radio streaming the video.
    Network,
    /// DRAM.
    Memory,
    /// Audio codec and amplifier.
    Audio,
    /// Everything else (sensors, PMIC overhead, …).
    Rest,
}

impl PhoneComponent {
    /// All components, in the order Fig. 1 plots them.
    pub const ALL: [PhoneComponent; 7] = [
        PhoneComponent::Display,
        PhoneComponent::Cpu,
        PhoneComponent::Gpu,
        PhoneComponent::Network,
        PhoneComponent::Memory,
        PhoneComponent::Audio,
        PhoneComponent::Rest,
    ];
}

impl std::fmt::Display for PhoneComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PhoneComponent::Display => "display",
            PhoneComponent::Cpu => "CPU",
            PhoneComponent::Gpu => "GPU",
            PhoneComponent::Network => "network",
            PhoneComponent::Memory => "memory",
            PhoneComponent::Audio => "audio",
            PhoneComponent::Rest => "rest",
        })
    }
}

/// Average per-component power (mW) of one phone class during video
/// playback.
///
/// # Example
///
/// ```
/// use lpvs_display::component::{ComponentBudget, PhoneComponent};
/// use lpvs_display::spec::DisplayKind;
///
/// let budget = ComponentBudget::video_playback(DisplayKind::Oled);
/// assert_eq!(budget.dominant(), PhoneComponent::Display);
/// assert!(budget.fraction(PhoneComponent::Display) > 0.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentBudget {
    kind: DisplayKind,
    entries: Vec<(PhoneComponent, f64)>,
}

impl ComponentBudget {
    /// The Fig. 1 budget for a phone of the given display kind during
    /// video playback.
    pub fn video_playback(kind: DisplayKind) -> Self {
        let display_mw = match kind {
            DisplayKind::Lcd => 520.0,
            DisplayKind::Oled => 780.0,
        };
        let entries = vec![
            (PhoneComponent::Display, display_mw),
            (PhoneComponent::Cpu, 180.0),
            (PhoneComponent::Gpu, 110.0),
            (PhoneComponent::Network, 95.0),
            (PhoneComponent::Memory, 55.0),
            (PhoneComponent::Audio, 33.0),
            (PhoneComponent::Rest, 85.0),
        ];
        Self { kind, entries }
    }

    /// Display kind this budget describes.
    pub fn kind(&self) -> DisplayKind {
        self.kind
    }

    /// Per-component entries in Fig. 1 order.
    pub fn entries(&self) -> &[(PhoneComponent, f64)] {
        &self.entries
    }

    /// Power of one component in milliwatts (0 if absent).
    pub fn milliwatts(&self, component: PhoneComponent) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == component)
            .map_or(0.0, |(_, mw)| *mw)
    }

    /// Total phone power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.entries.iter().map(|(_, mw)| mw).sum()
    }

    /// Fraction of total power one component accounts for.
    pub fn fraction(&self, component: PhoneComponent) -> f64 {
        self.milliwatts(component) / self.total_mw()
    }

    /// The component drawing the most power.
    pub fn dominant(&self) -> PhoneComponent {
        self.entries
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite power"))
            .map(|(c, _)| *c)
            .expect("budget is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dominates_on_both_panel_kinds() {
        for kind in [DisplayKind::Lcd, DisplayKind::Oled] {
            let b = ComponentBudget::video_playback(kind);
            assert_eq!(b.dominant(), PhoneComponent::Display, "{kind}");
            // Display alone beats every other component; it also exceeds
            // a third of the whole budget, the Fig. 1 takeaway.
            assert!(b.fraction(PhoneComponent::Display) > 0.33);
        }
    }

    #[test]
    fn oled_display_draws_more_than_lcd() {
        let lcd = ComponentBudget::video_playback(DisplayKind::Lcd);
        let oled = ComponentBudget::video_playback(DisplayKind::Oled);
        assert!(
            oled.milliwatts(PhoneComponent::Display) > lcd.milliwatts(PhoneComponent::Display)
        );
        // Non-display components are identical across phone classes.
        for c in PhoneComponent::ALL.into_iter().skip(1) {
            assert_eq!(lcd.milliwatts(c), oled.milliwatts(c));
        }
    }

    #[test]
    fn totals_are_plausible_phone_power() {
        // A streaming phone draws roughly 1–1.5 W in total.
        for kind in [DisplayKind::Lcd, DisplayKind::Oled] {
            let total = ComponentBudget::video_playback(kind).total_mw();
            assert!((900.0..1600.0).contains(&total), "total {total} mW");
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = ComponentBudget::video_playback(DisplayKind::Lcd);
        let sum: f64 = PhoneComponent::ALL.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_component_reports_zero() {
        let b = ComponentBudget { kind: DisplayKind::Lcd, entries: vec![] };
        assert_eq!(b.milliwatts(PhoneComponent::Cpu), 0.0);
    }
}
