//! OLED power model (per-channel emissive).
//!
//! Every OLED subpixel emits its own light, so panel power tracks the
//! displayed colors rather than a backlight: blue subpixels cost about
//! twice what green ones do, with red in between (Crayon — the paper's
//! ref. \[17\] — and the OLED literature it summarizes). The model here
//! is the standard linear-in-emitted-light form
//!
//! ```text
//! P = P_base + brightness · k_area · Σ_c w_c · E[v_c^γ]
//! ```
//!
//! with channel weights `w = (1.5, 1.0, 2.0)` and coefficients
//! calibrated so a full-white 6.4-inch phone panel draws ≈ 2.6 W at
//! maximum brightness.

use crate::spec::DisplaySpec;
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Relative per-channel energy cost (R, G, B): blue ≈ 2× green, red in
/// between.
pub const CHANNEL_WEIGHTS: [f64; 3] = [1.5, 1.0, 2.0];

/// Emissive power per cm² per weighted linear-light unit, calibrated so
/// full white on ~110 cm² ≈ 2.6 W at maximum brightness (flagship-class
/// panels measure 2.5–3 W): `2.6 / (110 · (1.5+1.0+2.0))`.
const EMISSIVE_W_PER_CM2: f64 = 2.6 / (110.0 * 4.5);

/// Driver/controller floor per cm² (drawn even on a black frame).
const BASE_W_PER_CM2: f64 = 0.0008;

/// Per-channel OLED power model for one display.
///
/// # Example
///
/// ```
/// use lpvs_display::oled::OledPowerModel;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// let spec = DisplaySpec::oled_phone(Resolution::FHD);
/// let model = OledPowerModel::for_spec(&spec);
/// // Black frames are nearly free on OLED.
/// let black = model.power_watts(&FrameStats::uniform_gray(0.0));
/// let white = model.power_watts(&FrameStats::uniform_gray(1.0));
/// assert!(white > 8.0 * black);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OledPowerModel {
    /// Driver floor (W).
    base_w: f64,
    /// Emissive coefficient: W per weighted linear-light unit.
    emissive_w: f64,
    /// Panel brightness setting in `[0, 1]`.
    brightness: f64,
    /// Fraction of subpixels currently enabled (subpixel-shutoff knob).
    enabled_fraction: f64,
}

impl OledPowerModel {
    /// Builds the model for a display specification, scaling by panel
    /// area and adopting the spec's brightness.
    pub fn for_spec(spec: &DisplaySpec) -> Self {
        let area = spec.area_cm2();
        Self {
            base_w: BASE_W_PER_CM2 * area,
            emissive_w: EMISSIVE_W_PER_CM2 * area,
            brightness: spec.brightness,
            enabled_fraction: 1.0,
        }
    }

    /// Returns a copy with only `fraction` of subpixels enabled (the
    /// knob subpixel-shutoff transforms turn).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction ≤ 1`.
    pub fn with_enabled_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "enabled fraction must be in (0, 1]"
        );
        self.enabled_fraction = fraction;
        self
    }

    /// Panel brightness setting.
    pub fn brightness(&self) -> f64 {
        self.brightness
    }

    /// Display power in watts when showing `frame`.
    pub fn power_watts(&self, frame: &FrameStats) -> f64 {
        let lm = frame.linear_mean();
        let weighted: f64 = CHANNEL_WEIGHTS.iter().zip(&lm).map(|(w, m)| w * m).sum();
        self.base_w
            + self.brightness * self.emissive_w * self.enabled_fraction * weighted
    }

    /// Power attributable to one channel (0 = R, 1 = G, 2 = B), in
    /// watts — useful to show where a color transform saves.
    ///
    /// # Panics
    ///
    /// Panics if `channel > 2`.
    pub fn channel_watts(&self, frame: &FrameStats, channel: usize) -> f64 {
        assert!(channel < 3, "channel index out of range");
        let m = frame.linear_mean()[channel];
        self.brightness * self.emissive_w * self.enabled_fraction * CHANNEL_WEIGHTS[channel] * m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;
    use crate::stats::GAMMA;

    fn model() -> OledPowerModel {
        OledPowerModel::for_spec(&DisplaySpec::oled_phone(Resolution::FHD))
    }

    #[test]
    fn blue_costs_twice_green() {
        let m = model();
        let blue = FrameStats::from_encoded_rgb([0.0, 0.0, 0.8], 0);
        let green = FrameStats::from_encoded_rgb([0.0, 0.8, 0.0], 0);
        let pb = m.power_watts(&blue) - m.power_watts(&FrameStats::uniform_gray(0.0));
        let pg = m.power_watts(&green) - m.power_watts(&FrameStats::uniform_gray(0.0));
        assert!((pb / pg - 2.0).abs() < 1e-9, "blue/green ratio {}", pb / pg);
    }

    #[test]
    fn red_between_green_and_blue() {
        let m = model();
        let base = m.power_watts(&FrameStats::uniform_gray(0.0));
        let red = m.power_watts(&FrameStats::from_encoded_rgb([0.8, 0.0, 0.0], 0)) - base;
        let green = m.power_watts(&FrameStats::from_encoded_rgb([0.0, 0.8, 0.0], 0)) - base;
        let blue = m.power_watts(&FrameStats::from_encoded_rgb([0.0, 0.0, 0.8], 0)) - base;
        assert!(green < red && red < blue);
    }

    #[test]
    fn full_white_is_calibrated() {
        // Full white at 100 % brightness on a 6.4" panel ≈ 2.6 W.
        let spec = DisplaySpec::oled_phone(Resolution::FHD).with_brightness(1.0);
        let watts = OledPowerModel::for_spec(&spec).power_watts(&FrameStats::uniform_gray(1.0));
        assert!((watts - 2.6).abs() < 0.35, "got {watts} W");
    }

    #[test]
    fn power_follows_gamma_curve() {
        // Half-gray emits (0.5)^2.2 ≈ 22 % of full-white light.
        let m = model();
        let base = m.power_watts(&FrameStats::uniform_gray(0.0));
        let half = m.power_watts(&FrameStats::uniform_gray(0.5)) - base;
        let full = m.power_watts(&FrameStats::uniform_gray(1.0)) - base;
        assert!((half / full - 0.5f64.powf(GAMMA)).abs() < 1e-9);
    }

    #[test]
    fn subpixel_shutoff_scales_emissive_power() {
        let frame = FrameStats::uniform_gray(0.7);
        let m = model();
        let full = m.power_watts(&frame);
        let cut = m.with_enabled_fraction(0.8).power_watts(&frame);
        let base = m.power_watts(&FrameStats::uniform_gray(0.0));
        assert!(((cut - base) / (full - base) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn channel_watts_sum_to_emissive_total() {
        let m = model();
        let frame = FrameStats::from_encoded_rgb([0.4, 0.7, 0.2], 3);
        let sum: f64 = (0..3).map(|c| m.channel_watts(&frame, c)).sum();
        let base = m.power_watts(&FrameStats::uniform_gray(0.0));
        assert!((sum - (m.power_watts(&frame) - base)).abs() < 1e-9);
    }

    #[test]
    fn brightness_scales_linearly() {
        let frame = FrameStats::uniform_gray(0.8);
        let dim_spec = DisplaySpec::oled_phone(Resolution::FHD).with_brightness(0.35);
        let bright_spec = DisplaySpec::oled_phone(Resolution::FHD).with_brightness(0.7);
        let base = OledPowerModel::for_spec(&bright_spec)
            .power_watts(&FrameStats::uniform_gray(0.0));
        let dim = OledPowerModel::for_spec(&dim_spec).power_watts(&frame) - base;
        let bright = OledPowerModel::for_spec(&bright_spec).power_watts(&frame) - base;
        assert!((bright / dim - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "enabled fraction")]
    fn zero_enabled_fraction_rejected() {
        let _ = model().with_enabled_fraction(0.0);
    }
}
