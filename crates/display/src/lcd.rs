//! LCD power model (backlight-dominated).
//!
//! Follows the structure of the dynamic-backlight-luminance-scaling
//! (DLS) model of Chang, Choi & Shim — the paper's ref. \[20\]: the
//! backlight draws power roughly linearly in its luminance setting and
//! dominates the panel's total draw, while the panel electronics add a
//! smaller, weakly content-dependent term (pixel drive/charge).
//! Coefficients are calibrated per unit panel area against published
//! phone measurements (Carroll & Heiser, the paper's ref. \[9\]).

use crate::spec::DisplaySpec;
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Backlight power per cm² at full luminance (W/cm²). Calibrated so a
/// ~100 cm² phone panel draws ≈ 1.3 W of backlight at 100 % (video is
/// watched bright; measured panels run 1.1–1.6 W).
const BACKLIGHT_W_PER_CM2: f64 = 0.013;

/// Minimum backlight electronics draw per cm² even at zero luminance.
const BACKLIGHT_FLOOR_W_PER_CM2: f64 = 0.0006;

/// Panel drive power per cm² at mid-gray content.
const PANEL_W_PER_CM2: f64 = 0.0030;

/// Relative swing of panel drive power across content (dark → bright).
const PANEL_CONTENT_SWING: f64 = 0.4;

/// Backlight + panel power model for one LCD.
///
/// # Example
///
/// ```
/// use lpvs_display::lcd::LcdPowerModel;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// let spec = DisplaySpec::lcd_phone(Resolution::FHD);
/// let model = LcdPowerModel::for_spec(&spec);
/// let frame = FrameStats::uniform_gray(0.5);
/// let watts = model.power_watts(&frame);
/// assert!(watts > 0.3 && watts < 2.0, "implausible LCD power {watts}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LcdPowerModel {
    /// Backlight draw at full luminance (W).
    backlight_max_w: f64,
    /// Backlight electronics floor (W).
    backlight_floor_w: f64,
    /// Panel drive power at mid-gray (W).
    panel_w: f64,
    /// Current backlight luminance setting in `[0, 1]`.
    backlight: f64,
}

impl LcdPowerModel {
    /// Builds the model for a display specification, scaling the
    /// coefficients by panel area and adopting the spec's brightness as
    /// the backlight setting.
    pub fn for_spec(spec: &DisplaySpec) -> Self {
        let area = spec.area_cm2();
        Self {
            backlight_max_w: BACKLIGHT_W_PER_CM2 * area,
            backlight_floor_w: BACKLIGHT_FLOOR_W_PER_CM2 * area,
            panel_w: PANEL_W_PER_CM2 * area,
            backlight: spec.brightness,
        }
    }

    /// Returns a copy with the backlight scaled by `scale` (the knob
    /// backlight-scaling transforms turn).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ scale ≤ 1`.
    pub fn with_backlight_scale(mut self, scale: f64) -> Self {
        assert!((0.0..=1.0).contains(&scale), "backlight scale must be in [0, 1]");
        self.backlight *= scale;
        self
    }

    /// Current backlight luminance setting.
    pub fn backlight(&self) -> f64 {
        self.backlight
    }

    /// Display power in watts when showing `frame`.
    ///
    /// The backlight term depends only on the luminance setting; the
    /// panel term swings mildly with mean content luminance (pixel
    /// drive).
    pub fn power_watts(&self, frame: &FrameStats) -> f64 {
        let backlight =
            self.backlight_floor_w + self.backlight_max_w * self.backlight;
        let content = 1.0 + PANEL_CONTENT_SWING * (frame.mean_luma() - 0.5);
        backlight + self.panel_w * content
    }

    /// Power of the backlight subsystem alone (W) — the part a scaling
    /// transform can reclaim.
    pub fn backlight_watts(&self) -> f64 {
        self.backlight_floor_w + self.backlight_max_w * self.backlight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    fn model() -> LcdPowerModel {
        LcdPowerModel::for_spec(&DisplaySpec::lcd_phone(Resolution::FHD))
    }

    #[test]
    fn power_scales_with_backlight() {
        let frame = FrameStats::uniform_gray(0.5);
        let full = model().with_backlight_scale(1.0).power_watts(&frame);
        let half = model().with_backlight_scale(0.5).power_watts(&frame);
        let off = model().with_backlight_scale(0.0).power_watts(&frame);
        assert!(full > half && half > off);
        // The backlight portion halves exactly (floor and panel remain).
        let m = model();
        let saved = m.backlight_watts() - m.with_backlight_scale(0.5).backlight_watts();
        assert!((saved - 0.5 * m.backlight_max_w * 0.7).abs() < 1e-9);
    }

    #[test]
    fn content_dependence_is_mild() {
        let m = model();
        let dark = m.power_watts(&FrameStats::uniform_gray(0.05));
        let bright = m.power_watts(&FrameStats::uniform_gray(0.95));
        assert!(bright > dark);
        // Content explains far less variation than the backlight does.
        let swing = (bright - dark) / dark;
        assert!(swing < 0.25, "content swing {swing} too large for an LCD");
    }

    #[test]
    fn plausible_absolute_power() {
        // A 6.1" phone LCD at 70 % brightness: several hundred mW.
        let watts = model().power_watts(&FrameStats::default());
        assert!(watts > 0.4 && watts < 1.5, "got {watts} W");
    }

    #[test]
    fn larger_panel_draws_more() {
        let small = DisplaySpec {
            diagonal_inches: 5.0,
            ..DisplaySpec::lcd_phone(Resolution::FHD)
        };
        let big = DisplaySpec {
            diagonal_inches: 6.8,
            ..DisplaySpec::lcd_phone(Resolution::FHD)
        };
        let frame = FrameStats::default();
        assert!(
            LcdPowerModel::for_spec(&big).power_watts(&frame)
                > LcdPowerModel::for_spec(&small).power_watts(&frame)
        );
    }

    #[test]
    fn backlight_watts_isolated() {
        let m = model();
        assert!(m.backlight_watts() < m.power_watts(&FrameStats::default()));
        assert!(m.backlight_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "backlight scale")]
    fn invalid_scale_rejected() {
        let _ = model().with_backlight_scale(1.2);
    }
}
