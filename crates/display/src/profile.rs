//! Display power profiles: per-chunk power over time.
//!
//! A [`PowerProfile`] is the watt-by-watt story of playing a piece of
//! content on a given display — the series the paper's Fig. 4 sketches
//! when it motivates per-chunk power rates. It supports peak/mean
//! statistics, total energy, and a terminal sparkline for quick
//! inspection.

use crate::spec::DisplaySpec;
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// A time series of display power over played chunks.
///
/// # Example
///
/// ```
/// use lpvs_display::profile::PowerProfile;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// let spec = DisplaySpec::oled_phone(Resolution::HD);
/// let frames = vec![
///     FrameStats::uniform_gray(0.2),
///     FrameStats::uniform_gray(0.8),
///     FrameStats::uniform_gray(0.5),
/// ];
/// let profile = PowerProfile::of(&frames, 10.0, &spec);
/// assert_eq!(profile.len(), 3);
/// assert!(profile.peak_watts() > profile.mean_watts());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// (duration s, watts) per chunk, in playback order.
    samples: Vec<(f64, f64)>,
}

impl PowerProfile {
    /// Profiles a sequence of equal-length chunks on `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_secs` is not strictly positive.
    pub fn of(frames: &[FrameStats], chunk_secs: f64, spec: &DisplaySpec) -> Self {
        assert!(chunk_secs > 0.0, "chunk duration must be positive");
        Self {
            samples: frames
                .iter()
                .map(|f| (chunk_secs, spec.power_watts(f)))
                .collect(),
        }
    }

    /// Builds a profile from explicit `(seconds, watts)` samples.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive durations or negative/non-finite powers.
    pub fn from_samples(samples: Vec<(f64, f64)>) -> Self {
        assert!(
            samples.iter().all(|&(d, w)| d > 0.0 && w.is_finite() && w >= 0.0),
            "samples must have positive durations and nonnegative power"
        );
        Self { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the profile holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw `(seconds, watts)` samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Total duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.iter().map(|(d, _)| d).sum()
    }

    /// Total energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.samples.iter().map(|(d, w)| d * w).sum()
    }

    /// Duration-weighted mean power (0 for an empty profile).
    pub fn mean_watts(&self) -> f64 {
        let t = self.duration_secs();
        if t <= 0.0 {
            0.0
        } else {
            self.energy_joules() / t
        }
    }

    /// Largest sample (0 for an empty profile).
    pub fn peak_watts(&self) -> f64 {
        self.samples.iter().map(|(_, w)| *w).fold(0.0, f64::max)
    }

    /// Smallest sample (0 for an empty profile).
    pub fn min_watts(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, w)| *w).fold(f64::INFINITY, f64::min)
    }

    /// Peak-to-mean ratio — how bursty the content's power is (1 for
    /// flat content; 0 for an empty profile).
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean_watts();
        if mean <= 0.0 {
            0.0
        } else {
            self.peak_watts() / mean
        }
    }

    /// A one-line Unicode sparkline of the power series, normalized to
    /// the profile's own range.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.samples.is_empty() {
            return String::new();
        }
        let max = self.peak_watts();
        let min = self.samples.iter().map(|(_, w)| *w).fold(f64::INFINITY, f64::min);
        let range = (max - min).max(1e-12);
        self.samples
            .iter()
            .map(|(_, w)| {
                let t = ((w - min) / range * (BARS.len() as f64 - 1.0)).round() as usize;
                BARS[t.min(BARS.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Resolution;

    fn profile() -> PowerProfile {
        let spec = DisplaySpec::oled_phone(Resolution::HD);
        let frames = vec![
            FrameStats::uniform_gray(0.2),
            FrameStats::uniform_gray(0.8),
            FrameStats::uniform_gray(0.5),
        ];
        PowerProfile::of(&frames, 10.0, &spec)
    }

    #[test]
    fn energy_is_sum_of_products() {
        let p = PowerProfile::from_samples(vec![(10.0, 1.0), (20.0, 0.5)]);
        assert!((p.energy_joules() - 20.0).abs() < 1e-12);
        assert!((p.duration_secs() - 30.0).abs() < 1e-12);
        assert!((p.mean_watts() - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn peak_and_burstiness() {
        let p = profile();
        assert!(p.peak_watts() >= p.mean_watts());
        assert!(p.burstiness() >= 1.0);
        let flat = PowerProfile::from_samples(vec![(1.0, 2.0); 5]);
        assert!((flat.burstiness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparkline_has_one_char_per_sample() {
        let p = profile();
        assert_eq!(p.sparkline().chars().count(), 3);
        // Brightest chunk renders the tallest bar.
        assert_eq!(p.sparkline().chars().nth(1), Some('█'));
    }

    #[test]
    fn empty_profile_is_benign() {
        let p = PowerProfile::from_samples(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.energy_joules(), 0.0);
        assert_eq!(p.mean_watts(), 0.0);
        assert_eq!(p.burstiness(), 0.0);
        assert_eq!(p.sparkline(), "");
    }

    #[test]
    #[should_panic(expected = "positive durations")]
    fn bad_samples_rejected() {
        let _ = PowerProfile::from_samples(vec![(0.0, 1.0)]);
    }
}
