//! Fitting display power-model coefficients from measurements.
//!
//! The models in [`crate::lcd`] and [`crate::oled`] ship with
//! literature-calibrated constants; anyone with a power meter and a few
//! test frames can re-calibrate them for their own panel. This module
//! provides the least-squares fits:
//!
//! * OLED: `watts = base + emissive · Σ_c w_c·E[v_c^γ]` — two
//!   parameters, closed-form simple regression;
//! * LCD: `watts = floor + bl_max·brightness + panel·drive(content)` —
//!   three parameters via the 3×3 normal equations.

use crate::oled::CHANNEL_WEIGHTS;
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// A fitted OLED model: `watts = base_w + emissive_w · weighted_light`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OledFit {
    /// Driver floor (W).
    pub base_w: f64,
    /// Emissive coefficient (W per weighted linear-light unit).
    pub emissive_w: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Fits the OLED power model to `(frame, measured watts)` samples taken
/// at a fixed brightness setting (fold the brightness into the emissive
/// coefficient, as the model is linear in it).
///
/// # Panics
///
/// Panics with fewer than two samples or when all frames carry the same
/// weighted light (the slope is then unidentifiable).
///
/// # Example
///
/// ```
/// use lpvs_display::calibration::fit_oled;
/// use lpvs_display::spec::{DisplaySpec, Resolution};
/// use lpvs_display::stats::FrameStats;
///
/// // Synthesize "measurements" from the built-in model, then recover it.
/// let spec = DisplaySpec::oled_phone(Resolution::FHD);
/// let samples: Vec<(FrameStats, f64)> = [0.1, 0.3, 0.5, 0.7, 0.9]
///     .iter()
///     .map(|&v| {
///         let f = FrameStats::uniform_gray(v);
///         let w = spec.power_watts(&f);
///         (f, w)
///     })
///     .collect();
/// let fit = fit_oled(&samples);
/// assert!(fit.r_squared > 0.9999);
/// ```
pub fn fit_oled(samples: &[(FrameStats, f64)]) -> OledFit {
    assert!(samples.len() >= 2, "need at least two samples");
    let points: Vec<(f64, f64)> = samples
        .iter()
        .map(|(frame, watts)| {
            let lm = frame.linear_mean();
            let weighted: f64 = CHANNEL_WEIGHTS.iter().zip(&lm).map(|(w, m)| w * m).sum();
            (weighted, *watts)
        })
        .collect();
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    assert!(sxx > 1e-12, "frames must span different light levels");
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let emissive_w = sxy / sxx;
    let base_w = my - emissive_w * mx;
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (base_w + emissive_w * p.0)).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r_squared = if ss_tot <= 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    OledFit { base_w, emissive_w, r_squared }
}

/// A fitted LCD model:
/// `watts = floor_w + backlight_w·brightness + panel_w·drive`, where
/// `drive = 1 + 0.4·(mean_luma − 0.5)` matches [`crate::lcd`]'s content
/// term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LcdFit {
    /// Backlight electronics floor (W).
    pub floor_w: f64,
    /// Backlight draw at full luminance (W).
    pub backlight_w: f64,
    /// Panel drive power at mid-gray (W).
    pub panel_w: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Fits the LCD power model to `(frame, brightness, measured watts)`
/// samples spanning several brightness settings and content levels.
///
/// # Panics
///
/// Panics with fewer than three samples or when the design matrix is
/// singular (all brightnesses equal, or all contents equal).
pub fn fit_lcd(samples: &[(FrameStats, f64, f64)]) -> LcdFit {
    assert!(samples.len() >= 3, "need at least three samples");
    // Design: columns (1, brightness, drive); solve AᵀA θ = Aᵀy.
    let rows: Vec<([f64; 3], f64)> = samples
        .iter()
        .map(|(frame, brightness, watts)| {
            let drive = 1.0 + 0.4 * (frame.mean_luma() - 0.5);
            ([1.0, *brightness, drive], *watts)
        })
        .collect();
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (a, y) in &rows {
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += a[i] * a[j];
            }
            aty[i] += a[i] * y;
        }
    }
    let theta = solve3(ata, aty).expect("design matrix is singular");
    let my = rows.iter().map(|(_, y)| y).sum::<f64>() / rows.len() as f64;
    let ss_res: f64 = rows
        .iter()
        .map(|(a, y)| {
            let pred = theta[0] + theta[1] * a[1] + theta[2] * a[2];
            (y - pred).powi(2)
        })
        .sum();
    let ss_tot: f64 = rows.iter().map(|(_, y)| (y - my).powi(2)).sum();
    let r_squared = if ss_tot <= 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    LcdFit { floor_w: theta[0], backlight_w: theta[1], panel_w: theta[2], r_squared }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting; `None` when (numerically) singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (v, p) in a[row][col..3].iter_mut().zip(&pivot_row[col..3]) {
                *v -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcd::LcdPowerModel;
    use crate::spec::{DisplaySpec, Resolution};

    #[test]
    fn oled_fit_recovers_the_builtin_model() {
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let samples: Vec<(FrameStats, f64)> = (1..10)
            .map(|i| {
                let f = FrameStats::uniform_gray(i as f64 / 10.0);
                let w = spec.power_watts(&f);
                (f, w)
            })
            .collect();
        let fit = fit_oled(&samples);
        assert!(fit.r_squared > 1.0 - 1e-9);
        // Reconstructed power matches the model on unseen content.
        let probe = FrameStats::from_encoded_rgb([0.3, 0.7, 0.5], 4);
        let lm = probe.linear_mean();
        let weighted: f64 = CHANNEL_WEIGHTS.iter().zip(&lm).map(|(w, m)| w * m).sum();
        let predicted = fit.base_w + fit.emissive_w * weighted;
        assert!((predicted - spec.power_watts(&probe)).abs() < 1e-6);
    }

    #[test]
    fn oled_fit_tolerates_measurement_noise() {
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let samples: Vec<(FrameStats, f64)> = (1..20)
            .map(|i| {
                let f = FrameStats::uniform_gray(i as f64 / 20.0);
                let noise = if i % 2 == 0 { 0.004 } else { -0.004 };
                let w = spec.power_watts(&f) + noise;
                (f, w)
            })
            .collect();
        let fit = fit_oled(&samples);
        assert!(fit.r_squared > 0.99);
        assert!(fit.emissive_w > 0.0);
    }

    #[test]
    fn lcd_fit_recovers_the_builtin_model() {
        let mut samples = Vec::new();
        for &b in &[0.3, 0.5, 0.7, 0.9] {
            for &v in &[0.2, 0.5, 0.8] {
                let spec = DisplaySpec::lcd_phone(Resolution::FHD).with_brightness(b);
                let f = FrameStats::uniform_gray(v);
                let w = LcdPowerModel::for_spec(&spec).power_watts(&f);
                samples.push((f, b, w));
            }
        }
        let fit = fit_lcd(&samples);
        assert!(fit.r_squared > 1.0 - 1e-9, "R² {}", fit.r_squared);
        // The recovered backlight coefficient matches the reference
        // model's (1.3 W/100 cm² × ~102.5 cm²).
        assert!((fit.backlight_w - 0.013 * 102.5).abs() < 0.05, "{}", fit.backlight_w);
        assert!(fit.panel_w > 0.0);
    }

    #[test]
    fn solve3_handles_permuted_systems() {
        // x = 1, y = 2, z = 3 under a matrix needing pivoting.
        let a = [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 2.0]];
        let b = [2.0, 1.0, 6.0];
        let x = solve3(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve3_reports_singularity() {
        let a = [[1.0, 1.0, 1.0], [2.0, 2.0, 2.0], [0.0, 0.0, 1.0]];
        assert!(solve3(a, [1.0, 2.0, 1.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "different light levels")]
    fn degenerate_oled_samples_rejected() {
        let f = FrameStats::uniform_gray(0.5);
        let _ = fit_oled(&[(f.clone(), 1.0), (f, 1.0)]);
    }
}
