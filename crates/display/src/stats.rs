//! Compact per-frame content statistics.
//!
//! Every power model and transform in this workspace operates on
//! statistics rather than pixel buffers: a normalized luminance
//! histogram plus per-channel linear-light means. This is exactly the
//! information the published display power models consume — backlight
//! scaling needs the luminance distribution to pick a clipping point
//! (DLS, paper ref. \[20\]); the OLED model needs per-channel emitted
//! light (Crayon, paper ref. \[17\]) — so working at this level preserves
//! the power behaviour while letting the emulator synthesize millions
//! of chunks cheaply.

use serde::{Deserialize, Serialize};

/// Number of luminance histogram bins.
pub const LUMA_BINS: usize = 64;

/// Display gamma used to convert encoded pixel values to linear light.
pub const GAMMA: f64 = 2.2;

/// Content statistics of one frame (or one chunk, averaged).
///
/// Invariants: the histogram is normalized (sums to 1 within floating
/// error) and all channel means lie in `[0, 1]`.
///
/// # Example
///
/// ```
/// use lpvs_display::stats::FrameStats;
///
/// let dark = FrameStats::uniform_gray(0.2);
/// let bright = FrameStats::uniform_gray(0.9);
/// assert!(bright.mean_luma() > dark.mean_luma());
/// assert!(bright.linear_mean()[2] > dark.linear_mean()[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Normalized histogram of encoded luminance values in `[0, 1]`.
    #[serde(with = "hist_serde")]
    luma_hist: [f64; LUMA_BINS],
    /// Mean *linear-light* value per RGB channel (mean of `v^γ`).
    rgb_linear_mean: [f64; 3],
}

impl FrameStats {
    /// Builds statistics from a raw (not necessarily normalized)
    /// luminance histogram and per-channel linear-light means.
    ///
    /// # Panics
    ///
    /// Panics if the histogram has no mass, any bin is negative, or a
    /// channel mean is outside `[0, 1]`.
    pub fn new(luma_hist: [f64; LUMA_BINS], rgb_linear_mean: [f64; 3]) -> Self {
        let total: f64 = luma_hist.iter().sum();
        assert!(total > 0.0, "histogram must have positive mass");
        assert!(luma_hist.iter().all(|&b| b >= 0.0), "histogram bins must be nonnegative");
        assert!(
            rgb_linear_mean.iter().all(|&m| (0.0..=1.0).contains(&m)),
            "channel means must be in [0, 1]"
        );
        let mut normalized = luma_hist;
        for b in &mut normalized {
            *b /= total;
        }
        Self { luma_hist: normalized, rgb_linear_mean }
    }

    /// A flat gray frame with encoded value `v` on all channels.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `[0, 1]`.
    pub fn uniform_gray(v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "gray level must be in [0, 1]");
        let mut hist = [0.0; LUMA_BINS];
        hist[bin_of(v)] = 1.0;
        let linear = v.powf(GAMMA);
        Self { luma_hist: hist, rgb_linear_mean: [linear; 3] }
    }

    /// Builds statistics from encoded per-channel mean values, deriving
    /// the luminance histogram as a spread around the Rec. 709 luma of
    /// those means.
    ///
    /// `spread` (in bins, ≥ 0) widens the synthetic histogram to mimic
    /// natural content; 0 gives a delta spike.
    ///
    /// # Panics
    ///
    /// Panics if any channel value is outside `[0, 1]`.
    pub fn from_encoded_rgb(rgb: [f64; 3], spread: usize) -> Self {
        assert!(
            rgb.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "channel values must be in [0, 1]"
        );
        let luma = 0.2126 * rgb[0] + 0.7152 * rgb[1] + 0.0722 * rgb[2];
        let center = bin_of(luma);
        let mut hist = [0.0; LUMA_BINS];
        if spread == 0 {
            hist[center] = 1.0;
        } else {
            // Triangular kernel around the center bin.
            let s = spread as i64;
            for d in -s..=s {
                let idx = center as i64 + d;
                if (0..LUMA_BINS as i64).contains(&idx) {
                    hist[idx as usize] += (s + 1 - d.abs()) as f64;
                }
            }
        }
        let linear = [rgb[0].powf(GAMMA), rgb[1].powf(GAMMA), rgb[2].powf(GAMMA)];
        Self::new(hist, linear)
    }

    /// Normalized luminance histogram.
    pub fn luma_hist(&self) -> &[f64; LUMA_BINS] {
        &self.luma_hist
    }

    /// Mean linear-light value per RGB channel.
    pub fn linear_mean(&self) -> [f64; 3] {
        self.rgb_linear_mean
    }

    /// Mean encoded luminance, taken over the histogram (bin centers).
    pub fn mean_luma(&self) -> f64 {
        self.luma_hist
            .iter()
            .enumerate()
            .map(|(i, &p)| p * bin_center(i))
            .sum()
    }

    /// Fraction of pixels with encoded luminance strictly above `v`.
    pub fn fraction_above(&self, v: f64) -> f64 {
        let v = v.clamp(0.0, 1.0);
        self.luma_hist
            .iter()
            .enumerate()
            .filter(|(i, _)| bin_center(*i) > v)
            .map(|(_, &p)| p)
            .sum()
    }

    /// Smallest `v` such that at most `fraction` of pixels exceed `v`
    /// (a high-percentile luminance used by backlight scaling).
    pub fn percentile(&self, fraction: f64) -> f64 {
        let target = fraction.clamp(0.0, 1.0);
        let mut above = 0.0;
        for i in (0..LUMA_BINS).rev() {
            above += self.luma_hist[i];
            if above > target {
                return bin_center(i);
            }
        }
        0.0
    }

    /// Statistics after backlight compensation by `1/scale` with
    /// clipping at 1.0 (the content side of LCD backlight scaling).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale ≤ 1`.
    pub fn compensate(&self, scale: f64) -> FrameStats {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut hist = [0.0; LUMA_BINS];
        for (i, &p) in self.luma_hist.iter().enumerate() {
            let boosted = (bin_center(i) / scale).min(1.0);
            hist[bin_of(boosted)] += p;
        }
        let gain = (1.0 / scale).powf(GAMMA);
        let linear = self.rgb_linear_mean.map(|m| (m * gain).min(1.0));
        FrameStats { luma_hist: hist, rgb_linear_mean: linear }
    }

    /// Statistics after scaling each encoded channel by the given
    /// factors in `[0, 1]` (OLED color transforms).
    ///
    /// The luminance histogram is remapped by the luma-weighted average
    /// of the factors.
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `[0, 1]`.
    pub fn scale_channels(&self, factors: [f64; 3]) -> FrameStats {
        assert!(
            factors.iter().all(|&f| (0.0..=1.0).contains(&f)),
            "channel factors must be in [0, 1]"
        );
        let linear = [
            self.rgb_linear_mean[0] * factors[0].powf(GAMMA),
            self.rgb_linear_mean[1] * factors[1].powf(GAMMA),
            self.rgb_linear_mean[2] * factors[2].powf(GAMMA),
        ];
        let luma_factor = 0.2126 * factors[0] + 0.7152 * factors[1] + 0.0722 * factors[2];
        let mut hist = [0.0; LUMA_BINS];
        for (i, &p) in self.luma_hist.iter().enumerate() {
            hist[bin_of(bin_center(i) * luma_factor)] += p;
        }
        FrameStats { luma_hist: hist, rgb_linear_mean: linear }
    }

    /// Pixel-weighted blend of several frames' statistics, e.g. to
    /// summarize a chunk from its frames. Returns `None` on empty input.
    pub fn blend<'a, I: IntoIterator<Item = &'a FrameStats>>(frames: I) -> Option<FrameStats> {
        let mut hist = [0.0; LUMA_BINS];
        let mut linear = [0.0; 3];
        let mut count = 0usize;
        for f in frames {
            for (h, &p) in hist.iter_mut().zip(&f.luma_hist) {
                *h += p;
            }
            for (l, &m) in linear.iter_mut().zip(&f.rgb_linear_mean) {
                *l += m;
            }
            count += 1;
        }
        if count == 0 {
            return None;
        }
        for l in &mut linear {
            *l /= count as f64;
        }
        Some(FrameStats::new(hist, linear))
    }
}

impl Default for FrameStats {
    /// Mid-gray content, a neutral stand-in.
    fn default() -> Self {
        Self::uniform_gray(0.5)
    }
}

// Referenced via `#[serde(with = "hist_serde")]`; the vendored derive
// does not emit that reference, so the lint cannot see the use.
#[allow(dead_code)]
mod hist_serde {
    //! Serde shims for the fixed-size histogram (serde's built-in array
    //! impls stop at 32 elements).
    use super::LUMA_BINS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(hist: &[f64; LUMA_BINS], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(hist.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[f64; LUMA_BINS], D::Error> {
        let v = Vec::<f64>::deserialize(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| D::Error::custom(format!("expected {LUMA_BINS} bins, got {n}")))
    }
}

/// Histogram bin index of an encoded value in `[0, 1]`.
pub fn bin_of(v: f64) -> usize {
    ((v.clamp(0.0, 1.0) * LUMA_BINS as f64) as usize).min(LUMA_BINS - 1)
}

/// Encoded value at the center of bin `i`.
pub fn bin_center(i: usize) -> f64 {
    (i as f64 + 0.5) / LUMA_BINS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_normalized() {
        let mut raw = [0.0; LUMA_BINS];
        raw[10] = 3.0;
        raw[20] = 1.0;
        let s = FrameStats::new(raw, [0.5, 0.5, 0.5]);
        let total: f64 = s.luma_hist().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.luma_hist()[10] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_gray_round_trip() {
        let s = FrameStats::uniform_gray(0.5);
        assert!((s.mean_luma() - 0.5).abs() < 1.0 / LUMA_BINS as f64);
        let lin = s.linear_mean();
        assert!((lin[0] - 0.5f64.powf(GAMMA)).abs() < 1e-12);
    }

    #[test]
    fn fraction_above_and_percentile_agree() {
        let s = FrameStats::from_encoded_rgb([0.8, 0.8, 0.8], 4);
        let p99 = s.percentile(0.01);
        assert!(s.fraction_above(p99) <= 0.01 + 1e-9);
        // One bin lower must exceed the budget.
        assert!(s.fraction_above(p99 - 1.5 / LUMA_BINS as f64) > 0.01);
    }

    #[test]
    fn compensate_brightens_content() {
        let s = FrameStats::uniform_gray(0.4);
        let boosted = s.compensate(0.5);
        assert!(boosted.mean_luma() > s.mean_luma());
        // 0.4 / 0.5 = 0.8, no clipping.
        assert!((boosted.mean_luma() - 0.8).abs() < 1.0 / LUMA_BINS as f64);
    }

    #[test]
    fn compensate_clips_at_white() {
        let s = FrameStats::uniform_gray(0.9);
        let boosted = s.compensate(0.5);
        assert!(boosted.mean_luma() <= 1.0);
        assert!(boosted.linear_mean().iter().all(|&m| m <= 1.0));
    }

    #[test]
    fn scale_channels_reduces_light() {
        let s = FrameStats::uniform_gray(0.8);
        let darker = s.scale_channels([0.9, 0.95, 0.7]);
        let before = s.linear_mean();
        let after = darker.linear_mean();
        for c in 0..3 {
            assert!(after[c] < before[c]);
        }
        assert!(darker.mean_luma() < s.mean_luma());
    }

    #[test]
    fn scale_channels_identity() {
        let s = FrameStats::from_encoded_rgb([0.3, 0.6, 0.2], 3);
        let same = s.scale_channels([1.0, 1.0, 1.0]);
        assert!((same.mean_luma() - s.mean_luma()).abs() < 1e-9);
        assert_eq!(same.linear_mean(), s.linear_mean());
    }

    #[test]
    fn blend_averages() {
        let a = FrameStats::uniform_gray(0.2);
        let b = FrameStats::uniform_gray(0.8);
        let m = FrameStats::blend([&a, &b]).unwrap();
        assert!((m.mean_luma() - 0.5).abs() < 1.0 / LUMA_BINS as f64);
        assert!(FrameStats::blend(std::iter::empty()).is_none());
    }

    #[test]
    fn bin_mapping_is_consistent() {
        for i in 0..LUMA_BINS {
            assert_eq!(bin_of(bin_center(i)), i);
        }
        assert_eq!(bin_of(-0.5), 0);
        assert_eq!(bin_of(1.5), LUMA_BINS - 1);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn empty_histogram_rejected() {
        let _ = FrameStats::new([0.0; LUMA_BINS], [0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = FrameStats::default().compensate(0.0);
    }
}
