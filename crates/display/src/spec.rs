//! Display specifications: panel kind, resolution, physical size, and
//! the user's brightness setting.
//!
//! A [`DisplaySpec`] is what a device reports to the LPVS scheduler at
//! each scheduling point (paper §VI-B "information gathering"): the
//! transform family and the power model are both chosen from it.

use crate::lcd::LcdPowerModel;
use crate::oled::OledPowerModel;
use crate::stats::FrameStats;
use serde::{Deserialize, Serialize};

/// Panel technology of a display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisplayKind {
    /// Liquid-crystal display: a backlight illuminates the panel, so
    /// power tracks brightness, not content color.
    Lcd,
    /// Organic LED: every subpixel emits its own light, so power tracks
    /// the displayed colors (blue ≈ 2× green, red in between).
    Oled,
}

impl std::fmt::Display for DisplayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DisplayKind::Lcd => "LCD",
            DisplayKind::Oled => "OLED",
        })
    }
}

/// Display resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Horizontal pixel count.
    pub width: u32,
    /// Vertical pixel count.
    pub height: u32,
}

impl Resolution {
    /// 854 × 480 ("480p").
    pub const SD: Resolution = Resolution { width: 854, height: 480 };
    /// 1280 × 720 ("720p").
    pub const HD: Resolution = Resolution { width: 1280, height: 720 };
    /// 1920 × 1080 ("1080p").
    pub const FHD: Resolution = Resolution { width: 1920, height: 1080 };
    /// 2560 × 1440 ("1440p").
    pub const QHD: Resolution = Resolution { width: 2560, height: 1440 };
    /// 3840 × 2160 ("4K").
    pub const UHD: Resolution = Resolution { width: 3840, height: 2160 };

    /// The resolution ladder a live-streaming service typically offers,
    /// ascending.
    pub const LADDER: [Resolution; 5] = [
        Resolution::SD,
        Resolution::HD,
        Resolution::FHD,
        Resolution::QHD,
        Resolution::UHD,
    ];

    /// Total pixel count.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Human-readable short name (`"720p"`, `"4K"`, or `WxH` for
    /// non-standard sizes).
    pub fn short_name(&self) -> String {
        match *self {
            Resolution::SD => "480p".to_owned(),
            Resolution::HD => "720p".to_owned(),
            Resolution::FHD => "1080p".to_owned(),
            Resolution::QHD => "1440p".to_owned(),
            Resolution::UHD => "4K".to_owned(),
            Resolution { width, height } => format!("{width}x{height}"),
        }
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// Full description of one device's display, as reported to the
/// scheduler.
///
/// # Example
///
/// ```
/// use lpvs_display::spec::{DisplayKind, DisplaySpec, Resolution};
///
/// let spec = DisplaySpec::lcd_phone(Resolution::HD);
/// assert_eq!(spec.kind, DisplayKind::Lcd);
/// assert!(spec.area_cm2() > 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisplaySpec {
    /// Panel technology.
    pub kind: DisplayKind,
    /// Pixel resolution.
    pub resolution: Resolution,
    /// Physical diagonal in inches.
    pub diagonal_inches: f64,
    /// User brightness setting in `[0, 1]`; video is typically watched
    /// near 0.6–0.8.
    pub brightness: f64,
}

impl DisplaySpec {
    /// A typical LCD phone: 6.1-inch panel at 70 % brightness.
    pub fn lcd_phone(resolution: Resolution) -> Self {
        Self { kind: DisplayKind::Lcd, resolution, diagonal_inches: 6.1, brightness: 0.7 }
    }

    /// A typical OLED phone: 6.4-inch panel at 70 % brightness.
    pub fn oled_phone(resolution: Resolution) -> Self {
        Self { kind: DisplayKind::Oled, resolution, diagonal_inches: 6.4, brightness: 0.7 }
    }

    /// Returns a copy with the given brightness setting.
    ///
    /// # Panics
    ///
    /// Panics if `brightness` is outside `[0, 1]`.
    pub fn with_brightness(mut self, brightness: f64) -> Self {
        assert!((0.0..=1.0).contains(&brightness), "brightness must be in [0, 1]");
        self.brightness = brightness;
        self
    }

    /// Physical panel area in cm², assuming the aspect ratio implied by
    /// the resolution.
    pub fn area_cm2(&self) -> f64 {
        let w = f64::from(self.resolution.width);
        let h = f64::from(self.resolution.height);
        let aspect = w / h;
        // diagonal² = width² + height², width = aspect · height.
        let diag_cm = self.diagonal_inches * 2.54;
        let height_cm = diag_cm / (1.0 + aspect * aspect).sqrt();
        let width_cm = aspect * height_cm;
        width_cm * height_cm
    }

    /// Display power in watts when showing a frame with the given
    /// content statistics, dispatching to the panel's model.
    pub fn power_watts(&self, frame: &FrameStats) -> f64 {
        match self.kind {
            DisplayKind::Lcd => LcdPowerModel::for_spec(self).power_watts(frame),
            DisplayKind::Oled => OledPowerModel::for_spec(self).power_watts(frame),
        }
    }
}

impl Default for DisplaySpec {
    fn default() -> Self {
        Self::oled_phone(Resolution::FHD)
    }
}

impl std::fmt::Display for DisplaySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {:.1}\" {} @ {:.0}%",
            self.kind,
            self.diagonal_inches,
            self.resolution,
            self.brightness * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ascending() {
        for pair in Resolution::LADDER.windows(2) {
            assert!(pair[0].pixels() < pair[1].pixels());
        }
    }

    #[test]
    fn pixel_counts() {
        assert_eq!(Resolution::FHD.pixels(), 2_073_600);
        assert_eq!(Resolution::UHD.pixels(), 4 * Resolution::FHD.pixels());
    }

    #[test]
    fn short_names() {
        assert_eq!(Resolution::HD.short_name(), "720p");
        assert_eq!(Resolution { width: 640, height: 360 }.short_name(), "640x360");
    }

    #[test]
    fn area_matches_hand_calculation() {
        // 16:9 6.1" panel: height = d/√(1+(16/9)²) ≈ 7.59 cm,
        // width ≈ 13.50 cm, area ≈ 102.5 cm².
        let spec = DisplaySpec::lcd_phone(Resolution::FHD);
        let area = spec.area_cm2();
        assert!((area - 102.5).abs() < 1.0, "area {area}");
    }

    #[test]
    fn brighter_setting_uses_more_lcd_power() {
        let frame = FrameStats::uniform_gray(0.5);
        let dim = DisplaySpec::lcd_phone(Resolution::FHD).with_brightness(0.3);
        let bright = DisplaySpec::lcd_phone(Resolution::FHD).with_brightness(0.9);
        assert!(bright.power_watts(&frame) > dim.power_watts(&frame));
    }

    #[test]
    fn brighter_content_uses_more_oled_power() {
        let spec = DisplaySpec::oled_phone(Resolution::FHD);
        let dark = FrameStats::uniform_gray(0.2);
        let bright = FrameStats::uniform_gray(0.9);
        assert!(spec.power_watts(&bright) > spec.power_watts(&dark));
    }

    #[test]
    #[should_panic(expected = "brightness")]
    fn out_of_range_brightness_rejected() {
        let _ = DisplaySpec::default().with_brightness(1.5);
    }

    #[test]
    fn display_formatting() {
        let s = DisplaySpec::oled_phone(Resolution::FHD).to_string();
        assert!(s.contains("OLED"));
        assert!(s.contains("1080p"));
    }
}
