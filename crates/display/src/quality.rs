//! Distortion metrics and quality budgets for content transforms.
//!
//! Every transform trades display energy against perceptual fidelity.
//! The human visual system tolerates small luminance clipping and small
//! color shifts (the paper's §II-B and its refs. \[11\], \[17\]); a
//! [`QualityBudget`] encodes how much of each kind of distortion a
//! deployment allows, and a [`Distortion`] reports how much a transform
//! actually introduced.

use serde::{Deserialize, Serialize};

/// Distortion introduced by one transform application.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Distortion {
    /// Fraction of pixels whose luminance was clipped (backlight
    /// scaling), in `[0, 1]`.
    pub clipped_fraction: f64,
    /// Mean relative luminance lost to clipping, in `[0, 1]`.
    pub luminance_loss: f64,
    /// RMS relative shift of the color channels, in `[0, 1]`
    /// (0 = identical colors).
    pub color_shift: f64,
    /// Fraction of spatial detail lost (subpixel shutoff/resolution
    /// scaling), in `[0, 1]`.
    pub resolution_loss: f64,
}

impl Distortion {
    /// A transform that changed nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Scalar perceptual score in `[0, 1]`: 0 = imperceptible,
    /// 1 = unwatchable. A weighted RMS of the component distortions,
    /// with clipping weighted hardest (highlight loss is the most
    /// visible artifact in video).
    pub fn perceptual_score(&self) -> f64 {
        let terms = [
            3.0 * self.luminance_loss,
            2.0 * self.clipped_fraction,
            1.5 * self.color_shift,
            1.0 * self.resolution_loss,
        ];
        let ss: f64 = terms.iter().map(|t| t * t).sum();
        (ss / terms.len() as f64).sqrt().min(1.0)
    }

    /// True if every component is within `budget`.
    pub fn within(&self, budget: &QualityBudget) -> bool {
        self.clipped_fraction <= budget.max_clipped_fraction + 1e-12
            && self.luminance_loss <= budget.max_luminance_loss + 1e-12
            && self.color_shift <= budget.max_color_shift + 1e-12
            && self.resolution_loss <= budget.max_resolution_loss + 1e-12
    }
}

/// How much distortion a deployment tolerates.
///
/// The defaults follow the "negligible/tolerable for human perception"
/// operating points of the cited transform papers: clip at most 1 % of
/// pixels, lose at most 2 % mean luminance, shift colors by at most
/// 15 % RMS, drop at most 20 % of subpixels.
///
/// # Example
///
/// ```
/// use lpvs_display::quality::{Distortion, QualityBudget};
///
/// let strict = QualityBudget::strict();
/// let lax = QualityBudget::default();
/// let d = Distortion { color_shift: 0.10, ..Distortion::none() };
/// assert!(d.within(&lax));
/// assert!(!d.within(&strict));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityBudget {
    /// Maximum fraction of clipped pixels.
    pub max_clipped_fraction: f64,
    /// Maximum mean relative luminance loss.
    pub max_luminance_loss: f64,
    /// Maximum RMS color shift.
    pub max_color_shift: f64,
    /// Maximum resolution/detail loss.
    pub max_resolution_loss: f64,
}

impl QualityBudget {
    /// A conservative budget for quality-sensitive content.
    pub fn strict() -> Self {
        Self {
            max_clipped_fraction: 0.002,
            max_luminance_loss: 0.005,
            max_color_shift: 0.05,
            max_resolution_loss: 0.05,
        }
    }

    /// An aggressive budget favouring battery life over fidelity (the
    /// regime a low-battery user would opt into).
    pub fn aggressive() -> Self {
        Self {
            max_clipped_fraction: 0.05,
            max_luminance_loss: 0.08,
            max_color_shift: 0.30,
            max_resolution_loss: 0.30,
        }
    }
}

impl Default for QualityBudget {
    fn default() -> Self {
        Self {
            max_clipped_fraction: 0.01,
            max_luminance_loss: 0.02,
            max_color_shift: 0.15,
            max_resolution_loss: 0.20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_distortion_scores_zero_and_fits_any_budget() {
        let d = Distortion::none();
        assert_eq!(d.perceptual_score(), 0.0);
        assert!(d.within(&QualityBudget::strict()));
        assert!(d.within(&QualityBudget::default()));
    }

    #[test]
    fn score_monotone_in_each_component() {
        let base = Distortion { color_shift: 0.1, ..Distortion::none() };
        let worse = Distortion { color_shift: 0.2, ..Distortion::none() };
        assert!(worse.perceptual_score() > base.perceptual_score());
        let worse_lum = Distortion { luminance_loss: 0.05, ..base };
        assert!(worse_lum.perceptual_score() > base.perceptual_score());
    }

    #[test]
    fn score_saturates_at_one() {
        let d = Distortion {
            clipped_fraction: 1.0,
            luminance_loss: 1.0,
            color_shift: 1.0,
            resolution_loss: 1.0,
        };
        assert_eq!(d.perceptual_score(), 1.0);
    }

    #[test]
    fn budgets_are_ordered() {
        let strict = QualityBudget::strict();
        let default = QualityBudget::default();
        let aggressive = QualityBudget::aggressive();
        assert!(strict.max_color_shift < default.max_color_shift);
        assert!(default.max_color_shift < aggressive.max_color_shift);
        assert!(strict.max_clipped_fraction < aggressive.max_clipped_fraction);
    }

    #[test]
    fn within_checks_every_axis() {
        let budget = QualityBudget::default();
        for d in [
            Distortion { clipped_fraction: 0.5, ..Distortion::none() },
            Distortion { luminance_loss: 0.5, ..Distortion::none() },
            Distortion { color_shift: 0.5, ..Distortion::none() },
            Distortion { resolution_loss: 0.5, ..Distortion::none() },
        ] {
            assert!(!d.within(&budget));
        }
    }
}
