//! Color-space conversions and hue-shift measurement.
//!
//! The OLED color transforms trade energy against color fidelity; the
//! perceptual studies they cite bound the *hue* shift much tighter than
//! the *brightness* shift (dimming is far less objectionable than
//! tinting). This module provides RGB↔HSV conversion and a hue-shift
//! metric so that property tests can verify the transforms stay in the
//! validated regime: uniform darkening keeps hue exactly, per-channel
//! attenuation shifts it boundedly.

use serde::{Deserialize, Serialize};

/// A color in HSV: hue in degrees `[0, 360)`, saturation and value in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hsv {
    /// Hue angle in degrees, `[0, 360)`; 0 for grays.
    pub hue: f64,
    /// Saturation in `[0, 1]`.
    pub saturation: f64,
    /// Value (max channel) in `[0, 1]`.
    pub value: f64,
}

/// Converts an encoded RGB triple (each in `[0, 1]`) to HSV.
///
/// # Panics
///
/// Panics if any channel is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use lpvs_display::colorspace::rgb_to_hsv;
///
/// let red = rgb_to_hsv([1.0, 0.0, 0.0]);
/// assert_eq!(red.hue, 0.0);
/// let green = rgb_to_hsv([0.0, 1.0, 0.0]);
/// assert_eq!(green.hue, 120.0);
/// ```
pub fn rgb_to_hsv(rgb: [f64; 3]) -> Hsv {
    assert!(
        rgb.iter().all(|c| (0.0..=1.0).contains(c)),
        "channels must be in [0, 1]"
    );
    let [r, g, b] = rgb;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    let hue = if delta <= 1e-12 {
        0.0
    } else if (max - r).abs() <= 1e-12 {
        60.0 * (((g - b) / delta).rem_euclid(6.0))
    } else if (max - g).abs() <= 1e-12 {
        60.0 * ((b - r) / delta + 2.0)
    } else {
        60.0 * ((r - g) / delta + 4.0)
    };
    let saturation = if max <= 1e-12 { 0.0 } else { delta / max };
    Hsv { hue, saturation, value: max }
}

/// Converts HSV back to encoded RGB.
///
/// # Panics
///
/// Panics if saturation or value is outside `[0, 1]`.
pub fn hsv_to_rgb(hsv: Hsv) -> [f64; 3] {
    assert!(
        (0.0..=1.0).contains(&hsv.saturation) && (0.0..=1.0).contains(&hsv.value),
        "saturation and value must be in [0, 1]"
    );
    let h = hsv.hue.rem_euclid(360.0) / 60.0;
    let c = hsv.value * hsv.saturation;
    let x = c * (1.0 - (h.rem_euclid(2.0) - 1.0).abs());
    let m = hsv.value - c;
    let (r, g, b) = match h as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [r + m, g + m, b + m]
}

/// Angular hue difference in degrees, in `[0, 180]`.
pub fn hue_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    d.min(360.0 - d)
}

/// Hue shift (degrees) introduced by scaling the channels of `rgb` by
/// `factors`. Grays report zero shift for any factors.
pub fn hue_shift_of_scaling(rgb: [f64; 3], factors: [f64; 3]) -> f64 {
    let before = rgb_to_hsv(rgb);
    let after = rgb_to_hsv([
        (rgb[0] * factors[0]).clamp(0.0, 1.0),
        (rgb[1] * factors[1]).clamp(0.0, 1.0),
        (rgb[2] * factors[2]).clamp(0.0, 1.0),
    ]);
    if before.saturation <= 1e-9 || after.saturation <= 1e-9 {
        // At least one side is achromatic: hue is undefined, report the
        // saturation change as zero hue shift (it is a brightness
        // artifact, not a tint).
        return 0.0;
    }
    hue_distance(before.hue, after.hue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_have_canonical_hues() {
        assert_eq!(rgb_to_hsv([1.0, 0.0, 0.0]).hue, 0.0);
        assert_eq!(rgb_to_hsv([1.0, 1.0, 0.0]).hue, 60.0);
        assert_eq!(rgb_to_hsv([0.0, 1.0, 0.0]).hue, 120.0);
        assert_eq!(rgb_to_hsv([0.0, 1.0, 1.0]).hue, 180.0);
        assert_eq!(rgb_to_hsv([0.0, 0.0, 1.0]).hue, 240.0);
        assert_eq!(rgb_to_hsv([1.0, 0.0, 1.0]).hue, 300.0);
    }

    #[test]
    fn grays_are_achromatic() {
        for v in [0.0, 0.3, 1.0] {
            let hsv = rgb_to_hsv([v, v, v]);
            assert_eq!(hsv.hue, 0.0);
            assert_eq!(hsv.saturation, 0.0);
            assert_eq!(hsv.value, v);
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for rgb in [
            [0.2, 0.5, 0.8],
            [0.9, 0.1, 0.4],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [0.5, 0.5, 0.2],
        ] {
            let back = hsv_to_rgb(rgb_to_hsv(rgb));
            for (a, b) in rgb.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{rgb:?} → {back:?}");
            }
        }
    }

    #[test]
    fn hue_distance_wraps() {
        assert_eq!(hue_distance(350.0, 10.0), 20.0);
        assert_eq!(hue_distance(0.0, 180.0), 180.0);
        assert_eq!(hue_distance(90.0, 90.0), 0.0);
    }

    #[test]
    fn uniform_darkening_preserves_hue() {
        for rgb in [[0.8, 0.3, 0.5], [0.1, 0.9, 0.7]] {
            let shift = hue_shift_of_scaling(rgb, [0.6, 0.6, 0.6]);
            assert!(shift < 1e-9, "uniform scale shifted hue by {shift}");
        }
    }

    #[test]
    fn channel_attenuation_shifts_hue_boundedly() {
        // The color transform's per-channel factors (blue attenuated
        // hardest, ≤ 45 %) shift hue measurably but modestly. Use a
        // chromatic base color — grays have no hue to shift.
        let rgb = [0.7, 0.5, 0.4];
        let factors = [0.88, 0.92, 0.70]; // a typical allocation
        let shift = hue_shift_of_scaling(rgb, factors);
        assert!(shift > 0.0);
        assert!(shift < 30.0, "hue shift {shift}° exceeds the validated regime");
    }

    #[test]
    fn saturated_colors_resist_hue_shift_from_value_changes() {
        let shift = hue_shift_of_scaling([1.0, 0.0, 0.0], [0.5, 1.0, 1.0]);
        assert_eq!(shift, 0.0); // pure red darkened stays pure red
    }

    #[test]
    #[should_panic(expected = "channels must be in")]
    fn out_of_range_rgb_rejected() {
        let _ = rgb_to_hsv([1.5, 0.0, 0.0]);
    }
}
