//! # lpvs-codec — hand-rolled binary codec primitives
//!
//! The workspace's vendored `serde` is a no-op stand-in (derives expand
//! to nothing), so anything that must actually survive a round-trip to
//! disk — shard checkpoints, the run manifest, the decision log — is
//! serialized by hand. This crate is the shared substrate those codecs
//! are built from:
//!
//! * [`Writer`]/[`Reader`]: little-endian scalar framing with
//!   length-prefixed byte strings. Floats travel as raw IEEE-754 bits
//!   ([`f64::to_bits`]), so a decoded value is **bit-identical** to the
//!   encoded one — including negative zero and every NaN payload —
//!   which is what the checkpoint round-trip tests pin.
//! * [`crc64`]: CRC-64/XZ (ECMA-182 polynomial, reflected), the
//!   checksum every snapshot header carries. A single flipped bit
//!   anywhere in the payload is detected, which is how the recovery
//!   ladder decides a checkpoint generation is unusable.
//! * [`CodecError`]: the one error type every decoder in the workspace
//!   returns; corrupt input is a value, never a panic.
//!
//! The crate is dependency-free on purpose: `lpvs-bayes` and
//! `lpvs-core` both encode into it, and it must sit below both in the
//! crate graph.

#![warn(missing_docs)]

use std::fmt;

/// Why a decode failed. Every variant means the input bytes are not a
/// valid encoding; none of them are recoverable by retrying the same
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value it promised.
    Truncated,
    /// A leading magic number did not match.
    BadMagic,
    /// A version field named a format this build does not speak.
    BadVersion(u32),
    /// The payload checksum did not match its header.
    BadChecksum,
    /// A structurally valid field carried a semantically invalid value.
    Malformed(&'static str),
    /// The input continued past the end of the value.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad magic number"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadChecksum => write!(f, "payload checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed field: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian byte sink. All scalars are fixed-width; byte strings
/// and sequences are length-prefixed with a `u64` count.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk format is
    /// pointer-width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits — the round-trip is
    /// bit-identical, NaN payloads and signed zeros included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed slice of `f64`s.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Writes a length-prefixed slice of `usize`s (as `u64`s).
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Writes a length-prefixed slice of bools.
    pub fn put_bools(&mut self, v: &[bool]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_bool(x);
        }
    }
}

/// Little-endian byte source over a borrowed buffer; the mirror of
/// [`Writer`]. Every read validates bounds and returns
/// [`CodecError::Truncated`] instead of panicking.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte has been consumed — decoders call this
    /// last so a snapshot with junk appended is rejected, not silently
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if input remains.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("take(4) returned 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8) returned 8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input;
    /// [`CodecError::Malformed`] if the value exceeds this platform's
    /// `usize`.
    pub fn usize_(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflow"))
    }

    /// Reads an `f64` from its raw IEEE-754 bits — bit-identical to the
    /// value written.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but `0`/`1`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input;
    /// [`CodecError::Malformed`] on any other byte value.
    pub fn bool_(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool byte")),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix promises more bytes than
    /// remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.usize_()?;
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        self.take(n)
    }

    /// Reads exactly `n` raw bytes with no length prefix — for
    /// container formats whose header already fixed the payload length.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a length-prefixed slice of `f64`s.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix promises more values
    /// than remain.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.checked_count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed slice of `usize`s.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix promises more values
    /// than remain; [`CodecError::Malformed`] on `usize` overflow.
    pub fn usizes(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.checked_count(8)?;
        (0..n).map(|_| self.usize_()).collect()
    }

    /// Reads a length-prefixed slice of bools.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix promises more values
    /// than remain; [`CodecError::Malformed`] on a non-`0`/`1` byte.
    pub fn bools(&mut self) -> Result<Vec<bool>, CodecError> {
        let n = self.checked_count(1)?;
        (0..n).map(|_| self.bool_()).collect()
    }

    /// Reads a count prefix and bounds it against the bytes actually
    /// remaining (`width` bytes per element), so a corrupt length can
    /// never trigger an absurd allocation.
    fn checked_count(&mut self, width: usize) -> Result<usize, CodecError> {
        let n = self.usize_()?;
        match n.checked_mul(width) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(CodecError::Truncated),
        }
    }
}

/// CRC-64/XZ (ECMA-182 polynomial `0x42F0E1EBA9EA3693`, reflected,
/// init/xorout `!0`) — the checksum every snapshot header carries.
pub fn crc64(bytes: &[u8]) -> u64 {
    const TABLE: [u64; 256] = crc64_table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Reflected-polynomial lookup table, built once at compile time.
const fn crc64_table() -> [u64; 256] {
    // Reflection of the ECMA-182 polynomial.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        w.put_bool(true);
        w.put_bytes(b"snapshot");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize_().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(r.bool_().unwrap());
        assert_eq!(r.bytes().unwrap(), b"snapshot");
        r.expect_end().unwrap();
    }

    #[test]
    fn sequences_round_trip() {
        let mut w = Writer::new();
        w.put_f64s(&[1.5, f64::INFINITY, -7.25]);
        w.put_usizes(&[0, 3, 9]);
        w.put_bools(&[true, false, true]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.f64s().unwrap(), vec![1.5, f64::INFINITY, -7.25]);
        assert_eq!(r.usizes().unwrap(), vec![0, 3, 9]);
        assert_eq!(r.bools().unwrap(), vec![true, false, true]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_and_trailing_inputs_are_rejected() {
        let mut w = Writer::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes[..5]).u64(), Err(CodecError::Truncated));
        let mut r = Reader::new(&bytes);
        let _ = r.u32().unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::TrailingBytes));
        // A count prefix promising more than the buffer holds fails
        // before allocating.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).f64s(), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_bool_bytes_are_malformed() {
        let bytes = [2u8];
        assert_eq!(Reader::new(&bytes).bool_(), Err(CodecError::Malformed("bool byte")));
    }

    #[test]
    fn crc64_matches_the_xz_check_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let mut data = b"checkpoint payload".to_vec();
        let clean = crc64(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc64(&data), clean, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
        assert_eq!(crc64(&data), clean);
    }
}
