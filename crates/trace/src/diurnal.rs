//! Diurnal viewership modulation.
//!
//! Live-streaming audiences breathe with the day: evening prime time
//! carries several times the 5 a.m. trough. The base generator is
//! time-homogeneous; this module layers a smooth diurnal envelope on a
//! trace so capacity studies see realistic peak/trough dynamics.

use crate::channel::{Channel, Trace};
use crate::session::Session;

/// Slots per day at the 5-minute sampling interval.
pub const SLOTS_PER_DAY: u64 = 288;

/// Hour of peak viewership (21:00 local).
const PEAK_HOUR: f64 = 21.0;

/// Diurnal multiplier for a global slot index: a raised cosine with
/// its maximum at 21:00 and minimum at 09:00, spanning
/// `[trough, peak]`.
///
/// # Panics
///
/// Panics unless `0 < trough ≤ peak`.
///
/// # Example
///
/// ```
/// use lpvs_trace::diurnal::{diurnal_factor, SLOTS_PER_DAY};
///
/// let prime_time = (21.0 / 24.0 * SLOTS_PER_DAY as f64) as u64;
/// let dawn = (9.0 / 24.0 * SLOTS_PER_DAY as f64) as u64;
/// assert!(diurnal_factor(prime_time, 0.3, 1.7) > diurnal_factor(dawn, 0.3, 1.7));
/// ```
pub fn diurnal_factor(slot: u64, trough: f64, peak: f64) -> f64 {
    assert!(trough > 0.0 && trough <= peak, "need 0 < trough ≤ peak");
    let day_fraction = (slot % SLOTS_PER_DAY) as f64 / SLOTS_PER_DAY as f64;
    let phase = (day_fraction - PEAK_HOUR / 24.0) * std::f64::consts::TAU;
    let mid = (peak + trough) / 2.0;
    let amplitude = (peak - trough) / 2.0;
    mid + amplitude * phase.cos()
}

/// Applies the diurnal envelope to every viewer sample of a trace
/// (counts scale with the factor at each sample's global slot, floored
/// at one viewer).
pub fn apply_diurnal(trace: &Trace, trough: f64, peak: f64) -> Trace {
    let channels = trace
        .channels()
        .iter()
        .map(|c| {
            let sessions = c
                .sessions()
                .iter()
                .map(|s| {
                    let viewers: Vec<u32> = s
                        .viewers()
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let slot = s.start_slot() + i as u64;
                            let scaled =
                                f64::from(v) * diurnal_factor(slot, trough, peak);
                            scaled.round().max(1.0) as u32
                        })
                        .collect();
                    Session::new(s.start_slot(), viewers)
                })
                .collect();
            Channel::new(c.id(), c.bitrate_kbps(), sessions)
        })
        .collect();
    Trace::new(channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::summary::TraceSummary;

    #[test]
    fn factor_peaks_in_the_evening() {
        let prime = (21.0 / 24.0 * SLOTS_PER_DAY as f64) as u64;
        let dawn = (9.0 / 24.0 * SLOTS_PER_DAY as f64) as u64;
        let peak = diurnal_factor(prime, 0.3, 1.7);
        let trough = diurnal_factor(dawn, 0.3, 1.7);
        assert!((peak - 1.7).abs() < 0.02, "peak {peak}");
        assert!((trough - 0.3).abs() < 0.02, "trough {trough}");
    }

    #[test]
    fn factor_is_periodic() {
        for slot in [0u64, 77, 200] {
            let a = diurnal_factor(slot, 0.5, 1.5);
            let b = diurnal_factor(slot + SLOTS_PER_DAY, 0.5, 1.5);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn modulation_preserves_structure() {
        let trace = TraceGenerator::new(80, 21).generate();
        let modulated = apply_diurnal(&trace, 0.4, 1.6);
        assert_eq!(trace.channels().len(), modulated.channels().len());
        assert_eq!(trace.session_count(), modulated.session_count());
        // Durations and start slots untouched.
        for (a, b) in trace.sessions().zip(modulated.sessions()) {
            assert_eq!(a.1.start_slot(), b.1.start_slot());
            assert_eq!(a.1.duration_slots(), b.1.duration_slots());
        }
    }

    #[test]
    fn modulation_moves_total_watch_time() {
        let trace = TraceGenerator::new(120, 9).generate();
        let boosted = apply_diurnal(&trace, 1.5, 2.5); // strictly amplifying
        let before = TraceSummary::from_trace(&trace).viewer_minutes;
        let after = TraceSummary::from_trace(&boosted).viewer_minutes;
        assert!(after > before * 1.4, "{before} → {after}");
    }

    #[test]
    fn viewers_never_drop_to_zero() {
        let trace = TraceGenerator::new(40, 2).generate();
        let modulated = apply_diurnal(&trace, 0.01, 1.0);
        assert!(modulated.sessions().all(|(_, s)| s.viewers().iter().all(|&v| v >= 1)));
    }

    #[test]
    #[should_panic(expected = "trough")]
    fn invalid_band_rejected() {
        let _ = diurnal_factor(0, 0.0, 1.0);
    }
}
