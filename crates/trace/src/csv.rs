//! Line-oriented trace serialization.
//!
//! The format is deliberately simple so a real Twitch trace can be
//! converted into it with a few lines of scripting:
//!
//! ```text
//! channel,<id>,<bitrate_kbps>
//! session,<channel_id>,<start_slot>,<v0>;<v1>;…
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Sessions must
//! follow their channel line.

use crate::channel::{Channel, ChannelId, Trace};
use crate::session::Session;
use std::error::Error;
use std::fmt;

/// Errors from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line had an unknown record tag.
    UnknownRecord {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field description.
        field: &'static str,
    },
    /// A session line referenced a channel that has not appeared.
    OrphanSession {
        /// 1-based line number.
        line: usize,
    },
    /// A record had the wrong number of fields.
    WrongArity {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::UnknownRecord { line } => {
                write!(f, "unknown record tag on line {line}")
            }
            TraceParseError::BadField { line, field } => {
                write!(f, "malformed {field} on line {line}")
            }
            TraceParseError::OrphanSession { line } => {
                write!(f, "session on line {line} references an undeclared channel")
            }
            TraceParseError::WrongArity { line } => {
                write!(f, "wrong field count on line {line}")
            }
        }
    }
}

impl Error for TraceParseError {}

/// Serializes a trace to the line format.
///
/// # Example
///
/// ```
/// use lpvs_trace::generator::TraceGenerator;
/// use lpvs_trace::csv::{parse_trace, write_trace};
///
/// # fn main() -> Result<(), lpvs_trace::csv::TraceParseError> {
/// let trace = TraceGenerator::new(10, 4).generate();
/// let text = write_trace(&trace);
/// let back = parse_trace(&text)?;
/// assert_eq!(trace, back);
/// # Ok(())
/// # }
/// ```
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("# lpvs-trace v1\n");
    for c in trace.channels() {
        out.push_str(&format!("channel,{},{}\n", c.id().0, c.bitrate_kbps()));
        for s in c.sessions() {
            let viewers: Vec<String> = s.viewers().iter().map(u32::to_string).collect();
            out.push_str(&format!(
                "session,{},{},{}\n",
                c.id().0,
                s.start_slot(),
                viewers.join(";")
            ));
        }
    }
    out
}

/// Parses the line format back into a trace.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the offending line on any
/// malformed record.
pub fn parse_trace(text: &str) -> Result<Trace, TraceParseError> {
    // Accumulate per channel; preserve declaration order.
    let mut order: Vec<ChannelId> = Vec::new();
    let mut bitrates: Vec<f64> = Vec::new();
    let mut sessions: Vec<Vec<Session>> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        match fields[0] {
            "channel" => {
                if fields.len() != 3 {
                    return Err(TraceParseError::WrongArity { line });
                }
                let id: u32 = fields[1]
                    .parse()
                    .map_err(|_| TraceParseError::BadField { line, field: "channel id" })?;
                let bitrate: f64 = fields[2]
                    .parse()
                    .map_err(|_| TraceParseError::BadField { line, field: "bitrate" })?;
                order.push(ChannelId(id));
                bitrates.push(bitrate);
                sessions.push(Vec::new());
            }
            "session" => {
                if fields.len() != 4 {
                    return Err(TraceParseError::WrongArity { line });
                }
                let id: u32 = fields[1]
                    .parse()
                    .map_err(|_| TraceParseError::BadField { line, field: "channel id" })?;
                let start: u64 = fields[2]
                    .parse()
                    .map_err(|_| TraceParseError::BadField { line, field: "start slot" })?;
                let viewers: Result<Vec<u32>, _> =
                    fields[3].split(';').map(str::parse::<u32>).collect();
                let viewers = viewers
                    .map_err(|_| TraceParseError::BadField { line, field: "viewer series" })?;
                if viewers.is_empty() {
                    return Err(TraceParseError::BadField { line, field: "viewer series" });
                }
                let pos = order
                    .iter()
                    .position(|c| *c == ChannelId(id))
                    .ok_or(TraceParseError::OrphanSession { line })?;
                sessions[pos].push(Session::new(start, viewers));
            }
            _ => return Err(TraceParseError::UnknownRecord { line }),
        }
    }

    let channels = order
        .into_iter()
        .zip(bitrates)
        .zip(sessions)
        .map(|((id, bitrate), s)| Channel::new(id, bitrate, s))
        .collect();
    Ok(Trace::new(channels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;

    #[test]
    fn round_trip_preserves_trace() {
        let t = TraceGenerator::new(25, 13).generate();
        let back = parse_trace(&write_trace(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nchannel,1,3000\n  \nsession,1,0,5;6;7\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.channels().len(), 1);
        assert_eq!(t.session_count(), 1);
    }

    #[test]
    fn unknown_record_reported_with_line() {
        let err = parse_trace("bogus,1\n").unwrap_err();
        assert_eq!(err, TraceParseError::UnknownRecord { line: 1 });
    }

    #[test]
    fn orphan_session_detected() {
        let err = parse_trace("session,9,0,1;2\n").unwrap_err();
        assert_eq!(err, TraceParseError::OrphanSession { line: 1 });
    }

    #[test]
    fn bad_numbers_detected() {
        let err = parse_trace("channel,x,3000\n").unwrap_err();
        assert!(matches!(err, TraceParseError::BadField { line: 1, .. }));
        let err = parse_trace("channel,1,3000\nsession,1,0,a;b\n").unwrap_err();
        assert!(matches!(err, TraceParseError::BadField { line: 2, .. }));
    }

    #[test]
    fn wrong_arity_detected() {
        let err = parse_trace("channel,1\n").unwrap_err();
        assert_eq!(err, TraceParseError::WrongArity { line: 1 });
    }

    #[test]
    fn empty_viewer_series_rejected() {
        let err = parse_trace("channel,1,3000\nsession,1,0,\n").unwrap_err();
        assert!(matches!(err, TraceParseError::BadField { line: 2, .. }));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = TraceParseError::OrphanSession { line: 3 };
        assert!(e.to_string().contains("line 3"));
    }
}
