//! Synthetic Twitch-like trace generator.
//!
//! Calibrated to the reported statistics of the paper's filtered
//! dataset (§VI-A): 1,566 channels, 4,761 sessions (≈ 3 per channel),
//! all sessions ≤ 10 hours with the Fig. 5 histogram shape (heavy mass
//! between 30 minutes and 4 hours, thinning toward the 10-hour cap),
//! 5-minute sampling, power-law channel popularity, and ramp/plateau/
//! decay viewer dynamics within each session.

use crate::channel::{Channel, ChannelId, Trace};
use crate::session::Session;
use crate::{MAX_SESSION_SLOTS, PAPER_CHANNELS, SLOT_MINUTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deterministic, seeded trace generator.
///
/// # Example
///
/// ```
/// use lpvs_trace::generator::TraceGenerator;
///
/// let small = TraceGenerator::new(50, 3).generate();
/// assert_eq!(small.channels().len(), 50);
/// assert!(small.sessions().all(|(_, s)| s.within_duration_filter()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGenerator {
    channels: usize,
    seed: u64,
}

impl TraceGenerator {
    /// A generator for `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize, seed: u64) -> Self {
        assert!(channels > 0, "need at least one channel");
        Self { channels, seed }
    }

    /// The paper's dataset scale: 1,566 channels.
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(PAPER_CHANNELS, seed)
    }

    /// Generates the trace (already satisfying the ≤ 10 h filter).
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7ace_7ace);
        let channels = (0..self.channels)
            .map(|i| generate_channel(ChannelId(i as u32), &mut rng))
            .collect();
        Trace::new(channels)
    }
}

fn generate_channel<R: Rng + ?Sized>(id: ChannelId, rng: &mut R) -> Channel {
    // Power-law popularity: most channels are small, a few are huge.
    let u: f64 = rng.gen_range(0.001..1.0);
    let base_viewers = (8.0 / u.powf(0.9)).min(30_000.0);

    // Bigger channels stream at higher source bitrates.
    let bitrate_kbps = if base_viewers > 1000.0 {
        6000.0
    } else if base_viewers > 100.0 {
        if rng.gen_bool(0.6) {
            6000.0
        } else {
            3000.0
        }
    } else if rng.gen_bool(0.5) {
        3000.0
    } else {
        1200.0
    };

    // ≈ 3 sessions per channel: 1 + Poisson(2.04).
    let count = 1 + poisson(2.04, rng);
    let mut sessions = Vec::with_capacity(count);
    let mut cursor: u64 = rng.gen_range(0..288); // start within the first day
    for _ in 0..count {
        let duration = sample_duration_slots(rng);
        let viewers = viewer_series(base_viewers, duration, rng);
        sessions.push(Session::new(cursor, viewers));
        // Off-air gap before the next broadcast: 2–48 hours.
        cursor = sessions.last().expect("just pushed").end_slot()
            + rng.gen_range(24..576);
    }
    Channel::new(id, bitrate_kbps, sessions)
}

/// Session duration in slots: log-normal in minutes (median ≈ 100 min,
/// σ ≈ 0.75) truncated to `[1, 120]` slots — the Fig. 5 shape.
fn sample_duration_slots<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    loop {
        let z = standard_normal(rng);
        let minutes = (100.0f64.ln() + 0.75 * z).exp();
        let slots = (minutes / SLOT_MINUTES).round() as i64;
        if (1..=MAX_SESSION_SLOTS as i64).contains(&slots) {
            return slots as u32;
        }
        // Over-cap draws are re-sampled: the real pipeline *filters*
        // them out, which conditions the distribution the same way.
    }
}

/// Ramp → plateau → decay viewer dynamics with multiplicative noise.
fn viewer_series<R: Rng + ?Sized>(base: f64, slots: u32, rng: &mut R) -> Vec<u32> {
    let n = slots as usize;
    let ramp = (n / 5).max(1);
    let decay_start = n - (n / 6).max(1);
    (0..n)
        .map(|i| {
            let envelope = if i < ramp {
                0.3 + 0.7 * (i as f64 + 1.0) / ramp as f64
            } else if i >= decay_start {
                let k = (n - i) as f64 / (n - decay_start) as f64;
                0.4 + 0.6 * k
            } else {
                1.0
            };
            let noise: f64 = rng.gen_range(0.85..1.15);
            (base * envelope * noise).round().max(1.0) as u32
        })
        .collect()
}

/// Poisson sample (Knuth's method; fine for small λ).
fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 100 {
            return k; // numerically unreachable for λ ≈ 2
        }
    }
}

/// Standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_SESSIONS;

    #[test]
    fn paper_scale_counts_match() {
        let t = TraceGenerator::paper_scale(42).generate();
        assert_eq!(t.channels().len(), PAPER_CHANNELS);
        let sessions = t.session_count();
        let target = PAPER_SESSIONS as f64;
        assert!(
            (sessions as f64 - target).abs() / target < 0.08,
            "sessions {sessions} vs {target}"
        );
    }

    #[test]
    fn all_sessions_pass_duration_filter() {
        let t = TraceGenerator::new(300, 9).generate();
        assert!(t.sessions().all(|(_, s)| s.within_duration_filter()));
    }

    #[test]
    fn duration_histogram_has_fig5_shape() {
        // Mass concentrates between 30 min and 4 h, with a thin tail
        // toward the 10 h cap.
        let t = TraceGenerator::paper_scale(5).generate();
        let durations: Vec<f64> =
            t.sessions().map(|(_, s)| s.duration_minutes()).collect();
        let n = durations.len() as f64;
        let share = |lo: f64, hi: f64| {
            durations.iter().filter(|&&d| d >= lo && d < hi).count() as f64 / n
        };
        assert!(share(30.0, 240.0) > 0.55, "core mass {}", share(30.0, 240.0));
        assert!(share(480.0, 601.0) < 0.10, "tail mass {}", share(480.0, 601.0));
        // Unimodal-ish: the 60–120 bin beats the 480–540 bin hard.
        assert!(share(60.0, 120.0) > 5.0 * share(480.0, 540.0));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let t = TraceGenerator::paper_scale(8).generate();
        let mut peaks: Vec<u32> =
            t.channels().iter().map(|c| c.sessions()[0].peak_viewers()).collect();
        peaks.sort_unstable();
        let median = peaks[peaks.len() / 2] as f64;
        let p99 = peaks[peaks.len() * 99 / 100] as f64;
        assert!(p99 > 20.0 * median, "not heavy-tailed: median {median}, p99 {p99}");
    }

    #[test]
    fn sessions_do_not_overlap_within_channel() {
        let t = TraceGenerator::new(200, 3).generate();
        for c in t.channels() {
            for w in c.sessions().windows(2) {
                assert!(w[0].end_slot() <= w[1].start_slot());
            }
        }
    }

    #[test]
    fn viewer_series_ramps_and_decays() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = viewer_series(1000.0, 60, &mut rng);
        let early = v[0] as f64;
        let mid = v[30] as f64;
        let last = v[59] as f64;
        assert!(mid > early, "no ramp: {early} → {mid}");
        assert!(mid > last, "no decay: {mid} → {last}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = TraceGenerator::new(50, 1).generate();
        let b = TraceGenerator::new(50, 1).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn bitrates_come_from_the_ladder() {
        let t = TraceGenerator::new(400, 6).generate();
        for c in t.channels() {
            assert!([1200.0, 3000.0, 6000.0].contains(&c.bitrate_kbps()));
        }
    }
}
