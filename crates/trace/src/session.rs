//! One live session: a contiguous broadcast with per-slot viewers.

use crate::{MAX_SESSION_SLOTS, SLOT_MINUTES};
use serde::{Deserialize, Serialize};

/// A contiguous live broadcast of one channel.
///
/// The viewer series has one entry per 5-minute slot; its length is the
/// session duration in slots.
///
/// # Example
///
/// ```
/// use lpvs_trace::session::Session;
///
/// let s = Session::new(12, vec![40, 55, 61, 58]);
/// assert_eq!(s.duration_slots(), 4);
/// assert_eq!(s.duration_minutes(), 20.0);
/// assert_eq!(s.peak_viewers(), 61);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Session {
    /// Global slot index at which the session starts.
    start_slot: u64,
    /// Viewer count per slot, from the start slot onward.
    viewers: Vec<u32>,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics if the viewer series is empty.
    pub fn new(start_slot: u64, viewers: Vec<u32>) -> Self {
        assert!(!viewers.is_empty(), "a session spans at least one slot");
        Self { start_slot, viewers }
    }

    /// Global slot index of the first sample.
    pub fn start_slot(&self) -> u64 {
        self.start_slot
    }

    /// Global slot index one past the last sample.
    pub fn end_slot(&self) -> u64 {
        self.start_slot + self.viewers.len() as u64
    }

    /// Viewer count per slot.
    pub fn viewers(&self) -> &[u32] {
        &self.viewers
    }

    /// Viewer count at a global slot, if the session is live then.
    pub fn viewers_at(&self, slot: u64) -> Option<u32> {
        if slot < self.start_slot {
            return None;
        }
        self.viewers.get((slot - self.start_slot) as usize).copied()
    }

    /// Duration in slots.
    pub fn duration_slots(&self) -> u32 {
        self.viewers.len() as u32
    }

    /// Duration in minutes.
    pub fn duration_minutes(&self) -> f64 {
        self.viewers.len() as f64 * SLOT_MINUTES
    }

    /// Largest per-slot viewer count.
    pub fn peak_viewers(&self) -> u32 {
        self.viewers.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-slot viewer count.
    pub fn mean_viewers(&self) -> f64 {
        self.viewers.iter().map(|&v| v as f64).sum::<f64>() / self.viewers.len() as f64
    }

    /// Total viewer-slots (the session's contribution to watch time).
    pub fn viewer_slots(&self) -> u64 {
        self.viewers.iter().map(|&v| u64::from(v)).sum()
    }

    /// True if the session passes the paper's ≤ 10 h filter.
    pub fn within_duration_filter(&self) -> bool {
        self.duration_slots() <= MAX_SESSION_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_indexing() {
        let s = Session::new(100, vec![1, 2, 3]);
        assert_eq!(s.viewers_at(99), None);
        assert_eq!(s.viewers_at(100), Some(1));
        assert_eq!(s.viewers_at(102), Some(3));
        assert_eq!(s.viewers_at(103), None);
        assert_eq!(s.end_slot(), 103);
    }

    #[test]
    fn aggregates() {
        let s = Session::new(0, vec![10, 30, 20]);
        assert_eq!(s.peak_viewers(), 30);
        assert!((s.mean_viewers() - 20.0).abs() < 1e-12);
        assert_eq!(s.viewer_slots(), 60);
    }

    #[test]
    fn duration_filter_boundary() {
        let ok = Session::new(0, vec![1; MAX_SESSION_SLOTS as usize]);
        let too_long = Session::new(0, vec![1; MAX_SESSION_SLOTS as usize + 1]);
        assert!(ok.within_duration_filter());
        assert!(!too_long.within_duration_filter());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_session_rejected() {
        let _ = Session::new(0, vec![]);
    }
}
