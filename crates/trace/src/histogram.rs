//! Session-duration histogram (the paper's Fig. 5).

use crate::channel::Trace;
use serde::{Deserialize, Serialize};

/// Histogram of session durations in fixed-width minute bins.
///
/// # Example
///
/// ```
/// use lpvs_trace::generator::TraceGenerator;
/// use lpvs_trace::histogram::DurationHistogram;
///
/// let trace = TraceGenerator::new(100, 2).generate();
/// let hist = DurationHistogram::from_trace(&trace, 30.0);
/// assert_eq!(hist.total(), trace.session_count());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationHistogram {
    bin_minutes: f64,
    counts: Vec<usize>,
}

impl DurationHistogram {
    /// Builds the histogram of all session durations in `trace` with
    /// the given bin width (minutes).
    ///
    /// # Panics
    ///
    /// Panics if `bin_minutes` is not strictly positive.
    pub fn from_trace(trace: &Trace, bin_minutes: f64) -> Self {
        assert!(bin_minutes > 0.0, "bin width must be positive");
        let mut counts: Vec<usize> = Vec::new();
        for (_, s) in trace.sessions() {
            let bin = (s.duration_minutes() / bin_minutes).floor() as usize;
            if counts.len() <= bin {
                counts.resize(bin + 1, 0);
            }
            counts[bin] += 1;
        }
        Self { bin_minutes, counts }
    }

    /// Bin width in minutes.
    pub fn bin_minutes(&self) -> f64 {
        self.bin_minutes
    }

    /// Counts per bin (bin `i` covers `[i·w, (i+1)·w)` minutes).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total sessions histogrammed.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of sessions within `[lo, hi)` minutes, on bin
    /// granularity.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let lo_bin = (lo / self.bin_minutes).floor() as usize;
        let hi_bin = (hi / self.bin_minutes).ceil() as usize;
        let inside: usize = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= lo_bin && *i < hi_bin)
            .map(|(_, &c)| c)
            .sum();
        inside as f64 / total as f64
    }

    /// Index of the modal bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Rows `(bin start minutes, bin end minutes, count)` for printing.
    pub fn rows(&self) -> Vec<(f64, f64, usize)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * self.bin_minutes, (i + 1) as f64 * self.bin_minutes, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelId};
    use crate::generator::TraceGenerator;
    use crate::session::Session;

    fn toy_trace() -> Trace {
        // Durations: 10, 35, 40, 60 minutes (2, 7, 8, 12 slots).
        Trace::new(vec![Channel::new(
            ChannelId(0),
            3000.0,
            vec![
                Session::new(0, vec![1; 2]),
                Session::new(10, vec![1; 7]),
                Session::new(30, vec![1; 8]),
                Session::new(50, vec![1; 12]),
            ],
        )])
    }

    #[test]
    fn binning_is_correct() {
        let h = DurationHistogram::from_trace(&toy_trace(), 30.0);
        // Bins: [0,30): 1 session (10 min); [30,60): 2; [60,90): 1.
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mode_bin(), 1);
    }

    #[test]
    fn fraction_between_works() {
        let h = DurationHistogram::from_trace(&toy_trace(), 30.0);
        assert!((h.fraction_between(30.0, 90.0) - 0.75).abs() < 1e-12);
        assert_eq!(h.fraction_between(900.0, 1200.0), 0.0);
    }

    #[test]
    fn rows_cover_all_bins() {
        let h = DurationHistogram::from_trace(&toy_trace(), 30.0);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], (30.0, 60.0, 2));
    }

    #[test]
    fn generated_trace_is_capped_at_ten_hours() {
        let t = TraceGenerator::new(200, 4).generate();
        let h = DurationHistogram::from_trace(&t, 30.0);
        assert!(h.counts().len() <= 21, "bins beyond 10 h: {}", h.counts().len());
    }

    #[test]
    fn empty_trace_yields_empty_histogram() {
        let h = DurationHistogram::from_trace(&Trace::default(), 30.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_between(0.0, 600.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        let _ = DurationHistogram::from_trace(&Trace::default(), 0.0);
    }
}
