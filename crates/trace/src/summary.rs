//! Dataset-level statistics.

use crate::channel::Trace;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one trace.
///
/// # Example
///
/// ```
/// use lpvs_trace::generator::TraceGenerator;
/// use lpvs_trace::summary::TraceSummary;
///
/// let trace = TraceGenerator::new(100, 8).generate();
/// let s = TraceSummary::from_trace(&trace);
/// assert_eq!(s.channels, 100);
/// assert!(s.mean_session_minutes > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of channels.
    pub channels: usize,
    /// Number of sessions.
    pub sessions: usize,
    /// Total broadcast minutes across all sessions.
    pub total_broadcast_minutes: f64,
    /// Mean session duration in minutes.
    pub mean_session_minutes: f64,
    /// Median session duration in minutes.
    pub median_session_minutes: f64,
    /// Total viewer-minutes watched (viewer-slots × slot length).
    pub viewer_minutes: f64,
    /// Largest single-slot viewer count observed.
    pub peak_viewers: u32,
}

impl TraceSummary {
    /// Computes the summary of `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut durations: Vec<f64> =
            trace.sessions().map(|(_, s)| s.duration_minutes()).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let sessions = durations.len();
        let total: f64 = durations.iter().sum();
        let median = if sessions == 0 {
            0.0
        } else if sessions % 2 == 1 {
            durations[sessions / 2]
        } else {
            0.5 * (durations[sessions / 2 - 1] + durations[sessions / 2])
        };
        let viewer_slots: u64 = trace.sessions().map(|(_, s)| s.viewer_slots()).sum();
        let peak = trace
            .sessions()
            .map(|(_, s)| s.peak_viewers())
            .max()
            .unwrap_or(0);
        Self {
            channels: trace.channels().len(),
            sessions,
            total_broadcast_minutes: total,
            mean_session_minutes: if sessions == 0 { 0.0 } else { total / sessions as f64 },
            median_session_minutes: median,
            viewer_minutes: viewer_slots as f64 * crate::SLOT_MINUTES,
            peak_viewers: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelId};
    use crate::generator::TraceGenerator;
    use crate::session::Session;

    #[test]
    fn summary_of_toy_trace() {
        let t = Trace::new(vec![Channel::new(
            ChannelId(0),
            3000.0,
            vec![Session::new(0, vec![10, 20]), Session::new(10, vec![5, 5, 5, 5])],
        )]);
        let s = TraceSummary::from_trace(&t);
        assert_eq!(s.channels, 1);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.total_broadcast_minutes, 30.0);
        assert_eq!(s.mean_session_minutes, 15.0);
        assert_eq!(s.median_session_minutes, 15.0);
        assert_eq!(s.viewer_minutes, (30 + 20) as f64 * 5.0);
        assert_eq!(s.peak_viewers, 20);
    }

    #[test]
    fn empty_trace_summary_is_zero() {
        let s = TraceSummary::from_trace(&Trace::default());
        assert_eq!(s.sessions, 0);
        assert_eq!(s.mean_session_minutes, 0.0);
        assert_eq!(s.median_session_minutes, 0.0);
        assert_eq!(s.peak_viewers, 0);
    }

    #[test]
    fn generated_summary_is_plausible() {
        let s = TraceSummary::from_trace(&TraceGenerator::paper_scale(3).generate());
        // Median log-normal(ln 100, 0.75) ≈ 100 minutes.
        assert!((60.0..160.0).contains(&s.median_session_minutes));
        assert!(s.mean_session_minutes >= s.median_session_minutes * 0.8);
        assert!(s.peak_viewers > 1000);
    }
}
