//! # lpvs-trace — Twitch-like live-streaming workload traces
//!
//! The paper drives its emulator with a 2014 Twitch dataset: thousands
//! of live channels sampled every 5 minutes, filtered to sessions of at
//! most 10 hours — 1,566 channels and 4,761 sessions (§VI-A, Fig. 5).
//! That dataset is not redistributable, so this crate provides:
//!
//! * [`session`] / [`channel`] — the trace data model: channels hosting
//!   live sessions, each session carrying a per-slot viewer-count
//!   series at the 5-minute sampling interval;
//! * [`generator`] — a synthetic trace generator calibrated to the
//!   reported statistics (channel/session counts, the Fig. 5 duration
//!   histogram shape, power-law channel popularity, ramp-and-decay
//!   viewer dynamics);
//! * [`csv`] — a line-oriented serialization so traces round-trip to
//!   disk, and so anyone holding the real dataset can import it;
//! * [`histogram`] — the session-duration histogram behind Fig. 5;
//! * [`summary`] — dataset-level statistics.
//!
//! # Example
//!
//! ```
//! use lpvs_trace::generator::TraceGenerator;
//!
//! let trace = TraceGenerator::paper_scale(7).generate();
//! assert_eq!(trace.channels().len(), 1566);
//! let sessions: usize = trace.channels().iter().map(|c| c.sessions().len()).sum();
//! assert!((4300..5300).contains(&sessions), "sessions {sessions}");
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod csv;
pub mod diurnal;
pub mod generator;
pub mod histogram;
pub mod session;
pub mod summary;

pub use channel::{Channel, ChannelId, Trace};
pub use csv::{parse_trace, write_trace, TraceParseError};
pub use diurnal::{apply_diurnal, diurnal_factor};
pub use generator::TraceGenerator;
pub use histogram::DurationHistogram;
pub use session::Session;
pub use summary::TraceSummary;

/// Sampling interval of the dataset (and the LPVS scheduling period):
/// 5 minutes.
pub const SLOT_MINUTES: f64 = 5.0;

/// Sampling interval in seconds.
pub const SLOT_SECONDS: f64 = SLOT_MINUTES * 60.0;

/// Maximum retained session length: 10 hours = 120 slots (the paper's
/// filtering rule).
pub const MAX_SESSION_SLOTS: u32 = 120;

/// Channel count of the filtered paper dataset.
pub const PAPER_CHANNELS: usize = 1566;

/// Session count of the filtered paper dataset.
pub const PAPER_SESSIONS: usize = 4761;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SLOT_SECONDS, 300.0);
        assert_eq!(MAX_SESSION_SLOTS as f64 * SLOT_MINUTES, 600.0);
        assert!((PAPER_SESSIONS as f64 / PAPER_CHANNELS as f64 - 3.04).abs() < 0.01);
    }
}
