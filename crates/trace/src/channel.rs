//! Channels and whole traces.

use crate::session::Session;
use serde::{Deserialize, Serialize};

/// Identifier of a live channel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One live channel: identity, source bitrate, and its sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    id: ChannelId,
    /// Source (top-rung) bitrate of the channel in kbit/s.
    bitrate_kbps: f64,
    sessions: Vec<Session>,
}

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if the bitrate is not positive or sessions overlap /
    /// are unsorted.
    pub fn new(id: ChannelId, bitrate_kbps: f64, sessions: Vec<Session>) -> Self {
        assert!(bitrate_kbps > 0.0, "bitrate must be positive");
        assert!(
            sessions.windows(2).all(|w| w[0].end_slot() <= w[1].start_slot()),
            "sessions must be sorted and non-overlapping"
        );
        Self { id, bitrate_kbps, sessions }
    }

    /// Channel identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// Source bitrate in kbit/s.
    pub fn bitrate_kbps(&self) -> f64 {
        self.bitrate_kbps
    }

    /// Sessions in start order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Viewer count at a global slot, if the channel is live then.
    pub fn viewers_at(&self, slot: u64) -> Option<u32> {
        self.sessions.iter().find_map(|s| s.viewers_at(slot))
    }

    /// Total broadcast minutes across sessions.
    pub fn broadcast_minutes(&self) -> f64 {
        self.sessions.iter().map(Session::duration_minutes).sum()
    }
}

/// A full dataset: many channels.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    channels: Vec<Channel>,
}

impl Trace {
    /// Builds a trace from channels.
    pub fn new(channels: Vec<Channel>) -> Self {
        Self { channels }
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Looks a channel up by id.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.iter().find(|c| c.id() == id)
    }

    /// Total session count.
    pub fn session_count(&self) -> usize {
        self.channels.iter().map(|c| c.sessions().len()).sum()
    }

    /// Iterator over every session with its channel.
    pub fn sessions(&self) -> impl Iterator<Item = (&Channel, &Session)> {
        self.channels.iter().flat_map(|c| c.sessions().iter().map(move |s| (c, s)))
    }

    /// Drops sessions failing the ≤ 10 h filter and channels left with
    /// none — the paper's cleansing step.
    pub fn filtered(self) -> Trace {
        let channels = self
            .channels
            .into_iter()
            .filter_map(|c| {
                let sessions: Vec<Session> = c
                    .sessions
                    .into_iter()
                    .filter(Session::within_duration_filter)
                    .collect();
                if sessions.is_empty() {
                    None
                } else {
                    Some(Channel { id: c.id, bitrate_kbps: c.bitrate_kbps, sessions })
                }
            })
            .collect();
        Trace { channels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> Channel {
        Channel::new(
            ChannelId(1),
            6000.0,
            vec![Session::new(0, vec![5, 6]), Session::new(10, vec![7])],
        )
    }

    #[test]
    fn viewers_at_scans_sessions() {
        let c = channel();
        assert_eq!(c.viewers_at(1), Some(6));
        assert_eq!(c.viewers_at(5), None);
        assert_eq!(c.viewers_at(10), Some(7));
    }

    #[test]
    fn broadcast_minutes_accumulate() {
        assert!((channel().broadcast_minutes() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn trace_session_count_and_lookup() {
        let t = Trace::new(vec![channel()]);
        assert_eq!(t.session_count(), 2);
        assert!(t.channel(ChannelId(1)).is_some());
        assert!(t.channel(ChannelId(9)).is_none());
        assert_eq!(t.sessions().count(), 2);
    }

    #[test]
    fn filtering_drops_long_sessions_and_empty_channels() {
        let long = Session::new(0, vec![1; 121]);
        let short = Session::new(200, vec![1; 5]);
        let c1 = Channel::new(ChannelId(1), 3000.0, vec![long.clone()]);
        let c2 = Channel::new(ChannelId(2), 3000.0, vec![long, short]);
        let filtered = Trace::new(vec![c1, c2]).filtered();
        assert_eq!(filtered.channels().len(), 1);
        assert_eq!(filtered.session_count(), 1);
        assert_eq!(filtered.channels()[0].id(), ChannelId(2));
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_sessions_rejected() {
        let _ = Channel::new(
            ChannelId(1),
            3000.0,
            vec![Session::new(0, vec![1, 1, 1]), Session::new(2, vec![1])],
        );
    }
}
