//! Minimal blocking HTTP/1.1 client for the serve integration tests.
//!
//! One request per connection (the server answers `Connection: close`),
//! so a request is: connect, write, read-to-EOF, split status and body.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Sends one request and returns `(status, body)`.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_request(addr, method, path, body).expect("request failed")
}

/// Fallible flavor of [`request`] for polling loops that race boot.
pub fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

/// Polls `/healthz` until the server reports the wanted phase.
pub fn wait_phase(addr: SocketAddr, phase: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok((200, body)) = try_request(addr, "GET", "/healthz", "") {
            if body.contains(&format!("\"status\":\"{phase}\"")) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never reached phase {phase:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls `GET /v1/schedule/{slot}` until the decision lands; returns
/// the response body.
pub fn wait_schedule(addr: SocketAddr, slot: usize, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok((200, body)) = try_request(addr, "GET", &format!("/v1/schedule/{slot}"), "") {
            return body;
        }
        assert!(Instant::now() < deadline, "slot {slot} was never decided");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Pulls a quoted string field out of a flat JSON body.
pub fn str_field(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_owned())
}
