//! End-to-end smoke: boot the real `lpvs-serve` binary, drive a
//! scripted load over loopback, kill it mid-horizon with SIGKILL, and
//! verify the restarted server resumes **bit-identically** — every
//! decision (selection, tier, shed floor) matches an uninterrupted
//! reference run, both across the kill and across a graceful
//! shutdown + reboot from the sealed final checkpoint.

mod common;

use common::{request, try_request, wait_phase, wait_schedule};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);
const SLOTS: usize = 9; // scripted slots 0..=8

/// Kills the child on drop so a failed assertion can't orphan servers.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn boot(dirs: &Dirs, resume: bool) -> Server {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lpvs-serve"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--devices",
        "8",
        "--shards",
        "2",
        "--manual-tick",
        "--checkpoint-interval",
        "2",
    ]);
    cmd.arg("--checkpoint-dir").arg(&dirs.checkpoints);
    cmd.arg("--journal").arg(&dirs.journal);
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn lpvs-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read banner");
    let addr: SocketAddr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("no address in banner {line:?}"));
    let server = Server { child, addr };
    wait_phase(addr, "live", WAIT);
    server
}

struct Dirs {
    root: PathBuf,
    checkpoints: PathBuf,
    journal: PathBuf,
}

impl Dirs {
    fn fresh(tag: &str) -> Dirs {
        let root = std::env::temp_dir().join(format!("lpvs-serve-smoke-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        Dirs { checkpoints: root.join("checkpoints"), journal: root.join("ops.journal"), root }
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The scripted ops for slot `t`: three arrivals up front, then a
/// rotating telemetry stream with γ observations.
fn ops_for(addr: SocketAddr, t: usize) {
    if t == 0 {
        for device in 0..3 {
            let body = format!(
                "{{\"action\":\"arrive\",\"device\":{device},\"energy_j\":{},\"gamma\":0.3}}",
                18000 + 2500 * device
            );
            assert_eq!(request(addr, "POST", "/v1/sessions", &body).0, 202);
        }
        return;
    }
    let device = t % 3;
    let body = format!(
        "{{\"device\":{device},\"energy_j\":{},\"observed\":{}}}",
        21000 - 800 * t,
        0.35 + 0.01 * t as f64
    );
    assert_eq!(request(addr, "POST", "/v1/telemetry", &body).0, 202);
}

fn tick(addr: SocketAddr) {
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
}

/// Runs slots `from..SLOTS` of the script, recording each decision
/// body as it lands.
fn drive(addr: SocketAddr, from: usize, decisions: &mut Vec<String>) {
    for t in from..SLOTS {
        ops_for(addr, t);
        tick(addr);
        if t >= 1 {
            decisions.push(wait_schedule(addr, t - 1, WAIT));
        }
    }
    // One empty slot so the last scripted decision joins and lands.
    tick(addr);
    decisions.push(wait_schedule(addr, SLOTS - 1, WAIT));
}

fn shutdown_and_wait(mut server: Server) {
    let _ = try_request(server.addr, "POST", "/v1/shutdown", "{}");
    let status = server.child.wait().expect("wait");
    assert!(status.success(), "server exited uncleanly: {status:?}");
}

#[test]
fn kill_and_restart_resume_bit_identically() {
    // --- reference: one uninterrupted run --------------------------
    let ref_dirs = Dirs::fresh("ref");
    let server = boot(&ref_dirs, false);
    let ref_addr = server.addr;
    let mut reference: Vec<String> = Vec::new();
    drive(ref_addr, 0, &mut reference);
    assert_eq!(reference.len(), SLOTS);
    shutdown_and_wait(server);

    // --- victim: same script, SIGKILL after slot 3's decision ------
    let kill_dirs = Dirs::fresh("kill");
    let server = boot(&kill_dirs, false);
    let addr = server.addr;
    let mut resumed: Vec<String> = Vec::new();
    for t in 0..5 {
        ops_for(addr, t);
        tick(addr);
        if t >= 1 {
            resumed.push(wait_schedule(addr, t - 1, WAIT));
        }
    }
    // Slot 4 is journaled (its predecessor's decision landed), ops 0..4
    // are on disk: a hard kill now loses only in-flight compute.
    drop(server); // SIGKILL, no drain, no seal

    let server = boot(&kill_dirs, true);
    let addr = server.addr;
    // Recovery must repopulate the already-decided slots identically.
    for (t, want) in reference.iter().enumerate().take(4) {
        let got = wait_schedule(addr, t, WAIT);
        assert_eq!(&got, want, "replayed decision for slot {t} diverged");
    }
    // Continue the script where the victim died.
    for t in 5..SLOTS {
        ops_for(addr, t);
        tick(addr);
        resumed.push(wait_schedule(addr, t - 1, WAIT));
    }
    tick(addr);
    resumed.push(wait_schedule(addr, SLOTS - 1, WAIT));
    assert_eq!(resumed.len(), SLOTS);
    for (t, (got, want)) in resumed.iter().zip(&reference).enumerate() {
        assert_eq!(got, want, "post-kill decision for slot {t} diverged from reference");
    }

    // The restarted server still serves metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve_slots_total"), "metrics missing slot counter:\n{metrics}");
    shutdown_and_wait(server);

    // --- reboot the reference from its sealed final checkpoint -----
    assert!(has_checkpoints(&ref_dirs.checkpoints), "graceful shutdown sealed no checkpoint");
    let server = boot(&ref_dirs, true);
    let addr = server.addr;
    for (t, want) in reference.iter().enumerate() {
        let got = wait_schedule(addr, t, WAIT);
        assert_eq!(&got, want, "sealed-checkpoint reboot diverged at slot {t}");
    }
    shutdown_and_wait(server);
}

fn has_checkpoints(dir: &Path) -> bool {
    dir.join("manifest.bin").is_file()
}
