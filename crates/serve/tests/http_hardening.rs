//! Fail-closed property tests for the hand-rolled HTTP parser.
//!
//! The parser fronts an open TCP port, so its contract is adversarial:
//! whatever bytes arrive — random junk, truncated requests, oversized
//! declarations, one-byte trickles, stalled peers — it must answer with
//! a bounded-allocation 4xx and never panic, hang, or buffer without
//! limit.

use lpvs_serve::http::{parse_request, HttpError, HttpLimits};
use proptest::prelude::*;
use std::io::{Cursor, Read};
use std::time::{Duration, Instant};

fn far() -> Instant {
    Instant::now() + Duration::from_secs(5)
}

fn parse(bytes: &[u8]) -> Result<lpvs_serve::Request, HttpError> {
    parse_request(&mut Cursor::new(bytes), &HttpLimits::default(), far())
}

/// A reader that hands out at most `step` bytes per `read` call —
/// a well-behaved but slow peer.
struct Trickle<'a> {
    bytes: &'a [u8],
    pos: usize,
    step: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(buf.len()).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A peer that never sends anything: every read times out.
struct Stalled;

impl Read for Stalled {
    fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
        Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
    }
}

/// A well-formed POST whose framing the truncation property can cut.
fn valid_post(path_pad: usize, body_len: usize) -> Vec<u8> {
    let body: String = "x".repeat(body_len);
    format!(
        "POST /v1/t{} HTTP/1.1\r\nhost: a\r\ncontent-length: {}\r\n\r\n{}",
        "e".repeat(path_pad),
        body.len(),
        body
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser; any accepted request
    /// stays within the configured body cap.
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let limits = HttpLimits::default();
        match parse_request(&mut Cursor::new(&bytes), &limits, far()) {
            Ok(req) => prop_assert!(req.body.len() <= limits.max_body_bytes),
            Err(e) => {
                let s = e.status();
                prop_assert!((400..500).contains(&s), "non-4xx status {s} for {e:?}");
            }
        }
    }

    /// Any strict prefix of a valid POST fails closed — the parser
    /// never fabricates a request out of a half-delivered one.
    fn truncated_posts_fail_closed(
        pad in 0usize..32,
        body_len in 1usize..256,
        cut_frac in 0.0f64..1.0,
    ) {
        let full = valid_post(pad, body_len);
        let cut = 1 + ((full.len() - 2) as f64 * cut_frac) as usize; // in [1, len-1]
        let r = parse(&full[..cut]);
        prop_assert!(r.is_err(), "prefix of {} bytes parsed: {r:?}", cut);
        let status = r.unwrap_err().status();
        prop_assert!((400..500).contains(&status));
    }

    /// A header line without a colon is junk: always a 400, wherever
    /// it lands in the block.
    fn junk_header_lines_are_400(
        junk in prop::collection::vec(97u8..123, 1..40),
        before in 0usize..3,
    ) {
        let mut req = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..before {
            req.push_str(&format!("x-pad-{i}: y\r\n"));
        }
        req.push_str(std::str::from_utf8(&junk).unwrap());
        req.push_str("\r\nhost: a\r\n\r\n");
        let status = parse(req.as_bytes()).unwrap_err().status();
        prop_assert!(
            status == 400,
            "junk line {:?} got {status}, not 400",
            String::from_utf8_lossy(&junk)
        );
    }

    /// A huge declared content-length is refused up front (413) — the
    /// parser must reject on the declaration, not after buffering.
    fn oversized_declarations_are_413_before_any_body(extra in 1u64..u64::MAX / 2) {
        let limits = HttpLimits::default();
        let declared = limits.max_body_bytes as u64 + extra;
        let head = format!("POST /v1/telemetry HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        // No body bytes follow the declaration: if the parser tried to
        // read (or reserve) the declared length it would error on
        // truncation or allocation instead of the cap.
        let r = parse_request(&mut Cursor::new(head.as_bytes()), &limits, far());
        prop_assert_eq!(r, Err(HttpError::PayloadTooLarge));
    }

    /// A peer that trickles `step` bytes per read still parses to the
    /// same request as one that delivers everything at once.
    fn slow_trickle_parses_identically(
        pad in 0usize..32,
        body_len in 0usize..128,
        step in 1usize..17,
    ) {
        let full = valid_post(pad, body_len.max(1));
        let want = parse(&full).expect("reference parse");
        let mut trickle = Trickle { bytes: &full, pos: 0, step };
        let got = parse_request(&mut trickle, &HttpLimits::default(), far());
        prop_assert_eq!(got, Ok(want));
    }
}

#[test]
fn stalled_peer_hits_the_deadline_not_a_hang() {
    let deadline = Instant::now() + Duration::from_millis(5);
    let r = parse_request(&mut Stalled, &HttpLimits::default(), deadline);
    assert_eq!(r, Err(HttpError::Timeout));
}

#[test]
fn trickled_stall_mid_body_times_out() {
    // Headers arrive, then the peer goes quiet mid-body.
    struct HalfThenStall {
        sent: bool,
    }
    impl Read for HalfThenStall {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent {
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.sent = true;
            let head = b"POST /x HTTP/1.1\r\ncontent-length: 64\r\n\r\nhalf";
            buf[..head.len()].copy_from_slice(head);
            Ok(head.len())
        }
    }
    let deadline = Instant::now() + Duration::from_millis(20);
    let r = parse_request(&mut HalfThenStall { sent: false }, &HttpLimits::default(), deadline);
    assert_eq!(r, Err(HttpError::Timeout));
}
