//! Admission-control and load-shedding invariants, exercised over real
//! loopback sockets against an in-process server.
//!
//! * Admission is conserved: every session POST is exactly one of
//!   accepted / rejected-by-capacity / shed-by-queue / invalid, and the
//!   server's own counters agree with the client's tally.
//! * A browned-out edge answers 503 to arrivals and recovers when the
//!   factor comes back.
//! * Queue pressure rides the degradation ladder: the shed floor
//!   reported for a slot matches the queue occupancy that preceded it,
//!   and the tier actually used never undercuts the floor.

mod common;

use common::{request, str_field, wait_phase, wait_schedule};
use lpvs_serve::{floor_from_label, serve, ServeConfig};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

fn arrive(device: usize) -> String {
    format!("{{\"action\":\"arrive\",\"device\":{device},\"energy_j\":21000,\"gamma\":0.35}}")
}

fn depart(device: usize) -> String {
    format!("{{\"action\":\"depart\",\"device\":{device}}}")
}

#[test]
fn admission_is_conserved_and_brownouts_answer_503() {
    // 8 devices, 72% headroom: 0.72 * 8 = 5.76 compute units, so
    // exactly 5 concurrent unit-cost sessions fit.
    let handle = serve(ServeConfig::loopback(8)).expect("bind");
    let addr = handle.addr;
    wait_phase(addr, "live", WAIT);

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for device in 0..8 {
        match request(addr, "POST", "/v1/sessions", &arrive(device)).0 {
            202 => accepted += 1,
            429 => rejected += 1,
            s => panic!("unexpected status {s} for arrival {device}"),
        }
    }
    assert_eq!((accepted, rejected), (5, 3), "5.76 capacity admits exactly 5");

    // The server's own ledger agrees with the client's tally.
    {
        let adm = handle.shared().admission.lock().unwrap();
        assert_eq!(adm.accepted, accepted);
        assert_eq!(adm.rejected, rejected);
        assert_eq!(adm.active_sessions() as u64, accepted);
        assert_eq!(adm.accepted + adm.rejected, 8, "every POST accounted once");
    }

    // Brownout to zero: arrivals 503, departures still work.
    assert_eq!(request(addr, "POST", "/v1/brownout", "{\"factor\":0.0}").0, 202);
    let (status, body) = request(addr, "POST", "/v1/sessions", &arrive(6));
    assert_eq!(status, 503, "browned-out edge must refuse arrivals: {body}");
    assert_eq!(request(addr, "POST", "/v1/sessions", &depart(0)).0, 202);

    // Power restored: the freed seat is admittable again.
    assert_eq!(request(addr, "POST", "/v1/brownout", "{\"factor\":1.0}").0, 202);
    assert_eq!(request(addr, "POST", "/v1/sessions", &arrive(6)).0, 202);

    // Validation rejects don't touch the admission ledger.
    assert_eq!(request(addr, "POST", "/v1/sessions", &arrive(1)).0, 422, "duplicate session");
    assert_eq!(request(addr, "POST", "/v1/sessions", &arrive(99)).0, 422, "id past ceiling");
    assert_eq!(request(addr, "POST", "/v1/sessions", &depart(7)).0, 422, "never arrived");
    {
        let adm = handle.shared().admission.lock().unwrap();
        assert_eq!(adm.accepted, 6);
        assert_eq!(adm.rejected, 3);
        assert_eq!(adm.active_sessions(), 5);
    }

    request(addr, "POST", "/v1/shutdown", "{}");
    handle.join();
}

#[test]
fn queue_pressure_rides_the_degradation_ladder() {
    let mut config = ServeConfig::loopback(8);
    config.ops_queue = 8; // tiny bound so occupancy is scriptable
    let handle = serve(config).expect("bind");
    let addr = handle.addr;
    wait_phase(addr, "live", WAIT);

    // Three arrivals (37.5% occupancy: below every shed threshold),
    // then an idle slot so the queue is provably drained.
    for device in 0..3 {
        assert_eq!(request(addr, "POST", "/v1/sessions", &arrive(device)).0, 202);
    }
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    let slot0 = wait_schedule(addr, 0, WAIT);
    assert_eq!(str_field(&slot0, "shed_floor").as_deref(), Some("exact"), "{slot0}");
    assert_eq!(str_field(&slot0, "tier").as_deref(), Some("exact"), "{slot0}");

    // Six telemetry pushes on the *connected* rows (so their shards
    // really solve) peak at 75% occupancy — the greedy rung.
    let telemetry =
        |device: usize, energy: u32| format!("{{\"device\":{device},\"energy_j\":{energy}}}");
    for i in 0..6 {
        assert_eq!(request(addr, "POST", "/v1/telemetry", &telemetry(i % 3, 20000 - 100 * i as u32)).0, 202);
    }
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    let slot2 = wait_schedule(addr, 2, WAIT);
    assert_eq!(str_field(&slot2, "shed_floor").as_deref(), Some("greedy"), "{slot2}");
    let tier = floor_from_label(&str_field(&slot2, "tier").unwrap()).unwrap();
    let floor = floor_from_label("greedy").unwrap();
    assert!(tier >= floor, "tier {tier:?} undercuts the shed floor {floor:?}");

    // Fill the queue to the brim: the 8 fitting pushes are acknowledged
    // (the last at 100% occupancy raises the floor to selection reuse),
    // the ninth is shed with a 429 — never queued, never hung.
    for i in 0..8 {
        assert_eq!(request(addr, "POST", "/v1/telemetry", &telemetry(i % 3, 19000 - 100 * i as u32)).0, 202);
    }
    let (status, body) = request(addr, "POST", "/v1/telemetry", &telemetry(0, 15000));
    assert_eq!(status, 429, "a full queue must shed: {body}");
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    let slot4 = wait_schedule(addr, 4, WAIT);
    assert_eq!(str_field(&slot4, "shed_floor").as_deref(), Some("reused-previous"), "{slot4}");
    let tier4 = floor_from_label(&str_field(&slot4, "tier").unwrap()).unwrap();
    assert!(tier4 >= floor_from_label("reused-previous").unwrap(), "{slot4}");

    // The metrics endpoint accounts the shed and the per-tier solves.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve_shed_total"), "missing shed counter:\n{metrics}");
    assert!(metrics.contains("serve_slots_solved_total"), "missing solve counter:\n{metrics}");

    // The operator dashboard's scrape path sees the same counters the
    // raw exposition carries.
    let scraped = lpvs_obs::dashboard::scrape(&addr.to_string()).expect("scrape /metrics");
    let snapshot = lpvs_obs::dashboard::parse_prometheus(&scraped).expect("parse exposition");
    assert!(
        snapshot.counter("serve_shed_total").unwrap_or(0) >= 1,
        "scraped snapshot lost the shed counter:\n{scraped}"
    );
    let table = lpvs_obs::dashboard::render_dashboard(&snapshot, "scraped");
    assert!(table.contains("serve_slots_solved_total"), "dashboard table missing solves:\n{table}");

    request(addr, "POST", "/v1/shutdown", "{}");
    handle.join();
}

#[test]
fn schedules_select_only_connected_sessions() {
    let handle = serve(ServeConfig::loopback(6)).expect("bind");
    let addr = handle.addr;
    wait_phase(addr, "live", WAIT);

    for device in 0..3 {
        assert_eq!(request(addr, "POST", "/v1/sessions", &arrive(device)).0, 202);
    }
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    assert_eq!(request(addr, "POST", "/v1/tick", "{}").0, 202);
    let slot0 = wait_schedule(addr, 0, WAIT);
    assert_eq!(str_field(&slot0, "tier").as_deref(), Some("exact"), "{slot0}");
    assert_eq!(str_field(&slot0, "shed_floor").as_deref(), Some("exact"), "{slot0}");
    // Whatever was selected must be one of the three connected rows.
    let selected = slot0.split("\"selected\":[").nth(1).unwrap_or("").split(']').next().unwrap_or("");
    for id in selected.split(',').filter(|s| !s.is_empty()) {
        let id: usize = id.trim().parse().expect("numeric id");
        assert!(id < 3, "disconnected device {id} selected: {slot0}");
    }

    // Unknown slots are a clean 404, junk slots a 400.
    assert_eq!(request(addr, "GET", "/v1/schedule/999", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/schedule/banana", "").0, 400);

    request(addr, "POST", "/v1/shutdown", "{}");
    handle.join();
}
