//! Load shedding: queue pressure → degradation-ladder floor.
//!
//! `lpvs-serve` never queues without bound and never hangs a slot on an
//! expensive solve it no longer has headroom for. Before a request is
//! *dropped* (429), the service first trades solution quality for
//! latency by raising the **solver floor** of upcoming slots: the
//! occupancy of the bounded telemetry queue maps onto the lowest rung
//! of the resilient scheduler's degradation ladder
//! ([`SlotBudget::with_solver_floor`]), so a loaded edge jumps straight
//! to the Lagrangian relaxation, the greedy knapsack, or selection
//! reuse instead of paying for branch-and-bound it cannot afford.
//!
//! Only when the queue is *full* does the service reject — and counts
//! it, so the stress harness can report the shed fraction at each
//! operating point.
//!
//! [`SlotBudget::with_solver_floor`]: lpvs_core::budget::SlotBudget::with_solver_floor

use lpvs_core::scheduler::Degradation;

/// Occupancy at which shedding starts (Lagrangian floor).
pub const SHED_LAGRANGIAN: f64 = 0.5;
/// Occupancy at which the floor rises to the greedy knapsack.
pub const SHED_GREEDY: f64 = 0.75;
/// Occupancy at which the floor rises to selection reuse.
pub const SHED_REUSE: f64 = 0.9;

/// Maps telemetry-queue occupancy (`len / capacity`, in `[0, 1]`) to
/// the degradation-ladder floor upcoming slots must start at.
/// Non-finite occupancies are treated as fully loaded (fail closed).
pub fn shed_floor(occupancy: f64) -> Degradation {
    if !occupancy.is_finite() {
        return Degradation::ReusedPrevious;
    }
    if occupancy >= SHED_REUSE {
        Degradation::ReusedPrevious
    } else if occupancy >= SHED_GREEDY {
        Degradation::Greedy
    } else if occupancy >= SHED_LAGRANGIAN {
        Degradation::Lagrangian
    } else {
        Degradation::Exact
    }
}

/// Parses a [`Degradation::label`] back to its rung — the journal's
/// on-disk representation of a slot's shed floor.
pub fn floor_from_label(label: &str) -> Option<Degradation> {
    Degradation::ALL.into_iter().find(|d| d.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_monotone_in_occupancy() {
        let mut last = Degradation::Exact;
        for i in 0..=100 {
            let f = shed_floor(i as f64 / 100.0);
            assert!(f >= last, "floor regressed at occupancy {i}%");
            last = f;
        }
        assert_eq!(shed_floor(0.0), Degradation::Exact);
        assert_eq!(shed_floor(0.49), Degradation::Exact);
        assert_eq!(shed_floor(0.5), Degradation::Lagrangian);
        assert_eq!(shed_floor(0.75), Degradation::Greedy);
        assert_eq!(shed_floor(0.9), Degradation::ReusedPrevious);
        assert_eq!(shed_floor(1.0), Degradation::ReusedPrevious);
    }

    #[test]
    fn pathological_occupancies_fail_closed() {
        assert_eq!(shed_floor(f64::NAN), Degradation::ReusedPrevious);
        assert_eq!(shed_floor(f64::INFINITY), Degradation::ReusedPrevious);
        assert_eq!(shed_floor(-1.0), Degradation::Exact);
    }

    #[test]
    fn labels_round_trip() {
        for d in Degradation::ALL {
            assert_eq!(floor_from_label(d.label()), Some(d));
        }
        assert_eq!(floor_from_label("warp-speed"), None);
    }
}
