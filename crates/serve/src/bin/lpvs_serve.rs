//! `lpvs-serve` — boot the network-facing scheduler service.
//!
//! ```text
//! lpvs-serve [--addr 127.0.0.1:7070] [--devices 256] [--shards 2]
//!            [--tick-interval-ms 250 | --manual-tick]
//!            [--checkpoint-dir DIR] [--checkpoint-interval 4]
//!            [--journal FILE] [--resume] [--horizon N]
//! ```
//!
//! Prints `lpvs-serve listening on <addr>` once bound (port 0 resolves
//! to the picked port), then serves until `POST /v1/shutdown` drains
//! the slot loop and seals the final checkpoint.

use lpvs_serve::{serve, ServeConfig, TickMode};
use std::io::Write;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: lpvs-serve [--addr A] [--devices N] [--shards K] \
         [--tick-interval-ms MS | --manual-tick] [--checkpoint-dir DIR] \
         [--checkpoint-interval S] [--journal FILE] [--resume] [--horizon N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::loopback(256);
    config.addr = "127.0.0.1:7070".to_owned();
    config.tick = TickMode::Interval(Duration::from_millis(250));

    let mut args = std::env::args().skip(1);
    let mut devices = 256usize;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--devices" | "--max-devices" => {
                devices = value("--devices").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => config.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--tick-interval-ms" => {
                let ms: u64 = value("--tick-interval-ms").parse().unwrap_or_else(|_| usage());
                config.tick = TickMode::Interval(Duration::from_millis(ms.max(1)));
            }
            "--manual-tick" => config.tick = TickMode::Manual,
            "--checkpoint-dir" => config.checkpoint_dir = Some(value("--checkpoint-dir").into()),
            "--checkpoint-interval" => {
                config.checkpoint_interval =
                    value("--checkpoint-interval").parse().unwrap_or_else(|_| usage())
            }
            "--journal" => config.engine.journal = Some(value("--journal").into()),
            "--resume" => config.resume = true,
            "--horizon" => {
                let h: usize = value("--horizon").parse().unwrap_or_else(|_| usage());
                config.engine.horizon = (h > 0).then_some(h);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let sized = lpvs_serve::EngineConfig::sized(devices);
    config.engine.max_devices = sized.max_devices;
    config.engine.compute_capacity = sized.compute_capacity;
    config.engine.storage_capacity_gb = sized.storage_capacity_gb;

    match serve(config) {
        Ok(handle) => {
            // Tolerate a closed stdout (a supervisor that only reads the
            // banner): losing a log line must not fail the drain.
            let mut out = std::io::stdout();
            let _ = writeln!(out, "lpvs-serve listening on {}", handle.addr);
            let _ = out.flush();
            handle.join();
            let _ = writeln!(out, "lpvs-serve drained and sealed; bye");
        }
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    }
}
