//! Hand-rolled, fail-closed HTTP/1.1 request parsing and response
//! writing.
//!
//! The workspace vendors no async runtime and no HTTP stack, so the
//! server speaks a deliberately small dialect over blocking
//! [`std::io`]: one request per connection (`Connection: close` on
//! every response), `Content-Length` bodies only (chunked transfer is
//! rejected), and hard byte limits on every stage of the parse. The
//! parser is generic over [`Read`] so property tests can feed it
//! truncated, oversized, junk, and slow-trickle inputs without a
//! socket.
//!
//! Fail-closed means two things here:
//!
//! * every malformed input maps to a 4xx [`HttpError`] — the parser
//!   never panics, whatever the bytes;
//! * no input can make it allocate beyond its configured limits — the
//!   header buffer is capped *before* it grows, and the body buffer is
//!   reserved with `try_reserve_exact` so an allocator refusal is a
//!   413, not an abort.

use std::io::Read;
use std::time::Instant;

/// Byte limits on one request — the parser's allocation contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Cap on the request line (method + target + version).
    pub max_request_line: usize,
    /// Cap on the whole header block, request line included.
    pub max_header_bytes: usize,
    /// Cap on the declared (and read) body length.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self { max_request_line: 2048, max_header_bytes: 8192, max_body_bytes: 1 << 20 }
    }
}

/// How a request failed to parse, mapped onto the 4xx it earns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or framing → 400.
    BadRequest(&'static str),
    /// Request line exceeded its cap → 414.
    UriTooLong,
    /// Header block exceeded its cap → 431.
    HeadersTooLarge,
    /// Declared or delivered body exceeded its cap, or the allocator
    /// refused the reservation → 413.
    PayloadTooLarge,
    /// A POST without a `Content-Length` (chunked included) → 411.
    LengthRequired,
    /// The peer went quiet (or trickled) past the deadline → 408.
    Timeout,
    /// The connection closed mid-request → no response possible.
    ConnectionClosed,
}

impl HttpError {
    /// HTTP status code for this error (408 for both timeout flavors).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::PayloadTooLarge => 413,
            HttpError::LengthRequired => 411,
            HttpError::Timeout => 408,
            HttpError::ConnectionClosed => 400,
        }
    }
}

/// One parsed request: method, target path, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as received.
    pub method: String,
    /// Request target as received (path + optional query).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads and parses one HTTP/1.1 request from `reader`.
///
/// `deadline` bounds the whole parse: a peer that trickles bytes slower
/// than the socket timeout refreshes the read but still runs into the
/// deadline check between reads. The caller is expected to have set a
/// read timeout on the underlying socket so no single `read` blocks
/// past it.
///
/// # Errors
///
/// An [`HttpError`] naming the 4xx the connection should be answered
/// with ([`HttpError::ConnectionClosed`] when no answer is possible).
pub fn parse_request<R: Read>(
    reader: &mut R,
    limits: &HttpLimits,
    deadline: Instant,
) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    // --- header block ---------------------------------------------
    let header_end = loop {
        if let Some(pos) = find_header_end(&head) {
            break pos;
        }
        // Limits are enforced on what we already hold, before reading
        // more: an attacker streaming an endless header block is cut
        // off at the cap, not buffered.
        if head.len() > limits.max_header_bytes {
            return Err(overlong_head(&head, limits));
        }
        if Instant::now() >= deadline {
            return Err(HttpError::Timeout);
        }
        let want = chunk.len().min(limits.max_header_bytes + 4 - head.len() + 1);
        match reader.read(&mut chunk[..want.max(1)]) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    HttpError::ConnectionClosed
                } else {
                    HttpError::BadRequest("truncated header block")
                });
            }
            Ok(n) => {
                if head.try_reserve_exact(n).is_err() {
                    return Err(HttpError::HeadersTooLarge);
                }
                head.extend_from_slice(&chunk[..n]);
            }
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::ConnectionClosed),
        }
    };
    if header_end > limits.max_header_bytes {
        return Err(overlong_head(&head[..header_end], limits));
    }
    let header_text =
        std::str::from_utf8(&head[..header_end]).map_err(|_| HttpError::BadRequest("non-UTF-8 header block"))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequest("empty request"))?;
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::UriTooLong);
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or(HttpError::BadRequest("no method"))?;
    let path = parts.next().filter(|p| p.starts_with('/')).ok_or(HttpError::BadRequest("bad target"))?;
    let version = parts.next().ok_or(HttpError::BadRequest("no version"))?;
    if parts.next().is_some() || !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadRequest("bad version"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("bad method"));
    }

    // --- headers we care about ------------------------------------
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("junk header line"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("bad header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let len: usize =
                value.parse().map_err(|_| HttpError::BadRequest("bad content-length"))?;
            if content_length.replace(len).is_some() {
                return Err(HttpError::BadRequest("duplicate content-length"));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked framing is out of dialect; demand a plain length.
            return Err(HttpError::LengthRequired);
        }
    }

    // --- body ------------------------------------------------------
    let already = head.len() - header_end - 4;
    let declared = match content_length {
        Some(len) => len,
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None if already > 0 => return Err(HttpError::BadRequest("body without content-length")),
        None => 0,
    };
    if declared > limits.max_body_bytes || already > declared {
        return Err(HttpError::PayloadTooLarge);
    }
    // Fail-closed allocation: the reservation is bounded by the limit
    // check above, and an allocator refusal degrades to a 413 instead
    // of aborting the worker.
    let mut body: Vec<u8> = Vec::new();
    if body.try_reserve_exact(declared).is_err() {
        return Err(HttpError::PayloadTooLarge);
    }
    body.extend_from_slice(&head[header_end + 4..]);
    while body.len() < declared {
        if Instant::now() >= deadline {
            return Err(HttpError::Timeout);
        }
        let want = chunk.len().min(declared - body.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::BadRequest("truncated body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::ConnectionClosed),
        }
    }
    Ok(Request { method: method.to_owned(), path: path.to_owned(), body })
}

/// Distinguishes an overlong request line (414) from an overlong
/// header block (431) when the cap is blown before the terminator.
fn overlong_head(head: &[u8], limits: &HttpLimits) -> HttpError {
    let first_line_done = head.iter().position(|&b| b == b'\n');
    match first_line_done {
        Some(_) => HttpError::HeadersTooLarge,
        None if head.len() > limits.max_request_line => HttpError::UriTooLong,
        None => HttpError::HeadersTooLarge,
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one response with `Connection: close` framing.
pub fn render_response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders a JSON error body for `status` with a short detail string.
pub fn error_body(status: u16, detail: &str) -> Vec<u8> {
    use lpvs_obs::json::Json;
    Json::obj([
        ("error", Json::Str(reason(status).to_owned())),
        ("status", Json::Num(f64::from(status))),
        ("detail", Json::Str(detail.to_owned())),
    ])
    .to_string()
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(bytes), &HttpLimits::default(), far())
    }

    #[test]
    fn parses_a_get_and_a_post() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/healthz"));
        assert!(r.body.is_empty());
        let r = parse(b"POST /v1/tick HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}").unwrap();
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn truncation_and_junk_fail_closed() {
        assert_eq!(parse(b""), Err(HttpError::ConnectionClosed));
        assert_eq!(parse(b"GET /x HTTP/1.1\r\n"), Err(HttpError::BadRequest("truncated header block")));
        assert!(matches!(parse(b"\x00\xffgarbage\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 2\r\n\r\nhi"),
            Err(HttpError::LengthRequired)
        );
    }

    #[test]
    fn oversized_inputs_hit_their_caps() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4096));
        assert_eq!(parse(long_line.as_bytes()), Err(HttpError::UriTooLong));
        let many_headers =
            format!("GET / HTTP/1.1\r\n{}\r\n", "x-pad: yyyyyyyyyyyyyyyy\r\n".repeat(512));
        assert_eq!(parse(many_headers.as_bytes()), Err(HttpError::HeadersTooLarge));
        let big_body = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 64 << 20);
        assert_eq!(parse(big_body.as_bytes()), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn response_rendering_frames_the_body() {
        let bytes = render_response(429, "application/json", b"{}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
