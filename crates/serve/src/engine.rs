//! The serving engine: a [`SlotSource`]/[`SlotSink`]/[`SlotReplay`]
//! driver that turns HTTP-ingested telemetry and session churn into
//! pipelined slot solves.
//!
//! ## State model
//!
//! The engine owns one **persistent** [`DeviceFleet`] sized to the
//! configured device ceiling at boot — chunk layouts and per-session
//! costs are fixed at push time, so a "session" is a row toggling its
//! `connected` bit, and a disconnected row costs nothing (the
//! partitioner skips it). Arrivals, departures, telemetry, brownouts,
//! and γ observations queue as [`Op`]s in the bounded [`Shared`] queue;
//! the engine drains them **only at slot boundaries**, so every fleet
//! mutation goes through the dirty-bit setters and steady-state slots
//! ship a small [`SlotDelta`] frontier to the workers.
//!
//! ## Durability: the op journal
//!
//! Every drained op is appended to a JSON-lines journal *before* it is
//! applied, followed by a `slot` marker binding the batch to its slot
//! (and recording the slot's shed floor and γ-query list) and, at
//! gather time, a `gamma` marker recording the posterior values written
//! into the fleet. Together with the runtime's checkpoint store this
//! makes a killed server resumable **bit-identically**: banks come back
//! from the newest sealed checkpoint round, decided slots replay
//! through [`SlotReplay`], and journaled-but-undecided slots re-run
//! with exactly the ops, shed floor, and γ updates of the original run.
//! Ops acknowledged but not yet bound to a slot marker survive in the
//! journal tail and are re-queued on boot.

use crate::shed::{floor_from_label, shed_floor};
use lpvs_bayes::GammaEstimator;
use lpvs_core::budget::SlotBudget;
use lpvs_core::delta::SlotDelta;
use lpvs_core::fleet::{DeviceFleet, FleetDevice};
use lpvs_core::problem::DeviceRequest;
use lpvs_core::scheduler::Degradation;
use lpvs_display::DisplayKind;
use lpvs_edge::server::EdgeServer;
use lpvs_obs::json::Json;
use lpvs_runtime::{BankOps, GatheredSlot, SlotFeedback, SlotReplay, SlotSink, SlotSource, SolvedSlot};
use lpvs_survey::curve::AnxietyCurve;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Battery capacity every served device reports (J) — the paper's
/// 55 440 J pack (3.85 V, 4 Ah).
pub const CAPACITY_J: f64 = 55_440.0;
/// Edge compute units one admitted session reserves.
pub const SESSION_COMPUTE_COST: f64 = 1.0;
/// Edge storage one admitted session reserves (GB).
pub const SESSION_STORAGE_GB: f64 = 0.1125;
/// Decided slots kept addressable by `GET /v1/schedule/{slot}`.
const SCHEDULE_RETENTION: usize = 4096;

/// Engine configuration (the solver-facing half of the server config).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Device-id ceiling: ids live in `[0, max_devices)` and the fleet
    /// holds exactly this many rows for the whole run.
    pub max_devices: usize,
    /// Edge compute capacity admission and solves run against.
    pub compute_capacity: f64,
    /// Edge storage capacity (GB).
    pub storage_capacity_gb: f64,
    /// Regularization λ.
    pub lambda: f64,
    /// Stop after this many slots (`None`: run until shutdown).
    pub horizon: Option<usize>,
    /// Op journal path (`None` disables durability for ops — resume
    /// then only covers checkpointed state).
    pub journal: Option<PathBuf>,
}

impl EngineConfig {
    /// A config for `max_devices` devices with nokia-airframe-shaped
    /// per-device capacity headroom (~72% concurrent admission).
    pub fn sized(max_devices: usize) -> Self {
        Self {
            max_devices,
            compute_capacity: 0.72 * SESSION_COMPUTE_COST * max_devices as f64,
            storage_capacity_gb: 0.72 * SESSION_STORAGE_GB * max_devices as f64,
            lambda: 1.0,
            horizon: None,
            journal: None,
        }
    }
}

/// One queued mutation, drained at the next slot boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A session arrived (admission already accounted at the HTTP
    /// layer): connect the row and seed its state.
    Arrive {
        /// Device id.
        device: usize,
        /// Reported battery energy (J).
        energy_j: f64,
        /// Initial γ mean.
        gamma: f64,
        /// OLED panel (LCD otherwise).
        oled: bool,
    },
    /// A session departed: disconnect the row.
    Depart {
        /// Device id.
        device: usize,
    },
    /// Mid-session telemetry; every field optional.
    Telemetry {
        /// Device id.
        device: usize,
        /// Updated battery energy (J).
        energy_j: Option<f64>,
        /// Updated γ belief `(mean, std)` pushed straight into the row.
        gamma: Option<(f64, f64)>,
        /// Panel change.
        oled: Option<bool>,
        /// Observed power-reduction ratio — γ feedback routed through
        /// the Bayes banks.
        observed: Option<f64>,
    },
    /// Edge brownout: capacity factor in `[0, 1]` until further notice.
    Brownout {
        /// Multiplicative capacity factor.
        factor: f64,
    },
}

impl Op {
    /// The op as one journal line.
    fn to_json(&self) -> Json {
        match self {
            Op::Arrive { device, energy_j, gamma, oled } => Json::obj([
                ("op", Json::Str("arrive".into())),
                ("device", Json::Num(*device as f64)),
                ("energy_j", Json::Num(*energy_j)),
                ("gamma", Json::Num(*gamma)),
                ("oled", Json::Bool(*oled)),
            ]),
            Op::Depart { device } => Json::obj([
                ("op", Json::Str("depart".into())),
                ("device", Json::Num(*device as f64)),
            ]),
            Op::Telemetry { device, energy_j, gamma, oled, observed } => {
                let mut pairs = vec![
                    ("op", Json::Str("telemetry".into())),
                    ("device", Json::Num(*device as f64)),
                ];
                if let Some(e) = energy_j {
                    pairs.push(("energy_j", Json::Num(*e)));
                }
                if let Some((m, s)) = gamma {
                    pairs.push(("gamma_mean", Json::Num(*m)));
                    pairs.push(("gamma_std", Json::Num(*s)));
                }
                if let Some(o) = oled {
                    pairs.push(("oled", Json::Bool(*o)));
                }
                if let Some(r) = observed {
                    pairs.push(("observed", Json::Num(*r)));
                }
                Json::obj(pairs)
            }
            Op::Brownout { factor } => Json::obj([
                ("op", Json::Str("brownout".into())),
                ("factor", Json::Num(*factor)),
            ]),
        }
    }

    /// Parses one journal op line (`None`: not an op or malformed).
    fn from_json(v: &Json) -> Option<Op> {
        let kind = v.get("op")?.as_str()?;
        let device = || v.get("device")?.as_u64().map(|d| d as usize);
        match kind {
            "arrive" => Some(Op::Arrive {
                device: device()?,
                energy_j: v.get("energy_j")?.as_f64()?,
                gamma: v.get("gamma")?.as_f64()?,
                oled: matches!(v.get("oled"), Some(Json::Bool(true))),
            }),
            "depart" => Some(Op::Depart { device: device()? }),
            "telemetry" => Some(Op::Telemetry {
                device: device()?,
                energy_j: v.get("energy_j").and_then(Json::as_f64),
                gamma: match (
                    v.get("gamma_mean").and_then(Json::as_f64),
                    v.get("gamma_std").and_then(Json::as_f64),
                ) {
                    (Some(m), Some(s)) => Some((m, s)),
                    _ => None,
                },
                oled: v.get("oled").map(|o| matches!(o, Json::Bool(true))),
                observed: v.get("observed").and_then(Json::as_f64),
            }),
            "brownout" => Some(Op::Brownout { factor: v.get("factor")?.as_f64()? }),
            _ => None,
        }
    }
}

/// The bounded op queue plus the slot clock's signalling state.
#[derive(Debug)]
pub struct OpsQueue {
    /// Pending ops, drained at the next slot boundary.
    pub ops: VecDeque<Op>,
    /// Queue bound; a push beyond it is a shed (429).
    pub capacity: usize,
    /// Pending slot ticks (manual `/v1/tick` posts or the interval
    /// ticker); each consumed tick runs one slot.
    pub ticks: usize,
    /// Graceful-shutdown latch: pending ops still run one final slot,
    /// then the engine ends the horizon.
    pub shutdown: bool,
    /// Worst shed floor any enqueue saw since the last drain — the
    /// next slot's solver floor.
    pub shed_high_water: Degradation,
}

/// Session admission state, checked and updated at the HTTP layer.
#[derive(Debug)]
pub struct Admission {
    /// The un-browned edge capacity envelope.
    pub server: EdgeServer,
    /// Current brownout factor in `[0, 1]` (`0` ⇒ sessions get 503).
    pub brownout: f64,
    /// Compute currently reserved by admitted sessions.
    pub compute_reserved: f64,
    /// Storage currently reserved by admitted sessions (GB).
    pub storage_reserved_gb: f64,
    /// Per-device session liveness.
    pub active: Vec<bool>,
    /// Sessions admitted over the run.
    pub accepted: u64,
    /// Sessions rejected by admission (capacity) over the run.
    pub rejected: u64,
}

impl Admission {
    /// Whether one more session fits under the browned-out envelope.
    pub fn fits_one(&self) -> bool {
        self.server.browned_out(self.brownout).fits(
            self.compute_reserved + SESSION_COMPUTE_COST,
            self.storage_reserved_gb + SESSION_STORAGE_GB,
        )
    }

    /// Active session count.
    pub fn active_sessions(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// One decided slot as served by `GET /v1/schedule/{slot}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Device ids selected for low-power transformation.
    pub selected: Vec<usize>,
    /// Ladder rung the solve actually finished at.
    pub tier: Degradation,
    /// Shed floor the slot was dispatched with (`tier >= shed` always).
    pub shed: Degradation,
}

/// Server lifecycle phase, reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Replaying the journal/checkpoints; sessions get 503.
    Recovering,
    /// Serving.
    Live,
    /// The slot loop has drained and the final checkpoint is sealed.
    Stopped,
}

impl Phase {
    /// Lowercase wire name.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Recovering => "recovering",
            Phase::Live => "live",
            Phase::Stopped => "stopped",
        }
    }
}

/// Observable run status.
#[derive(Debug)]
pub struct Status {
    /// Lifecycle phase.
    pub phase: Phase,
    /// Slots fully applied so far.
    pub slots: usize,
}

/// State shared between the HTTP workers and the engine.
pub struct Shared {
    /// The bounded op queue + slot clock.
    pub queue: Mutex<OpsQueue>,
    /// Signals queue pushes, ticks, and shutdown.
    pub clock: Condvar,
    /// Session admission state.
    pub admission: Mutex<Admission>,
    /// Decided slots, newest `SCHEDULE_RETENTION` retained.
    pub schedules: Mutex<BTreeMap<usize, Decision>>,
    /// Lifecycle + progress.
    pub status: Mutex<Status>,
}

impl Shared {
    /// Fresh shared state for `config`.
    pub fn new(config: &EngineConfig, queue_capacity: usize) -> Arc<Shared> {
        Arc::new(Shared {
            queue: Mutex::new(OpsQueue {
                ops: VecDeque::new(),
                capacity: queue_capacity.max(1),
                ticks: 0,
                shutdown: false,
                shed_high_water: Degradation::Exact,
            }),
            clock: Condvar::new(),
            admission: Mutex::new(Admission {
                server: EdgeServer::new(config.compute_capacity, config.storage_capacity_gb),
                brownout: 1.0,
                compute_reserved: 0.0,
                storage_reserved_gb: 0.0,
                active: vec![false; config.max_devices],
                accepted: 0,
                rejected: 0,
            }),
            schedules: Mutex::new(BTreeMap::new()),
            status: Mutex::new(Status { phase: Phase::Recovering, slots: 0 }),
        })
    }

    /// Enqueues an op, enforcing the bound and raising the shed
    /// high-water mark. `false` means the queue was full (shed the
    /// request with a 429).
    #[must_use]
    pub fn enqueue(&self, op: Op) -> bool {
        let mut q = self.queue.lock().expect("ops queue poisoned");
        if q.ops.len() >= q.capacity {
            lpvs_obs::inc("serve_shed_total");
            return false;
        }
        q.ops.push_back(op);
        let occupancy = q.ops.len() as f64 / q.capacity as f64;
        q.shed_high_water = q.shed_high_water.max(shed_floor(occupancy));
        if lpvs_obs::enabled() {
            lpvs_obs::gauge_set("serve_queue_depth", q.ops.len() as f64);
        }
        drop(q);
        self.clock.notify_all();
        true
    }

    /// Adds a slot tick.
    pub fn tick(&self) {
        let mut q = self.queue.lock().expect("ops queue poisoned");
        q.ticks += 1;
        drop(q);
        self.clock.notify_all();
    }

    /// Latches graceful shutdown.
    pub fn shutdown(&self) {
        let mut q = self.queue.lock().expect("ops queue poisoned");
        q.shutdown = true;
        drop(q);
        self.clock.notify_all();
    }

    /// Records `phase` (and optionally the applied-slot counter).
    pub fn set_phase(&self, phase: Phase) {
        self.status.lock().expect("status poisoned").phase = phase;
    }
}

/// One slot's journaled record, parsed at boot.
#[derive(Debug, Clone, Default)]
struct SlotJournal {
    ops: Vec<Op>,
    shed: Degradation,
    queries: Vec<usize>,
    /// γ posterior values the original gather wrote into the fleet.
    gamma: Option<Vec<(usize, f64, f64)>>,
}

/// Journal parse result: per-slot records plus the unbound tail.
struct ParsedJournal {
    slots: Vec<SlotJournal>,
    trailing: Vec<Op>,
}

fn parse_journal(path: &PathBuf) -> ParsedJournal {
    let mut slots: Vec<SlotJournal> = Vec::new();
    let mut pending: Vec<Op> = Vec::new();
    let Ok(file) = File::open(path) else {
        return ParsedJournal { slots, trailing: pending };
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // A torn tail (crash mid-write) stops the parse; everything
        // before it is intact because markers are written after their
        // ops in one flush.
        let Ok(v) = Json::parse(&line) else { break };
        let Some(kind) = v.get("op").and_then(Json::as_str) else { break };
        match kind {
            "slot" => {
                let (Some(slot), Some(n)) = (
                    v.get("slot").and_then(Json::as_u64).map(|s| s as usize),
                    v.get("ops").and_then(Json::as_u64).map(|n| n as usize),
                ) else {
                    break;
                };
                if slot != slots.len() || n != pending.len() {
                    break; // out-of-order or torn batch: stop trusting
                }
                let shed = v
                    .get("shed")
                    .and_then(Json::as_str)
                    .and_then(floor_from_label)
                    .unwrap_or(Degradation::Exact);
                let queries = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(|q| q.as_u64().map(|d| d as usize)).collect())
                    .unwrap_or_default();
                slots.push(SlotJournal {
                    ops: std::mem::take(&mut pending),
                    shed,
                    queries,
                    gamma: None,
                });
            }
            "gamma" => {
                let Some(slot) = v.get("slot").and_then(Json::as_u64).map(|s| s as usize) else {
                    break;
                };
                if slot + 1 != slots.len() {
                    break;
                }
                let Some(last) = slots.last_mut() else { break };
                let updates = v
                    .get("updates")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(|u| {
                                let u = u.as_arr()?;
                                Some((
                                    u.first()?.as_u64()? as usize,
                                    u.get(1)?.as_f64()?,
                                    u.get(2)?.as_f64()?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                last.gamma = Some(updates);
            }
            _ => match Op::from_json(&v) {
                Some(op) => pending.push(op),
                None => break,
            },
        }
    }
    ParsedJournal { slots, trailing: pending }
}

/// The serving engine. Exclusively owned by the runtime thread; talks
/// to the HTTP layer only through [`Shared`].
pub struct ServeEngine {
    config: EngineConfig,
    shared: Arc<Shared>,
    fleet: DeviceFleet,
    curve: AnxietyCurve,
    /// Previous slot's selection (fleet order), for warm starts.
    previous: Option<Vec<bool>>,
    /// γ observations drained this slot, returned by `apply`.
    feedback: Vec<(usize, f64)>,
    /// Devices whose posterior the *next* slot queries (= devices
    /// observed in the last applied slot).
    next_queries: Vec<usize>,
    /// The live slot's query list (journaled in the slot marker).
    queries: Vec<usize>,
    /// Per-slot shed floor, consumed when the slot's solve lands.
    sheds: BTreeMap<usize, Degradation>,
    /// Engine-side brownout factor (journaled via `Op::Brownout`).
    brownout: f64,
    journal_file: Option<File>,
    /// Journal records from a previous incarnation, replayed/re-run.
    journaled: Vec<SlotJournal>,
    /// Slots fully applied (the next slot index; the seal slot).
    applied: usize,
}

impl ServeEngine {
    /// Builds the engine, loading (and re-queueing the unbound tail of)
    /// the journal when one is configured. The fleet starts fully
    /// disconnected; admission state is rebuilt from the journal so the
    /// HTTP layer starts from the same session set the previous
    /// incarnation held.
    pub fn new(config: EngineConfig, shared: Arc<Shared>) -> Self {
        assert!(config.max_devices > 0, "serve fleet must be nonempty");
        let mut fleet = DeviceFleet::with_capacity(config.max_devices, 30);
        for _ in 0..config.max_devices {
            fleet.push(FleetDevice::from_request(DeviceRequest::uniform(
                0.9,
                10.0,
                30,
                0.5 * CAPACITY_J,
                CAPACITY_J,
                0.3,
                SESSION_COMPUTE_COST,
                SESSION_STORAGE_GB,
            )));
        }
        for d in 0..config.max_devices {
            fleet.set_connected(d, false);
        }

        let parsed = config
            .journal
            .as_ref()
            .map(parse_journal)
            .unwrap_or(ParsedJournal { slots: Vec::new(), trailing: Vec::new() });
        let mut brownout = 1.0;
        {
            // Rebuild admission from the journaled history: arrivals,
            // departures, and the standing brownout factor.
            let mut adm = shared.admission.lock().expect("admission poisoned");
            let all_ops = parsed
                .slots
                .iter()
                .flat_map(|s| s.ops.iter())
                .chain(parsed.trailing.iter());
            for op in all_ops {
                match op {
                    Op::Arrive { device, .. } => {
                        if !adm.active[*device] {
                            adm.active[*device] = true;
                            adm.compute_reserved += SESSION_COMPUTE_COST;
                            adm.storage_reserved_gb += SESSION_STORAGE_GB;
                            adm.accepted += 1;
                        }
                    }
                    Op::Depart { device } => {
                        if adm.active[*device] {
                            adm.active[*device] = false;
                            adm.compute_reserved -= SESSION_COMPUTE_COST;
                            adm.storage_reserved_gb -= SESSION_STORAGE_GB;
                        }
                    }
                    Op::Brownout { factor } => brownout = *factor,
                    Op::Telemetry { .. } => {}
                }
            }
            adm.brownout = brownout;
        }
        {
            let mut q = shared.queue.lock().expect("ops queue poisoned");
            for op in parsed.trailing.iter().rev() {
                q.ops.push_front(op.clone());
            }
        }
        // Brownout at *engine* level replays per-slot (ops are applied
        // in slot order), so start from 1.0 like the original run did.
        let journal_file = config.journal.as_ref().map(|p| {
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .expect("op journal must be writable")
        });
        Self {
            config,
            shared,
            fleet,
            curve: AnxietyCurve::paper_shape(),
            previous: None,
            feedback: Vec::new(),
            next_queries: Vec::new(),
            queries: Vec::new(),
            sheds: BTreeMap::new(),
            brownout: 1.0,
            journal_file,
            journaled: parsed.slots,
            applied: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Paper-default γ estimators for a fresh run.
    pub fn estimators(&self) -> Vec<GammaEstimator> {
        vec![GammaEstimator::paper_default(); self.config.max_devices]
    }

    /// Slots fully applied — the slot index a sealed final checkpoint
    /// should carry so a resumed run re-enters right after them.
    pub fn applied_slots(&self) -> usize {
        self.applied
    }

    /// Highest slot the journal already covers, if any. Slots at or
    /// below this re-run from the journal instead of the live queue.
    pub fn journaled_through(&self) -> Option<usize> {
        self.journaled.len().checked_sub(1)
    }

    fn journal_lines(&mut self, lines: &[String]) {
        let Some(file) = self.journal_file.as_mut() else { return };
        let mut buf = String::new();
        for line in lines {
            buf.push_str(line);
            buf.push('\n');
        }
        // Fail-stop on journal I/O errors would lose availability for a
        // durability feature; log-and-continue keeps serving (the op was
        // acknowledged as at-most-once anyway).
        if file.write_all(buf.as_bytes()).and_then(|()| file.sync_data()).is_err() {
            lpvs_obs::inc("serve_journal_errors_total");
        }
    }

    /// Applies one drained batch to the fleet through the dirty-bit
    /// setters, buffering γ observations for `apply`.
    fn apply_ops(&mut self, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Arrive { device, energy_j, gamma, oled } => {
                    self.fleet.set_connected(*device, true);
                    self.fleet.set_energy_j(*device, *energy_j);
                    self.fleet.set_gamma(*device, *gamma, 0.0);
                    self.fleet.set_display(
                        *device,
                        if *oled { DisplayKind::Oled } else { DisplayKind::Lcd },
                    );
                }
                Op::Depart { device } => self.fleet.set_connected(*device, false),
                Op::Telemetry { device, energy_j, gamma, oled, observed } => {
                    if let Some(e) = energy_j {
                        self.fleet.set_energy_j(*device, *e);
                    }
                    if let Some((m, s)) = gamma {
                        self.fleet.set_gamma(*device, *m, *s);
                    }
                    if let Some(o) = oled {
                        self.fleet.set_display(
                            *device,
                            if *o { DisplayKind::Oled } else { DisplayKind::Lcd },
                        );
                    }
                    if let Some(r) = observed {
                        self.feedback.push((*device, *r));
                    }
                }
                Op::Brownout { factor } => self.brownout = factor.clamp(0.0, 1.0),
            }
        }
    }

    /// Blocks until a tick (or shutdown) grants the next slot, then
    /// drains the queue. `None` ends the run.
    fn drain_live(&mut self) -> Option<(Vec<Op>, Degradation)> {
        let mut q = self.shared.queue.lock().expect("ops queue poisoned");
        loop {
            if q.shutdown {
                if q.ops.is_empty() {
                    return None;
                }
                break; // final slot for the acknowledged stragglers
            }
            if q.ticks > 0 {
                q.ticks -= 1;
                break;
            }
            // The timeout only bounds a missed notification; the slot
            // clock itself is ticks.
            let (guard, _) = self
                .shared
                .clock
                .wait_timeout(q, Duration::from_millis(50))
                .expect("ops queue poisoned");
            q = guard;
        }
        let ops: Vec<Op> = q.ops.drain(..).collect();
        let shed = std::mem::replace(&mut q.shed_high_water, Degradation::Exact);
        if lpvs_obs::enabled() {
            lpvs_obs::gauge_set("serve_queue_depth", 0.0);
        }
        Some((ops, shed))
    }

    fn record_decision(&mut self, slot: usize, selected: Vec<usize>, tier: Degradation) {
        let shed = self.sheds.remove(&slot).unwrap_or(Degradation::Exact);
        if lpvs_obs::enabled() {
            lpvs_obs::inc_labeled("serve_slots_solved_total", &[("tier", tier.label())]);
        }
        let mut log = self.shared.schedules.lock().expect("schedule log poisoned");
        log.insert(slot, Decision { selected, tier, shed });
        while log.len() > SCHEDULE_RETENTION {
            let oldest = *log.keys().next().expect("nonempty");
            log.remove(&oldest);
        }
    }
}

impl SlotSource for ServeEngine {
    fn begin_slot(&mut self, slot: usize) -> Option<BankOps> {
        if let Some(h) = self.config.horizon {
            if slot >= h {
                return None;
            }
        }
        let (ops, shed, queries) = if slot < self.journaled.len() {
            // Re-run of a journaled slot: same ops, shed floor, and
            // query list as the original incarnation; nothing is
            // re-journaled and no tick is consumed.
            let j = &self.journaled[slot];
            (j.ops.clone(), j.shed, j.queries.clone())
        } else {
            self.shared.set_phase(Phase::Live);
            let (ops, shed) = self.drain_live()?;
            let queries = std::mem::take(&mut self.next_queries);
            let mut lines: Vec<String> = ops.iter().map(|o| o.to_json().to_string()).collect();
            lines.push(
                Json::obj([
                    ("op", Json::Str("slot".into())),
                    ("slot", Json::Num(slot as f64)),
                    ("ops", Json::Num(ops.len() as f64)),
                    ("shed", Json::Str(shed.label().into())),
                    (
                        "queries",
                        Json::Arr(queries.iter().map(|&d| Json::Num(d as f64)).collect()),
                    ),
                ])
                .to_string(),
            );
            self.journal_lines(&lines);
            self.journaled.push(SlotJournal {
                ops: ops.clone(),
                shed,
                queries: queries.clone(),
                gamma: None,
            });
            (ops, shed, queries)
        };
        self.apply_ops(&ops);
        self.sheds.insert(slot, shed);
        self.queries = queries.clone();
        if lpvs_obs::enabled() {
            lpvs_obs::inc("serve_slots_total");
            lpvs_obs::gauge_set(
                "serve_shed_floor",
                shed.severity() as f64,
            );
        }
        Some(BankOps { forgets: Vec::new(), queries })
    }

    fn gather(
        &mut self,
        slot: usize,
        posteriors: &[(f64, f64)],
        recycled: Option<DeviceFleet>,
    ) -> Option<GatheredSlot> {
        // Fold the queried posteriors into the fleet rows. On a re-run
        // the journaled values are replayed verbatim; live slots record
        // what they wrote so a future re-run can do the same.
        let journaled_gamma = self.journaled.get(slot).and_then(|j| j.gamma.clone());
        let updates: Vec<(usize, f64, f64)> = match journaled_gamma {
            Some(updates) => updates,
            None => {
                let updates: Vec<(usize, f64, f64)> = self
                    .queries
                    .iter()
                    .zip(posteriors)
                    .map(|(&d, &(mean, std))| (d, mean, std))
                    .collect();
                let line = Json::obj([
                    ("op", Json::Str("gamma".into())),
                    ("slot", Json::Num(slot as f64)),
                    (
                        "updates",
                        Json::Arr(
                            updates
                                .iter()
                                .map(|&(d, m, s)| {
                                    Json::Arr(vec![
                                        Json::Num(d as f64),
                                        Json::Num(m),
                                        Json::Num(s),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
                .to_string();
                self.journal_lines(&[line]);
                if let Some(j) = self.journaled.get_mut(slot) {
                    j.gamma = Some(updates.clone());
                }
                updates
            }
        };
        for &(d, mean, std) in &updates {
            self.fleet.set_gamma(d, mean, std);
        }

        let delta = Some(SlotDelta::from(self.fleet.dirty_frontier()));
        self.fleet.clear_dirty();
        let fleet = match recycled {
            Some(mut buffer) => {
                buffer.clone_from(&self.fleet);
                buffer
            }
            None => self.fleet.clone(),
        };
        let shed = self.sheds.get(&slot).copied().unwrap_or(Degradation::Exact);
        let mut budget = SlotBudget::unbounded();
        if shed > Degradation::Exact {
            budget = budget.with_solver_floor(shed);
        }
        let envelope = EdgeServer::new(self.config.compute_capacity, self.config.storage_capacity_gb)
            .browned_out(self.brownout);
        Some(GatheredSlot {
            slot,
            fleet,
            device_ids: (0..self.config.max_devices).collect(),
            compute_capacity: envelope.compute_capacity(),
            storage_capacity_gb: envelope.storage_capacity_gb(),
            lambda: self.config.lambda,
            curve: self.curve.clone(),
            budget,
            warm: self.previous.clone(),
            delta,
        })
    }
}

impl SlotSink for ServeEngine {
    fn solved(&mut self, solved: &SolvedSlot) {
        self.previous = Some(solved.schedule.selected.clone());
        let selected: Vec<usize> = solved
            .schedule
            .selected
            .iter()
            .enumerate()
            .filter_map(|(d, &on)| on.then_some(d))
            .collect();
        self.record_decision(solved.slot, selected, solved.tier);
    }

    fn apply(&mut self, slot: usize) -> SlotFeedback {
        let observations = std::mem::take(&mut self.feedback);
        let mut devices: Vec<usize> = observations.iter().map(|&(d, _)| d).collect();
        devices.sort_unstable();
        devices.dedup();
        self.next_queries = devices;
        self.applied = slot + 1;
        {
            let mut status = self.shared.status.lock().expect("status poisoned");
            status.slots = self.applied;
        }
        if lpvs_obs::enabled() {
            lpvs_obs::gauge_set("serve_slot", slot as f64);
        }
        SlotFeedback { observations }
    }
}

impl SlotReplay for ServeEngine {
    fn stage_decision(
        &mut self,
        slot: usize,
        device_ids: &[usize],
        selected: &[bool],
        tier: Degradation,
    ) {
        self.previous = Some(selected.to_vec());
        let shed = self.journaled.get(slot).map(|j| j.shed).unwrap_or(Degradation::Exact);
        self.sheds.insert(slot, shed);
        let ids: Vec<usize> = device_ids
            .iter()
            .zip(selected)
            .filter_map(|(&d, &on)| on.then_some(d))
            .collect();
        self.record_decision(slot, ids, tier);
    }

    fn replay_slot(&mut self, slot: usize) {
        // Exactly what begin_slot + gather did to the fleet, minus the
        // solve: ops, then the journaled γ posterior writes, then one
        // clear_dirty — keeping the epoch chain (and the restored delta
        // memos) contiguous across the restart.
        let (ops, gamma) = match self.journaled.get(slot) {
            Some(j) => (j.ops.clone(), j.gamma.clone().unwrap_or_default()),
            None => (Vec::new(), Vec::new()),
        };
        self.apply_ops(&ops);
        for &(d, mean, std) in &gamma {
            self.fleet.set_gamma(d, mean, std);
        }
        self.fleet.clear_dirty();
        // Replay feedback is discarded: the restored banks already
        // contain these observations.
        self.feedback.clear();
        let devices: Vec<usize> = {
            let mut ds: Vec<usize> = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Telemetry { device, observed: Some(_), .. } => Some(*device),
                    _ => None,
                })
                .collect();
            ds.sort_unstable();
            ds.dedup();
            ds
        };
        self.next_queries = devices;
        self.applied = slot + 1;
        self.shared.status.lock().expect("status poisoned").slots = self.applied;
    }
}
