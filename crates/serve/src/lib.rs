//! # lpvs-serve — the network-facing scheduler service
//!
//! Everything below `lpvs-runtime` treats the slot workload as a given:
//! the emulator replays a trace, the synthetic driver replays a seed.
//! This crate closes the loop with the outside world — a long-running
//! HTTP service that **ingests** telemetry and session churn, drives
//! the pipelined [`SlotRuntime`](lpvs_runtime::SlotRuntime) as its
//! scheduling engine, and **serves** per-slot decisions back, while
//! staying up under overload and across crashes:
//!
//! * **Admission control** — arrivals are admitted against the
//!   [`EdgeServer`](lpvs_edge::server::EdgeServer) capacity envelope
//!   (browned-out capacity included); a full edge answers 429, a
//!   browned-out one 503, and admitted sessions reserve their compute
//!   and storage until departure.
//! * **Load shedding** — bounded queues everywhere. Connection
//!   overflow rejects inline; telemetry-queue pressure first raises the
//!   solver floor of upcoming slots along the degradation ladder
//!   ([`shed`]), so the service trades solution quality for latency
//!   *before* it drops requests, and never hangs.
//! * **Durability** — every drained op lands in a JSON-lines journal
//!   and every decided slot in the runtime's checkpoint store;
//!   graceful shutdown seals one final checkpoint round. A killed
//!   server resumes **bit-identically**: checkpointed banks, replayed
//!   decisions, and journal-driven re-execution of undecided slots
//!   ([`engine`]).
//!
//! The HTTP dialect is deliberately small and hand-rolled ([`http`]) —
//! no async runtime, no external HTTP stack — and every parse failure
//! is fail-closed: bounded allocation, 4xx out, never a panic.

#![warn(missing_docs)]

pub mod engine;
pub mod http;
pub mod server;
pub mod shed;

pub use engine::{EngineConfig, Op, Phase, ServeEngine, Shared};
pub use http::{HttpError, HttpLimits, Request};
pub use server::{serve, ServeConfig, ServerHandle, TickMode};
pub use shed::{floor_from_label, shed_floor};
