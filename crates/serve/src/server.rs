//! The network-facing service: listener, bounded connection queue,
//! worker pool, request routing, and the runtime thread that drives the
//! pipelined [`SlotRuntime`] over the [`ServeEngine`].
//!
//! ## Endpoints
//!
//! | Method & path            | Purpose                                        |
//! |--------------------------|------------------------------------------------|
//! | `POST /v1/telemetry`     | γ observations + energy/display updates        |
//! | `POST /v1/sessions`      | arrivals/departures with admission control     |
//! | `POST /v1/brownout`      | edge capacity factor                           |
//! | `POST /v1/tick`          | manual slot tick (any mode)                    |
//! | `POST /v1/shutdown`      | graceful drain + final checkpoint seal         |
//! | `GET /v1/schedule/{t}`   | decided slot `t` (selection, tier, shed floor) |
//! | `GET /metrics`           | Prometheus text exposition                     |
//! | `GET /healthz`           | lifecycle phase + applied slots                |
//!
//! ## Operational behavior
//!
//! Connections queue in a bounded deque; when it is full the accept
//! thread answers 429 inline and drops — the server never queues
//! without bound and never hangs below its limits. Each request gets a
//! socket timeout plus a parse deadline. Telemetry pressure raises the
//! solver floor of upcoming slots (see [`crate::shed`]) before anything
//! is dropped. On shutdown the slot loop drains in-flight solves, then
//! the final bank state is sealed as one more checkpoint round so the
//! next boot resumes exactly where this one stopped.

use crate::engine::{
    Admission, Decision, EngineConfig, Op, Phase, ServeEngine, Shared, CAPACITY_J,
};
use crate::http::{error_body, parse_request, render_response, HttpError, HttpLimits, Request};
use lpvs_bayes::codec::bank_to_bytes;
use lpvs_bayes::BayesBank;
use lpvs_core::scheduler::SchedulerConfig;
use lpvs_edge::fleet::{FleetConfig, Partitioner};
use lpvs_obs::json::Json;
use lpvs_runtime::{CheckpointConfig, CheckpointStore, RuntimeConfig, SlotRuntime};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the slot clock advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickMode {
    /// A ticker thread posts one tick per interval.
    Interval(Duration),
    /// Only `POST /v1/tick` advances slots (deterministic tests).
    Manual,
}

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine (fleet/capacity/journal/horizon) configuration.
    pub engine: EngineConfig,
    /// Shard worker count for the slot pipeline.
    pub shards: usize,
    /// Slot clock mode.
    pub tick: TickMode,
    /// Checkpoint directory (`None` disables checkpoints and resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Slots between checkpoint rounds.
    pub checkpoint_interval: usize,
    /// Resume from an existing manifest/journal when present.
    pub resume: bool,
    /// Bound on queued (accepted, unparsed) connections.
    pub conn_queue: usize,
    /// Bound on queued telemetry/session ops awaiting a slot.
    pub ops_queue: usize,
    /// HTTP worker threads.
    pub http_workers: usize,
    /// Per-request parse/handle deadline.
    pub request_deadline: Duration,
    /// HTTP parser limits.
    pub limits: HttpLimits,
}

impl ServeConfig {
    /// A loopback config for `max_devices` devices with manual ticks —
    /// the deterministic-test shape.
    pub fn loopback(max_devices: usize) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            engine: EngineConfig::sized(max_devices),
            shards: 2,
            tick: TickMode::Manual,
            checkpoint_dir: None,
            checkpoint_interval: 4,
            resume: false,
            conn_queue: 64,
            ops_queue: 256,
            http_workers: 4,
            request_deadline: Duration::from_secs(2),
            limits: HttpLimits::default(),
        }
    }
}

/// A running server: bound address plus the threads behind it.
pub struct ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<ConnQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared engine-facing state (tests poke at counters).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Blocks until the slot loop has drained (a shutdown was posted or
    /// the horizon ran out), then tears down the HTTP layer and joins
    /// every thread.
    pub fn join(mut self) {
        // The runtime thread is pushed first and exits once the slot
        // loop drains + the final seal lands.
        if let Some(runtime) = (!self.threads.is_empty()).then(|| self.threads.remove(0)) {
            let _ = runtime.join();
        }
        self.conns.stop();
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bounded handoff between the accept thread and the HTTP workers.
struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self { queue: Mutex::new((VecDeque::new(), false)), ready: Condvar::new(), capacity: capacity.max(1) }
    }

    /// `Err` hands the stream back: the queue is full, reject inline.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        if q.1 || q.0.len() >= self.capacity {
            return Err(stream);
        }
        q.0.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        loop {
            if let Some(stream) = q.0.pop_front() {
                return Some(stream);
            }
            if q.1 {
                return None;
            }
            q = self.ready.wait(q).expect("conn queue poisoned");
        }
    }

    fn stop(&self) {
        self.queue.lock().expect("conn queue poisoned").1 = true;
        self.ready.notify_all();
    }

    fn stopped(&self) -> bool {
        self.queue.lock().expect("conn queue poisoned").1
    }
}

/// Boots the service: binds, spawns the runtime thread, the accept
/// thread, the worker pool, and (in interval mode) the ticker.
///
/// # Errors
///
/// Propagates the bind error; everything after the bind is spawned.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    lpvs_obs::init();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Shared::new(&config.engine, config.ops_queue);
    let engine = ServeEngine::new(config.engine.clone(), Arc::clone(&shared));
    let conns = Arc::new(ConnQueue::new(config.conn_queue));
    let mut threads = Vec::new();

    // --- runtime thread (always index 0; join() relies on it) --------
    {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        let cfg = config.clone();
        threads.push(std::thread::spawn(move || {
            run_slot_loop(cfg, engine, &shared);
            // Slot loop is done: tear the HTTP layer down so join()
            // (and an orphaned accept thread) can finish.
            conns.stop();
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }));
    }

    // --- interval ticker ---------------------------------------------
    if let TickMode::Interval(period) = config.tick {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || loop {
            std::thread::sleep(period);
            let stop = shared.queue.lock().expect("ops queue poisoned").shutdown;
            if stop {
                break;
            }
            shared.tick();
        }));
    }

    // --- accept thread ------------------------------------------------
    {
        let conns_acc = Arc::clone(&conns);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if conns_acc.stopped() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Err(rejected) = conns_acc.push(stream) {
                    // Full queue: shed inline, never block the listener.
                    lpvs_obs::inc("serve_shed_total");
                    let _ = rejected.set_write_timeout(Some(Duration::from_millis(250)));
                    let mut rejected = rejected;
                    let _ = rejected.write_all(&render_response(
                        429,
                        "application/json",
                        &error_body(429, "connection queue full"),
                    ));
                }
            }
        }));
    }

    // --- HTTP workers --------------------------------------------------
    for _ in 0..config.http_workers.max(1) {
        let conns = Arc::clone(&conns);
        let shared = Arc::clone(&shared);
        let limits = config.limits;
        let deadline = config.request_deadline;
        let max_devices = config.engine.max_devices;
        threads.push(std::thread::spawn(move || {
            while let Some(stream) = conns.pop() {
                handle_connection(stream, &shared, &limits, deadline, max_devices);
            }
        }));
    }

    Ok(ServerHandle { addr, shared, conns, threads })
}

/// Builds the runtime, runs (or resumes) the slot loop, and seals the
/// final checkpoint round on the way out.
fn run_slot_loop(config: ServeConfig, mut engine: ServeEngine, shared: &Shared) {
    let runtime = SlotRuntime::new(RuntimeConfig {
        fleet: FleetConfig {
            num_shards: config.shards.max(1),
            partitioner: Partitioner::Locality,
            scheduler: SchedulerConfig::default(),
            // Ownership must never drift from the home partition: the
            // final seal splits the merged estimators by home shard.
            max_migrations: 0,
        },
        stage_faults: None,
        command_depth: 4,
        recovery: Default::default(),
        checkpoints: config.checkpoint_dir.as_ref().map(|dir| {
            let mut c = CheckpointConfig::new(dir);
            c.interval = config.checkpoint_interval.max(1);
            c
        }),
        halt_after_slot: None,
    });

    let report = if config.resume {
        match runtime.resume(&mut engine) {
            Ok(report) => report,
            // No manifest yet (killed before the first checkpoint
            // round): a fresh run re-executes the journal from slot 0,
            // which reconstructs the same state bit-for-bit.
            Err(_) => {
                let estimators = engine.estimators();
                runtime.run(&mut engine, estimators)
            }
        }
    } else {
        let estimators = engine.estimators();
        runtime.run(&mut engine, estimators)
    };

    // --- final seal ----------------------------------------------------
    // One more checkpoint round at the slot a resumed run would re-enter
    // at. Valid because migrations are disabled (ownership == home
    // partition) and the drain already folded the last slot's feedback,
    // so the merged estimators are exactly the post-prepare(T) banks.
    if let Some(ckpt) = runtime.config().checkpoints.as_ref() {
        let k = runtime.config().fleet.num_shards;
        let owner = runtime.home_shards(report.estimators.len());
        let final_slot = engine.applied_slots();
        let banks = BayesBank::from_estimators(report.estimators.clone()).split(k, |d| owner[d]);
        if let Ok(mut store) = CheckpointStore::create(ckpt, k) {
            store.begin_round(final_slot, vec![0; k]);
            for (s, bank) in banks.iter().enumerate() {
                let _ = store.persist_shard(s, final_slot, &bank_to_bytes(bank), None, None);
            }
        }
    }
    shared.set_phase(Phase::Stopped);
}

/// Parses, routes, and answers one connection.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    limits: &HttpLimits,
    deadline: Duration,
    max_devices: usize,
) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = stream.set_write_timeout(Some(deadline));
    let parsed = parse_request(&mut stream, limits, started + deadline);
    let (endpoint, status, content_type, body) = match parsed {
        Ok(req) => {
            let endpoint = endpoint_of(&req);
            let (status, content_type, body) = route(&req, shared, max_devices);
            (endpoint, status, content_type, body)
        }
        Err(HttpError::ConnectionClosed) => return,
        Err(e) => {
            let status = e.status();
            ("parse", status, "application/json", error_body(status, "malformed request"))
        }
    };
    let _ = stream.write_all(&render_response(status, content_type, &body));
    if lpvs_obs::enabled() {
        lpvs_obs::observe("serve_request_seconds", started.elapsed().as_secs_f64());
        lpvs_obs::inc_labeled(
            "serve_requests_total",
            &[("endpoint", endpoint), ("status", &status.to_string())],
        );
    }
}

/// Static endpoint label for metrics (bounded cardinality).
fn endpoint_of(req: &Request) -> &'static str {
    match req.path.as_str() {
        "/v1/telemetry" => "telemetry",
        "/v1/sessions" => "sessions",
        "/v1/brownout" => "brownout",
        "/v1/tick" => "tick",
        "/v1/shutdown" => "shutdown",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        p if p.starts_with("/v1/schedule/") => "schedule",
        _ => "other",
    }
}

type Routed = (u16, &'static str, Vec<u8>);

fn json_ok(status: u16, body: Json) -> Routed {
    (status, "application/json", body.to_string().into_bytes())
}

fn json_err(status: u16, detail: &str) -> Routed {
    (status, "application/json", error_body(status, detail))
}

fn route(req: &Request, shared: &Shared, max_devices: usize) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let status = shared.status.lock().expect("status poisoned");
            json_ok(
                200,
                Json::obj([
                    ("status", Json::Str(status.phase.label().to_owned())),
                    ("slots", Json::Num(status.slots as f64)),
                ]),
            )
        }
        ("GET", "/metrics") => {
            let text = lpvs_obs::global()
                .registry()
                .map(|r| lpvs_obs::sink::render_prometheus(&r.snapshot()))
                .unwrap_or_default();
            (200, "text/plain; version=0.0.4", text.into_bytes())
        }
        ("GET", path) if path.starts_with("/v1/schedule/") => {
            let Some(slot) = path["/v1/schedule/".len()..].parse::<usize>().ok() else {
                return json_err(400, "slot must be an integer");
            };
            let log = shared.schedules.lock().expect("schedule log poisoned");
            match log.get(&slot) {
                Some(d) => json_ok(200, decision_json(slot, d)),
                None => json_err(404, "slot not decided yet"),
            }
        }
        ("POST", "/v1/tick") => {
            shared.tick();
            json_ok(202, Json::obj([("ticked", Json::Bool(true))]))
        }
        ("POST", "/v1/shutdown") => {
            shared.shutdown();
            json_ok(200, Json::obj([("draining", Json::Bool(true))]))
        }
        ("POST", "/v1/telemetry") => post_telemetry(req, shared, max_devices),
        ("POST", "/v1/sessions") => post_session(req, shared, max_devices),
        ("POST", "/v1/brownout") => post_brownout(req, shared),
        ("GET" | "POST", _) => json_err(404, "no such endpoint"),
        _ => json_err(405, "method not allowed"),
    }
}

fn decision_json(slot: usize, d: &Decision) -> Json {
    Json::obj([
        ("slot", Json::Num(slot as f64)),
        ("tier", Json::Str(d.tier.label().to_owned())),
        ("shed_floor", Json::Str(d.shed.label().to_owned())),
        (
            "selected",
            Json::Arr(d.selected.iter().map(|&id| Json::Num(id as f64)).collect()),
        ),
        ("selected_count", Json::Num(d.selected.len() as f64)),
    ])
}

fn parse_body(req: &Request) -> Result<Json, Routed> {
    let text = std::str::from_utf8(&req.body).map_err(|_| json_err(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|_| json_err(400, "body is not JSON"))
}

fn device_of(body: &Json, max_devices: usize) -> Result<usize, Routed> {
    let device = body
        .get("device")
        .and_then(Json::as_u64)
        .ok_or_else(|| json_err(422, "missing device id"))? as usize;
    if device >= max_devices {
        return Err(json_err(422, "device id beyond the configured ceiling"));
    }
    Ok(device)
}

fn finite_in(body: &Json, key: &str, lo: f64, hi: f64) -> Result<Option<f64>, Routed> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let x = v.as_f64().filter(|x| x.is_finite() && (lo..=hi).contains(x));
            match x {
                Some(x) => Ok(Some(x)),
                None => Err(json_err(422, "field out of range")),
            }
        }
    }
}

fn oled_of(body: &Json) -> Result<Option<bool>, Routed> {
    match body.get("display").and_then(Json::as_str) {
        None => Ok(None),
        Some("oled") => Ok(Some(true)),
        Some("lcd") => Ok(Some(false)),
        Some(_) => Err(json_err(422, "display must be \"oled\" or \"lcd\"")),
    }
}

fn enqueue_or_shed(shared: &Shared, op: Op) -> Routed {
    if shared.enqueue(op) {
        json_ok(202, Json::obj([("queued", Json::Bool(true))]))
    } else {
        json_err(429, "telemetry queue full — shed")
    }
}

fn post_telemetry(req: &Request, shared: &Shared, max_devices: usize) -> Routed {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let op = (|| {
        let device = device_of(&body, max_devices)?;
        let energy_j = finite_in(&body, "energy_j", 0.0, CAPACITY_J)?;
        let mean = finite_in(&body, "gamma_mean", 0.0, 0.999_999)?;
        let std = finite_in(&body, "gamma_std", 0.0, 10.0)?;
        let gamma = match (mean, std) {
            (Some(m), s) => Some((m, s.unwrap_or(0.0))),
            (None, Some(_)) => return Err(json_err(422, "gamma_std without gamma_mean")),
            (None, None) => None,
        };
        let observed = finite_in(&body, "observed", 0.0, 10.0)?;
        let oled = oled_of(&body)?;
        Ok(Op::Telemetry { device, energy_j, gamma, oled, observed })
    })();
    match op {
        Ok(op) => enqueue_or_shed(shared, op),
        Err(e) => e,
    }
}

fn post_session(req: &Request, shared: &Shared, max_devices: usize) -> Routed {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let Some(action) = body.get("action").and_then(Json::as_str) else {
        return json_err(422, "missing action (arrive|depart)");
    };
    let device = match device_of(&body, max_devices) {
        Ok(d) => d,
        Err(e) => return e,
    };
    match action {
        "arrive" => {
            let phase = shared.status.lock().expect("status poisoned").phase;
            if phase != Phase::Live {
                return json_err(503, "recovering — retry shortly");
            }
            let energy_j = match finite_in(&body, "energy_j", 0.0, CAPACITY_J) {
                Ok(e) => e.unwrap_or(0.5 * CAPACITY_J),
                Err(e) => return e,
            };
            let gamma = match finite_in(&body, "gamma", 0.0, 0.999_999) {
                Ok(g) => g.unwrap_or(0.3),
                Err(e) => return e,
            };
            let oled = match oled_of(&body) {
                Ok(o) => o.unwrap_or(false),
                Err(e) => return e,
            };
            let mut adm: std::sync::MutexGuard<'_, Admission> =
                shared.admission.lock().expect("admission poisoned");
            if adm.brownout <= 0.0 {
                return json_err(503, "edge browned out");
            }
            if adm.active[device] {
                return json_err(422, "session already active for device");
            }
            if !adm.fits_one() {
                adm.rejected += 1;
                lpvs_obs::inc("serve_sessions_rejected_total");
                return json_err(429, "admission control: no capacity");
            }
            // Reserve before enqueueing so a concurrent arrival can't
            // double-book the same headroom; roll back if the op queue
            // sheds the request.
            adm.active[device] = true;
            adm.compute_reserved += crate::engine::SESSION_COMPUTE_COST;
            adm.storage_reserved_gb += crate::engine::SESSION_STORAGE_GB;
            adm.accepted += 1;
            let active = adm.active_sessions();
            drop(adm);
            if shared.enqueue(Op::Arrive { device, energy_j, gamma, oled }) {
                if lpvs_obs::enabled() {
                    lpvs_obs::inc("serve_sessions_accepted_total");
                    lpvs_obs::gauge_set("serve_sessions_active", active as f64);
                }
                json_ok(202, Json::obj([("admitted", Json::Bool(true))]))
            } else {
                let mut adm = shared.admission.lock().expect("admission poisoned");
                adm.active[device] = false;
                adm.compute_reserved -= crate::engine::SESSION_COMPUTE_COST;
                adm.storage_reserved_gb -= crate::engine::SESSION_STORAGE_GB;
                adm.accepted -= 1;
                json_err(429, "telemetry queue full — shed")
            }
        }
        "depart" => {
            let mut adm = shared.admission.lock().expect("admission poisoned");
            if !adm.active[device] {
                return json_err(422, "no active session for device");
            }
            if shared.enqueue(Op::Depart { device }) {
                adm.active[device] = false;
                adm.compute_reserved -= crate::engine::SESSION_COMPUTE_COST;
                adm.storage_reserved_gb -= crate::engine::SESSION_STORAGE_GB;
                let active = adm.active_sessions();
                drop(adm);
                if lpvs_obs::enabled() {
                    lpvs_obs::gauge_set("serve_sessions_active", active as f64);
                }
                json_ok(202, Json::obj([("departed", Json::Bool(true))]))
            } else {
                json_err(429, "telemetry queue full — shed")
            }
        }
        _ => json_err(422, "action must be arrive or depart"),
    }
}

fn post_brownout(req: &Request, shared: &Shared) -> Routed {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(e) => return e,
    };
    let factor = match finite_in(&body, "factor", 0.0, 1.0) {
        Ok(Some(f)) => f,
        Ok(None) => return json_err(422, "missing factor"),
        Err(e) => return e,
    };
    shared.admission.lock().expect("admission poisoned").brownout = factor;
    enqueue_or_shed(shared, Op::Brownout { factor })
}
