//! # lpvs-runtime — the pipelined slot runtime
//!
//! The emulator's slot loop (`lpvs-emulator`, paper Fig. 6) is strictly
//! sequential: gather → schedule → transform/play, one slot at a time,
//! with the solve on the critical path of every slot. This crate turns
//! that loop into a staged pipeline,
//!
//! ```text
//!   gather(t+1)  ∥  solve(t)  ∥  apply+learn(t−1)
//! ```
//!
//! built on plain std threads and `crossbeam` bounded channels:
//!
//! * a **hub** (the caller's thread) drives a [`SlotSource`]/[`SlotSink`]
//!   pair — the Twitch-trace emulator or a synthetic generator — and
//!   owns the slot clock;
//! * **persistent shard workers** each own a [`ShardState`]: their
//!   slice of the fleet plus the shard-local
//!   [`BayesBank`](lpvs_bayes::BayesBank) of γ estimators. Estimators
//!   physically migrate between workers alongside cross-shard
//!   rebalancing, so the steady-state slot path has **no global Bayes
//!   bank and no cross-shard lock** — shards exchange state only
//!   through migration messages;
//! * the gathered slot travels as a **double-buffered columnar
//!   [`DeviceFleet`]**: two buffers alternate between "being gathered"
//!   and "being solved", and the hub recycles a buffer only after every
//!   worker has dropped its handle, so a slow solver stalls gathering
//!   (bounded-channel backpressure) instead of queueing slots without
//!   bound.
//!
//! ## Semantics: one-slot-ahead, bit-identical
//!
//! Overlapping solve(t) with apply(t) means the decision applied in
//! slot `t` was computed from the state gathered at slot `t − 1` —
//! exactly the emulator's *one-slot-ahead* mode (paper §VI-B.2). The
//! pipelined runtime reproduces that mode **bit-identically**: same
//! `SlotRecord`s, same final γ posteriors (`tests/runtime.rs` pins
//! this). The ingredients: per-device estimator operations arrive in
//! slot order over FIFO channels, disjoint banks make cross-device
//! order irrelevant, and per-shard results are joined through the same
//! [`FleetScheduler::assemble`](lpvs_edge::fleet::FleetScheduler::assemble)
//! path as the scoped-thread scheduler.
//!
//! ## Supervised recovery
//!
//! A shard whose *solver* panics degrades to passthrough for the slot
//! (the existing fleet ladder). A shard whose *worker* dies — injected
//! stage faults, or a panic outside the solver — is **respawned** by
//! the hub's supervisor with exponential backoff: its bank is restored
//! from the newest valid checkpoint generation plus a write-ahead
//! journal replay (or, with no store configured, from the state the
//! dying worker shipped home), and the in-flight slot is re-dispatched.
//! Only when a shard's retry budget is exhausted — or every checkpoint
//! generation fails its checksum — does the hub drain the in-flight
//! slot, merge every bank, and run the remaining slots inline through
//! the sequential [`FleetScheduler`] path. The run's
//! [`RecoveryReport`] accounts for every death, retry, and replayed
//! slot; `fell_back` records the abandonment slot when the ladder
//! bottomed out.
//!
//! Periodic checkpoint rounds also write a run manifest and decision
//! log, so a *restarted hub* can [`SlotRuntime::resume`] mid-horizon:
//! banks come back from the manifest's snapshot generations, logged
//! decisions are replayed through the [`SlotReplay`] sink, and the
//! slot loop re-enters where the manifest left off — bit-identical to
//! a run that never stopped.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod pipeline;
pub mod shard;
pub mod synthetic;

pub use checkpoint::{
    flight_to_jsonl, CheckpointConfig, CheckpointError, CheckpointStore, FlightReason,
    FlightRecording, LoggedDecision, RecoveryConfig, RecoveryReport, RecoveryTier, RunManifest,
    ShardRecovery, ShardSnapshot,
};
pub use pipeline::{RuntimeConfig, RuntimeReport, RuntimeSummary, SlotRuntime, StageFaults};
pub use shard::{ShardDeltaMemo, ShardState};
pub use synthetic::{SyntheticConfig, SyntheticDriver, SyntheticRecord};

use lpvs_core::budget::SlotBudget;
use lpvs_core::delta::SlotDelta;
use lpvs_core::fleet::DeviceFleet;
use lpvs_core::scheduler::Degradation;
use lpvs_edge::fleet::FleetSchedule;
use lpvs_survey::curve::AnxietyCurve;
use serde::{Deserialize, Serialize};

/// Estimator maintenance a source requests at the top of a slot,
/// before any posterior is read.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankOps {
    /// `(device, stale_slots)` staleness inflations — e.g. every
    /// disconnected device forgets one slot.
    pub forgets: Vec<(usize, u32)>,
    /// Devices whose γ posterior the gather step needs, in the order
    /// the source wants them answered.
    pub queries: Vec<usize>,
}

/// One slot's gathered problem, ready to solve. Shared read-only with
/// every shard worker for the duration of the solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GatheredSlot {
    /// Slot index.
    pub slot: usize,
    /// Sanitized columnar population: rows the monolithic path would
    /// reject are present but marked disconnected.
    pub fleet: DeviceFleet,
    /// Global device id of each fleet row (fleet order). Estimator
    /// migrations and γ routing are keyed on these.
    pub device_ids: Vec<usize>,
    /// Edge compute capacity the slot sees (post-brownout).
    pub compute_capacity: f64,
    /// Edge storage capacity the slot sees (GB, post-brownout).
    pub storage_capacity_gb: f64,
    /// Regularization λ.
    pub lambda: f64,
    /// The cohort's anxiety curve.
    pub curve: AnxietyCurve,
    /// Per-slot solver budget (node caps, stall deadlines).
    pub budget: SlotBudget,
    /// Warm-start selection in fleet order, if the previous slot's
    /// population matches.
    pub warm: Option<Vec<bool>>,
    /// The slot's change set — which fleet rows mutated since the
    /// previous gather — captured from the source fleet's dirty
    /// frontier. `None` means the source does not track deltas (the
    /// trace emulator rebuilds its fleet every slot), which forces
    /// every shard down the cold path.
    pub delta: Option<SlotDelta>,
}

/// A completed fleet solve, delivered to [`SlotSink::solved`] once all
/// shards have reported — one slot after dispatch when pipelined,
/// immediately when sequential.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedSlot {
    /// The slot the decision was computed **for** (= gathered at).
    pub slot: usize,
    /// The joined fleet decision: selection in fleet order, per-shard
    /// reports, rebalance migrations, objective.
    pub schedule: FleetSchedule,
    /// The worst degradation rung any shard fell to.
    pub tier: Degradation,
}

/// What playback learned during apply: per-device observed
/// power-reduction ratios, folded into the owning banks at the top of
/// the next slot (after the gather that used the pre-observation
/// posterior — the same order as the sequential engine).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SlotFeedback {
    /// `(device, observed_ratio)` in playback order.
    pub observations: Vec<(usize, f64)>,
}

/// The producing half of a slot driver: tells the runtime what each
/// slot needs from the banks, then gathers the slot problem.
pub trait SlotSource {
    /// Starts slot `slot`: advances connectivity/faults and returns the
    /// estimator maintenance due before posteriors are read. `None`
    /// ends the run (the horizon is exhausted).
    fn begin_slot(&mut self, slot: usize) -> Option<BankOps>;

    /// Gathers slot `slot` into a solvable problem. `posteriors[i]` is
    /// the `(mean, std)` answer to `queries[i]` from [`BankOps`].
    /// `recycled` is a previously-solved fleet buffer to refill in
    /// place (the double-buffer hand-off); `None` on the first slots.
    /// Returns `None` for an idle slot (nobody watching — no solve is
    /// dispatched, but [`SlotSink::apply`] still runs).
    fn gather(
        &mut self,
        slot: usize,
        posteriors: &[(f64, f64)],
        recycled: Option<DeviceFleet>,
    ) -> Option<GatheredSlot>;
}

/// The consuming half of a slot driver: receives solve results and
/// plays slots out.
pub trait SlotSink {
    /// A solve completed. Called in slot order, always before
    /// `apply(t)` for every solved slot `< t`; when pipelined, the
    /// solve for slot `t` arrives during slot `t + 1`. Sinks that stage
    /// one-slot-ahead decisions should consume stagings with
    /// `solved.slot < t` at `apply(t)`.
    fn solved(&mut self, solved: &SolvedSlot);

    /// Plays slot `slot` (transform + playback + accounting) and
    /// returns what the banks should learn from it.
    fn apply(&mut self, slot: usize) -> SlotFeedback;
}

/// Deterministic replay of already-decided slots, for resuming a
/// halted run mid-horizon: the hub feeds logged decisions back through
/// the sink and replays each slot *without* re-gathering or re-solving
/// it, rebuilding the driver's internal state (batteries, churn
/// baselines, accounting) exactly as the original run left it.
pub trait SlotReplay {
    /// Stages a logged decision exactly as [`SlotSink::solved`] would
    /// have — selection and tier only, no re-assembled schedule.
    fn stage_decision(
        &mut self,
        slot: usize,
        device_ids: &[usize],
        selected: &[bool],
        tier: Degradation,
    );

    /// Replays slot `slot` end to end (faults, connectivity, playback,
    /// accounting) using whatever decisions have been staged; any
    /// feedback the slot produces is discarded — the restored banks
    /// already contain it.
    fn replay_slot(&mut self, slot: usize);
}
