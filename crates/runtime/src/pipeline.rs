//! The slot-pipeline hub.
//!
//! [`SlotRuntime::run`] drives a [`SlotSource`]/[`SlotSink`] driver
//! through the staged pipeline. The hub (caller's thread) executes, per
//! slot `t`:
//!
//! ```text
//!  begin(t)            source advances faults/connectivity; windows are
//!                      synthesized here, overlapping solve(t−1)
//!  join(t−1)           block on the shard results of slot t−1
//!                      (backpressure: a slow solver stalls everything
//!                      downstream), assemble them through
//!                      FleetScheduler::assemble, deliver solved(t−1),
//!                      migrate estimators after the rebalance, recycle
//!                      the t−1 fleet buffer
//!  prepare(t)          route observations(t−1) + forgets(t) + γ queries
//!                      to the owning shard banks (FIFO guarantees they
//!                      land after solve(t−1))
//!  gather(t)           source fills the recycled buffer
//!  dispatch(t)         partition + fan the shared Arc<GatheredSlot> out
//!  apply(t)            sink plays slot t with the decision solved at
//!                      t−1 — overlapping solve(t), the pipeline win
//! ```
//!
//! Exactly one solve is in flight at a time and exactly two fleet
//! buffers circulate (one being gathered, one being solved) — the
//! double buffer. The hub recovers a buffer via `Arc::try_unwrap`,
//! which is guaranteed to succeed because every worker drops its handle
//! *before* announcing its result.
//!
//! On worker death the hub drains the in-flight slot (dead shards
//! contribute passthrough — the same degradation the scoped fleet path
//! gives a dead shard thread), recovers every bank (dying workers ship
//! theirs home), merges them, and continues inline through the
//! sequential [`FleetScheduler`] path.

use crate::shard::{spawn_worker, ShardState, SolveJob, WorkerEvent, WorkerMsg};
use crate::{BankOps, SlotSink, SlotSource, SolvedSlot};
use crossbeam::channel::{bounded, Receiver, Sender};
use lpvs_bayes::{BayesBank, GammaEstimator};
use lpvs_core::fleet::DeviceFleet;
use lpvs_core::scheduler::{Degradation, Schedule};
use lpvs_edge::fleet::{FleetConfig, FleetScheduler, Partitioner};
use lpvs_edge::server::EdgeServer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deterministic worker-crash injection: each (slot, shard) pair dies
/// with probability `rate`, derived by hashing against `seed` so runs
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFaults {
    /// Per-(slot, shard) death probability in `[0, 1]`.
    pub rate: f64,
    /// Hash salt, independent of the population seed.
    pub seed: u64,
}

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Shard count, partitioner, per-shard scheduler, and rebalance
    /// bound — shared with the scoped-thread [`FleetScheduler`] so both
    /// paths solve identically.
    pub fleet: FleetConfig,
    /// Optional injected worker crashes (exercises the fallback ladder).
    pub stage_faults: Option<StageFaults>,
    /// Bounded capacity of each worker's command channel.
    pub command_depth: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { fleet: FleetConfig::default(), stage_faults: None, command_depth: 4 }
    }
}

/// Serializable run summary (embedded in emulation reports).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RuntimeSummary {
    /// Whether the staged pipeline ran (false: sequential mode).
    pub pipelined: bool,
    /// Shard worker count.
    pub shards: usize,
    /// Slots driven.
    pub slots: usize,
    /// Slots that dispatched a solve (idle slots excluded).
    pub solved_slots: usize,
    /// Estimators physically moved between shard banks.
    pub estimator_migrations: usize,
    /// Workers lost to faults or panics.
    pub workers_lost: usize,
    /// Slot at which the runtime degraded to the inline sequential
    /// path, if it did.
    pub fell_back: Option<usize>,
}

/// Result of a runtime run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Counters and fallback state.
    pub summary: RuntimeSummary,
    /// Final γ estimators, dense by device id — merged back from the
    /// shard banks.
    pub estimators: Vec<GammaEstimator>,
    /// Total wall-clock spent in (dispatch → joined) solves.
    pub solve_runtime: Duration,
}

#[derive(Default)]
struct RunStats {
    slots: usize,
    solved_slots: usize,
    estimator_migrations: usize,
    fell_back: Option<usize>,
    solve_runtime: Duration,
}

/// A dispatched, not-yet-joined solve.
struct PendingSolve {
    slot: usize,
    gathered: Arc<crate::GatheredSlot>,
    shards: Vec<Vec<usize>>,
    servers: Vec<EdgeServer>,
    dispatched_at: Instant,
}

/// What joining a solve produced.
struct Collected {
    solved: SolvedSlot,
    /// The recovered fleet buffer (recycled into the next gather).
    buffer: Option<DeviceFleet>,
    /// Fleet-order → global device id mapping of the joined slot.
    device_ids: Vec<usize>,
}

struct WorkerHandle {
    commands: Option<Sender<WorkerMsg>>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn send(&self, msg: WorkerMsg) -> Result<(), ()> {
        match &self.commands {
            Some(tx) => tx.send(msg).map_err(|_| ()),
            None => Err(()),
        }
    }
}

/// The worker pool plus the routing state the hub keeps about it.
struct Hub {
    workers: Vec<WorkerHandle>,
    events: Receiver<WorkerEvent>,
    /// Device → shard whose bank currently owns its estimator. Starts
    /// as the home partition; updated as migrations follow rebalances.
    owner: Vec<usize>,
    /// States recovered from dead workers, pending the merge.
    lost: Vec<ShardState>,
    workers_lost: usize,
}

impl Hub {
    fn all_alive(&self) -> bool {
        self.workers.iter().all(|w| w.commands.is_some())
    }
}

/// The pipelined slot runtime.
pub struct SlotRuntime {
    config: RuntimeConfig,
    scheduler: FleetScheduler,
}

impl SlotRuntime {
    /// Creates a runtime.
    ///
    /// # Panics
    ///
    /// Panics if the fleet configuration names zero shards.
    pub fn new(config: RuntimeConfig) -> Self {
        let scheduler = FleetScheduler::new(config.fleet);
        Self { config, scheduler }
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Home shard of every device under the configured partitioner —
    /// the initial bank split, before any migration.
    pub fn home_shards(&self, devices: usize) -> Vec<usize> {
        let k = self.config.fleet.num_shards;
        let mut owner = vec![0usize; devices];
        match self.config.fleet.partitioner {
            Partitioner::Locality => {
                let base = devices / k;
                let extra = devices % k;
                let mut start = 0;
                for s in 0..k {
                    let size = base + usize::from(s < extra);
                    for o in &mut owner[start..start + size] {
                        *o = s;
                    }
                    start += size;
                }
            }
            Partitioner::Hash => {
                for (d, o) in owner.iter_mut().enumerate() {
                    let h = (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
                    *o = (h % k as u64) as usize;
                }
            }
        }
        owner
    }

    /// Runs the driver through the staged pipeline. `estimators[d]` is
    /// device `d`'s γ estimator; they are split into shard-local banks
    /// up front and merged back into the report at the end.
    pub fn run<D: SlotSource + SlotSink>(
        &self,
        driver: &mut D,
        estimators: Vec<GammaEstimator>,
    ) -> RuntimeReport {
        let k = self.config.fleet.num_shards;
        let n = estimators.len();
        let owner = self.home_shards(n);
        let banks = BayesBank::from_estimators(estimators).split(k, |d| owner[d]);

        let (event_tx, events) = bounded(2 * k + 2);
        let workers: Vec<WorkerHandle> = banks
            .into_iter()
            .enumerate()
            .map(|(s, bank)| {
                let (tx, rx) = bounded(self.config.command_depth.max(2));
                let faults = self.config.stage_faults.map(|f| (f.rate, f.seed));
                let thread = spawn_worker(
                    ShardState { shard: s, bank },
                    self.config.fleet.scheduler,
                    faults,
                    rx,
                    event_tx.clone(),
                );
                WorkerHandle { commands: Some(tx), thread: Some(thread) }
            })
            .collect();
        drop(event_tx);
        let mut hub = Hub { workers, events, owner, lost: Vec::new(), workers_lost: 0 };

        let mut stats = RunStats::default();
        let mut in_flight: Option<PendingSolve> = None;
        let mut feedback: Vec<(usize, f64)> = Vec::new();
        let mut recycled: Option<DeviceFleet> = None;
        let mut inline: Option<BayesBank> = None;
        let mut slot = 0usize;

        while let Some(ops) = driver.begin_slot(slot) {
            if let Some(bank) = inline.as_mut() {
                // Sequential fallback: the pipeline is gone, the merged
                // bank lives here, slots run inline.
                Self::inline_slot(
                    &self.scheduler,
                    driver,
                    bank,
                    slot,
                    &ops,
                    &mut feedback,
                    &mut recycled,
                    &mut stats,
                );
                slot += 1;
                continue;
            }

            let mut slot_span = lpvs_obs::span!("runtime.slot", "slot" => slot);
            let mut healthy = true;

            // --- join(t−1) ---------------------------------------------
            if let Some(pending) = in_flight.take() {
                if lpvs_obs::enabled() {
                    lpvs_obs::gauge_set("runtime_queue_depth", hub.events.len() as f64);
                }
                let wait = Instant::now();
                let collected = self.join_solve(&mut hub, pending, &mut stats);
                if lpvs_obs::enabled() {
                    lpvs_obs::observe("runtime_solve_wait_seconds", wait.elapsed().as_secs_f64());
                }
                slot_span.record("joined_migrations", collected.solved.schedule.migrations as f64);
                driver.solved(&collected.solved);
                healthy = hub.all_alive()
                    && self.migrate_estimators(&mut hub, &collected, &mut stats).is_ok();
                recycled = collected.buffer;
            }

            // --- prepare(t) --------------------------------------------
            // `ops_consumed`: whether banks saw this slot's maintenance,
            // so the fallback path knows whether to replay it.
            let mut ops_consumed = false;
            let posteriors = if healthy {
                ops_consumed = true;
                self.prepare(&hub, &ops, std::mem::take(&mut feedback)).ok()
            } else {
                None
            };

            let Some(posteriors) = posteriors else {
                // --- sequential fallback -------------------------------
                lpvs_obs::inc("runtime_fallback_total");
                let mut bank = self.drain_and_merge(&mut hub);
                if !ops_consumed {
                    for (d, ratio) in feedback.drain(..) {
                        bank.observe_or_forget(d, ratio);
                    }
                    for &(d, stale) in &ops.forgets {
                        bank.forget(d, stale);
                    }
                }
                let posteriors: Vec<(f64, f64)> =
                    ops.queries.iter().map(|&d| bank.posterior(d)).collect();
                stats.fell_back = Some(slot);
                Self::inline_gather_solve_apply(
                    &self.scheduler,
                    driver,
                    slot,
                    &posteriors,
                    &mut feedback,
                    &mut recycled,
                    &mut stats,
                );
                inline = Some(bank);
                slot += 1;
                continue;
            };

            // --- gather(t) + dispatch(t) -------------------------------
            let gather_start = Instant::now();
            let gathered = driver.gather(slot, &posteriors, recycled.take());
            if lpvs_obs::enabled() {
                lpvs_obs::observe("runtime_gather_seconds", gather_start.elapsed().as_secs_f64());
            }
            if let Some(g) = gathered {
                in_flight = Some(self.dispatch(&hub, slot, g));
            }

            // --- apply(t) — overlaps solve(t) --------------------------
            let apply_start = Instant::now();
            feedback = driver.apply(slot).observations;
            if lpvs_obs::enabled() {
                lpvs_obs::observe("runtime_apply_seconds", apply_start.elapsed().as_secs_f64());
                lpvs_obs::inc("runtime_slots_total");
            }
            stats.slots += 1;
            slot += 1;
        }

        // --- drain -----------------------------------------------------
        let estimators = if let Some(mut bank) = inline.take() {
            for (d, ratio) in feedback.drain(..) {
                bank.observe_or_forget(d, ratio);
            }
            bank.into_dense()
        } else {
            if let Some(pending) = in_flight.take() {
                // The horizon ended with a solve in flight: join it so
                // the sink records its tier (its decision is never
                // applied — the sequential one-slot-ahead engine stages
                // its last decision the same way).
                let collected = self.join_solve(&mut hub, pending, &mut stats);
                driver.solved(&collected.solved);
            }
            // The last slot's observations still belong in the banks —
            // the sequential engine folds them during its final play.
            if !feedback.is_empty() {
                let _ = self.prepare(&hub, &BankOps::default(), std::mem::take(&mut feedback));
            }
            self.drain_and_merge(&mut hub).into_dense()
        };

        RuntimeReport {
            summary: RuntimeSummary {
                pipelined: true,
                shards: k,
                slots: stats.slots,
                solved_slots: stats.solved_slots,
                estimator_migrations: stats.estimator_migrations,
                workers_lost: hub.workers_lost,
                fell_back: stats.fell_back,
            },
            estimators,
            solve_runtime: stats.solve_runtime,
        }
    }

    /// Runs the driver strictly sequentially — same one-slot-ahead
    /// delivery order as the pipeline (`solved(t)` lands before
    /// `apply(t)`, and staging sinks consume solves `< t`), but every
    /// stage on one thread with one global bank. The baseline the
    /// pipeline is benchmarked and determinism-tested against.
    pub fn run_sequential<D: SlotSource + SlotSink>(
        &self,
        driver: &mut D,
        estimators: Vec<GammaEstimator>,
    ) -> RuntimeReport {
        let mut bank = BayesBank::from_estimators(estimators);
        let mut stats = RunStats::default();
        let mut feedback: Vec<(usize, f64)> = Vec::new();
        let mut recycled: Option<DeviceFleet> = None;
        let mut slot = 0usize;
        while let Some(ops) = driver.begin_slot(slot) {
            Self::inline_slot(
                &self.scheduler,
                driver,
                &mut bank,
                slot,
                &ops,
                &mut feedback,
                &mut recycled,
                &mut stats,
            );
            slot += 1;
        }
        for (d, ratio) in feedback.drain(..) {
            bank.observe_or_forget(d, ratio);
        }
        RuntimeReport {
            summary: RuntimeSummary {
                pipelined: false,
                shards: self.config.fleet.num_shards,
                slots: stats.slots,
                solved_slots: stats.solved_slots,
                estimator_migrations: 0,
                workers_lost: 0,
                fell_back: None,
            },
            estimators: bank.into_dense(),
            solve_runtime: stats.solve_runtime,
        }
    }

    /// One inline (non-pipelined) slot: bank maintenance, gather, solve
    /// through the scoped-thread fleet path, apply.
    #[allow(clippy::too_many_arguments)]
    fn inline_slot<D: SlotSource + SlotSink>(
        scheduler: &FleetScheduler,
        driver: &mut D,
        bank: &mut BayesBank,
        slot: usize,
        ops: &BankOps,
        feedback: &mut Vec<(usize, f64)>,
        recycled: &mut Option<DeviceFleet>,
        stats: &mut RunStats,
    ) {
        for (d, ratio) in feedback.drain(..) {
            bank.observe_or_forget(d, ratio);
        }
        for &(d, stale) in &ops.forgets {
            bank.forget(d, stale);
        }
        let posteriors: Vec<(f64, f64)> = ops.queries.iter().map(|&d| bank.posterior(d)).collect();
        Self::inline_gather_solve_apply(
            scheduler, driver, slot, &posteriors, feedback, recycled, stats,
        );
    }

    /// The gather → solve → solved → apply tail of an inline slot.
    fn inline_gather_solve_apply<D: SlotSource + SlotSink>(
        scheduler: &FleetScheduler,
        driver: &mut D,
        slot: usize,
        posteriors: &[(f64, f64)],
        feedback: &mut Vec<(usize, f64)>,
        recycled: &mut Option<DeviceFleet>,
        stats: &mut RunStats,
    ) {
        if let Some(g) = driver.gather(slot, posteriors, recycled.take()) {
            let server = EdgeServer::new(g.compute_capacity, g.storage_capacity_gb);
            let schedule =
                scheduler.schedule(&g.fleet, &server, g.lambda, &g.curve, g.warm.as_deref(), &g.budget);
            let tier = schedule
                .shards
                .iter()
                .map(|r| r.stats.degradation)
                .max()
                .unwrap_or(Degradation::Passthrough);
            stats.solve_runtime += schedule.runtime;
            stats.solved_slots += 1;
            driver.solved(&SolvedSlot { slot, schedule, tier });
            *recycled = Some(g.fleet);
        }
        *feedback = driver.apply(slot).observations;
        stats.slots += 1;
    }

    /// Partitions a gathered slot and fans it out to the workers.
    fn dispatch(&self, hub: &Hub, slot: usize, g: crate::GatheredSlot) -> PendingSolve {
        let k = hub.workers.len();
        let gathered = Arc::new(g);
        let shards = self.scheduler.partition(&gathered.fleet);
        let server = EdgeServer::new(gathered.compute_capacity, gathered.storage_capacity_gb);
        let servers = FleetScheduler::split_server(&server, k);
        // Same guard as the scoped path: warm starts only carry over
        // when the population is unchanged.
        let warm = gathered.warm.as_deref().filter(|p| p.len() == gathered.fleet.len());
        let dispatched_at = Instant::now();
        for (s, worker) in hub.workers.iter().enumerate() {
            let job = SolveJob {
                slot,
                gathered: Arc::clone(&gathered),
                indices: shards[s].clone(),
                compute_capacity: servers[s].compute_capacity(),
                storage_capacity_gb: servers[s].storage_capacity_gb(),
                warm: warm.map(|p| shards[s].iter().map(|&i| p[i]).collect()),
            };
            // A send failure means the worker died; the join step will
            // see its Down event and degrade the shard to passthrough.
            let _ = worker.send(WorkerMsg::Solve(job));
        }
        PendingSolve { slot, gathered, shards, servers, dispatched_at }
    }

    /// Blocks until every shard has reported on `pending`, then joins
    /// the results through [`FleetScheduler::assemble`] — dead shards
    /// degrade to passthrough. Never fails: dying workers always ship a
    /// `Down` event first.
    fn join_solve(&self, hub: &mut Hub, pending: PendingSolve, stats: &mut RunStats) -> Collected {
        let k = hub.workers.len();
        let mut results: Vec<Option<Schedule>> = (0..k).map(|_| None).collect();
        let mut accounted = vec![false; k];
        let mut remaining = k;
        while remaining > 0 {
            match hub.events.recv() {
                Ok(WorkerEvent::Solved { shard, slot, schedule }) => {
                    debug_assert_eq!(slot, pending.slot, "stale solve result");
                    results[shard] = schedule.map(|b| *b);
                    if !accounted[shard] {
                        accounted[shard] = true;
                        remaining -= 1;
                    }
                }
                Ok(WorkerEvent::Down { state } | WorkerEvent::Finished { state }) => {
                    let s = state.shard;
                    hub.workers[s].commands = None;
                    hub.lost.push(*state);
                    hub.workers_lost += 1;
                    if !accounted[s] {
                        accounted[s] = true;
                        remaining -= 1;
                    }
                }
                Err(_) => break, // every worker gone; the rest are passthrough
            }
        }

        let PendingSolve { slot, gathered, shards, servers, dispatched_at } = pending;
        let schedule = self.scheduler.assemble(
            &gathered.fleet,
            &servers,
            &shards,
            results,
            gathered.lambda,
            &gathered.curve,
            dispatched_at,
        );
        let tier = schedule
            .shards
            .iter()
            .map(|r| r.stats.degradation)
            .max()
            .unwrap_or(Degradation::Passthrough);
        stats.solve_runtime += schedule.runtime;
        stats.solved_slots += 1;
        // Every worker dropped its handle before reporting, so ours is
        // unique and the buffer comes back for the next gather.
        let (buffer, device_ids) = match Arc::try_unwrap(gathered) {
            Ok(g) => (Some(g.fleet), g.device_ids),
            Err(arc) => (None, arc.device_ids.clone()),
        };
        Collected { solved: SolvedSlot { slot, schedule, tier }, buffer, device_ids }
    }

    /// Moves estimators between shard banks to follow the cross-shard
    /// rebalance: a device migrated into a foreign shard takes its γ
    /// state along, keeping γ routing shard-local. Round-trips are
    /// sequenced through the hub in shard order for determinism.
    fn migrate_estimators(
        &self,
        hub: &mut Hub,
        collected: &Collected,
        stats: &mut RunStats,
    ) -> Result<(), ()> {
        for report in &collected.solved.schedule.shards {
            for &fleet_idx in &report.migrated_in {
                let device = collected.device_ids[fleet_idx];
                let from = hub.owner[device];
                let to = report.shard;
                if from == to {
                    continue;
                }
                let (reply_tx, reply_rx) = bounded(1);
                hub.workers[from].send(WorkerMsg::MigrateOut { device, reply: reply_tx })?;
                let estimator = reply_rx.recv().map_err(|_| ())?;
                hub.workers[to].send(WorkerMsg::MigrateIn { device, estimator })?;
                hub.owner[device] = to;
                stats.estimator_migrations += 1;
                lpvs_obs::inc("runtime_migrations_total");
            }
        }
        Ok(())
    }

    /// Routes one slot's bank maintenance and γ queries to the owning
    /// shards and gathers the posterior answers back in query order.
    /// Per-message order (observations, then forgets, then queries)
    /// mirrors the sequential engine's per-device operation order.
    fn prepare(
        &self,
        hub: &Hub,
        ops: &BankOps,
        observations: Vec<(usize, f64)>,
    ) -> Result<Vec<(f64, f64)>, ()> {
        let k = hub.workers.len();
        let mut per_obs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        let mut per_forgets: Vec<Vec<(usize, u32)>> = vec![Vec::new(); k];
        let mut per_queries: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut query_slots: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (d, ratio) in observations {
            per_obs[hub.owner[d]].push((d, ratio));
        }
        for &(d, stale) in &ops.forgets {
            per_forgets[hub.owner[d]].push((d, stale));
        }
        for (pos, &d) in ops.queries.iter().enumerate() {
            let s = hub.owner[d];
            per_queries[s].push(d);
            query_slots[s].push(pos);
        }

        // Fan out first so shards work concurrently, then await replies
        // in shard order.
        type PosteriorReply = Receiver<Vec<(f64, f64)>>;
        let mut pending: Vec<(usize, PosteriorReply)> = Vec::new();
        for s in 0..k {
            if per_obs[s].is_empty() && per_forgets[s].is_empty() && per_queries[s].is_empty() {
                continue;
            }
            let (reply_tx, reply_rx) = bounded(1);
            hub.workers[s].send(WorkerMsg::Prepare {
                observations: std::mem::take(&mut per_obs[s]),
                forgets: std::mem::take(&mut per_forgets[s]),
                queries: std::mem::take(&mut per_queries[s]),
                reply: reply_tx,
            })?;
            pending.push((s, reply_rx));
        }
        let mut posteriors = vec![(0.0, 0.0); ops.queries.len()];
        for (s, reply_rx) in pending {
            let answers = reply_rx.recv().map_err(|_| ())?;
            for (&pos, answer) in query_slots[s].iter().zip(answers) {
                posteriors[pos] = answer;
            }
        }
        Ok(posteriors)
    }

    /// Finishes every live worker, collects every bank (clean exits and
    /// casualties alike), joins the threads, and merges the banks.
    fn drain_and_merge(&self, hub: &mut Hub) -> BayesBank {
        for worker in &mut hub.workers {
            if let Some(tx) = worker.commands.take() {
                let _ = tx.send(WorkerMsg::Finish);
            }
        }
        let mut states = std::mem::take(&mut hub.lost);
        while states.len() < hub.workers.len() {
            match hub.events.recv() {
                Ok(WorkerEvent::Finished { state } | WorkerEvent::Down { state }) => {
                    states.push(*state);
                }
                Ok(WorkerEvent::Solved { .. }) => continue,
                Err(_) => break,
            }
        }
        for worker in &mut hub.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
        BayesBank::merge(states.into_iter().map(|s| s.bank))
    }
}
