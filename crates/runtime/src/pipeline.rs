//! The slot-pipeline hub and its supervisor.
//!
//! [`SlotRuntime::run`] drives a [`SlotSource`]/[`SlotSink`] driver
//! through the staged pipeline. The hub (caller's thread) executes, per
//! slot `t`:
//!
//! ```text
//!  begin(t)            source advances faults/connectivity; windows are
//!                      synthesized here, overlapping solve(t−1)
//!  join(t−1)           block on the shard results of slot t−1
//!                      (backpressure: a slow solver stalls everything
//!                      downstream), assemble them through
//!                      FleetScheduler::assemble, deliver solved(t−1),
//!                      migrate estimators after the rebalance, recycle
//!                      the t−1 fleet buffer
//!  prepare(t)          route observations(t−1) + forgets(t) + γ queries
//!                      to the owning shard banks (FIFO guarantees they
//!                      land after solve(t−1))
//!  checkpoint(t)       every `interval` slots: ask each worker to
//!                      encode its bank (queued between Prepare and
//!                      Solve, so the snapshot is exactly the
//!                      post-prepare bank); the hub persists the bytes
//!                      while joining the next solve
//!  gather(t)           source fills the recycled buffer
//!  dispatch(t)         partition + fan the shared Arc<GatheredSlot> out
//!  apply(t)            sink plays slot t with the decision solved at
//!                      t−1 — overlapping solve(t), the pipeline win
//! ```
//!
//! Exactly one solve is in flight at a time and exactly two fleet
//! buffers circulate (one being gathered, one being solved) — the
//! double buffer. The hub recovers a buffer via `Arc::try_unwrap`,
//! which is guaranteed to succeed because every worker drops its handle
//! *before* announcing its result.
//!
//! ## Supervision
//!
//! On worker death the hub walks a recovery ladder instead of
//! abandoning the pipeline:
//!
//! 1. **Respawn** the shard with exponential backoff, restoring its
//!    bank from the newest valid checkpoint generation plus a replay of
//!    the hub's write-ahead journal (every bank op sent since that
//!    snapshot) — or, with no store configured, from the state the
//!    dying worker shipped home. Deterministic either way: the restored
//!    bank is bit-identical to the one that died (debug builds assert
//!    it against the shipped copy).
//! 2. **Re-dispatch** the in-flight slot to the respawned worker with
//!    an incremented attempt counter, so injected repeat-faults
//!    eventually let it through.
//! 3. Only when the per-shard retry budget is exhausted, or every
//!    checkpoint generation fails its checksum, does the hub **fall
//!    back**: drain the in-flight slot (dead shards contribute
//!    passthrough), merge every bank, and continue inline through the
//!    sequential [`FleetScheduler`] path.

use crate::checkpoint::{
    CheckpointStore, FlightReason, FlightRecording, JournalOp, LoggedDecision, RecoveryConfig,
    RecoveryReport, ShardJournal,
};
use crate::shard::{spawn_worker, ShardState, SolveJob, WorkerEvent, WorkerMsg};
use crate::{BankOps, CheckpointConfig, CheckpointError, SlotReplay, SlotSink, SlotSource, SolvedSlot};
use crossbeam::channel::{bounded, Receiver, Sender};
use lpvs_bayes::{BayesBank, GammaEstimator};
use lpvs_obs::{FlightRing, SpanContext};
use lpvs_core::fleet::DeviceFleet;
use lpvs_core::scheduler::{Degradation, Schedule};
use lpvs_edge::fleet::{FleetConfig, FleetScheduler, Partitioner};
use lpvs_edge::server::EdgeServer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deterministic worker-crash injection: each (slot, shard) pair dies
/// with probability `rate`, derived by hashing against `seed` so runs
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFaults {
    /// Per-(slot, shard) death probability in `[0, 1]`.
    pub rate: f64,
    /// Hash salt, independent of the population seed.
    pub seed: u64,
    /// How many respawned attempts of a faulted (slot, shard) die
    /// again: attempt `a` is killed while `a <= repeat`. `0` means one
    /// death per hit (the respawn succeeds); `u32::MAX` makes the shard
    /// unrecoverable, forcing the sequential fallback.
    pub repeat: u32,
}

impl StageFaults {
    /// Single-death faults at `rate`, salted by `seed`.
    pub fn new(rate: f64, seed: u64) -> Self {
        Self { rate, seed, repeat: 0 }
    }
}

/// Runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Shard count, partitioner, per-shard scheduler, and rebalance
    /// bound — shared with the scoped-thread [`FleetScheduler`] so both
    /// paths solve identically.
    pub fleet: FleetConfig,
    /// Optional injected worker crashes (exercises the recovery
    /// ladder).
    pub stage_faults: Option<StageFaults>,
    /// Bounded capacity of each worker's command channel.
    pub command_depth: usize,
    /// Supervisor retry budget and backoff.
    pub recovery: RecoveryConfig,
    /// Periodic shard checkpointing; `None` disables the store (worker
    /// deaths then restore from the shipped in-flight state).
    pub checkpoints: Option<CheckpointConfig>,
    /// Stop the run after this slot completes — a simulated hub crash
    /// for resume tests (pending checkpoint writes are still drained,
    /// so the manifest reflects the newest complete round).
    pub halt_after_slot: Option<usize>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            stage_faults: None,
            command_depth: 4,
            recovery: RecoveryConfig::default(),
            checkpoints: None,
            halt_after_slot: None,
        }
    }
}

/// Serializable run summary (embedded in emulation reports).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuntimeSummary {
    /// Whether the staged pipeline ran (false: sequential mode).
    pub pipelined: bool,
    /// Shard worker count.
    pub shards: usize,
    /// Slots driven.
    pub slots: usize,
    /// Slots that dispatched a solve (idle slots excluded).
    pub solved_slots: usize,
    /// Estimators physically moved between shard banks.
    pub estimator_migrations: usize,
    /// Workers lost to faults or panics (respawned or not).
    pub workers_lost: usize,
    /// Structured recovery account: per-shard deaths/retries/replays,
    /// checkpoint counters, and the fallback slot if the ladder
    /// bottomed out.
    pub recovery: RecoveryReport,
}

/// Result of a runtime run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Counters and recovery state.
    pub summary: RuntimeSummary,
    /// Final γ estimators, dense by device id — merged back from the
    /// shard banks.
    pub estimators: Vec<GammaEstimator>,
    /// Total wall-clock spent in (dispatch → joined) solves.
    pub solve_runtime: Duration,
    /// `(slot, solver wall-clock)` per solved slot, join order. Lets
    /// benchmarks separate the cold first solve from the steady-state
    /// tail instead of averaging them together.
    pub slot_solve_runtimes: Vec<(usize, Duration)>,
}

#[derive(Default)]
struct RunStats {
    slots: usize,
    solved_slots: usize,
    estimator_migrations: usize,
    solve_runtime: Duration,
    slot_solve_runtimes: Vec<(usize, Duration)>,
}

impl RunStats {
    fn count_solved(&mut self, slot: usize, runtime: Duration) {
        self.solve_runtime += runtime;
        self.solved_slots += 1;
        self.slot_solve_runtimes.push((slot, runtime));
    }
}

/// A dispatched, not-yet-joined solve.
struct PendingSolve {
    slot: usize,
    gathered: Arc<crate::GatheredSlot>,
    shards: Vec<Vec<usize>>,
    servers: Vec<EdgeServer>,
    /// Per-shard dispatch attempt for this slot (bumped on respawn).
    attempts: Vec<u32>,
    /// Per-shard memo invalidation: set at dispatch when the hub knows
    /// the shard's warm state cannot be trusted (an estimator migration
    /// touched it), and on every re-dispatch after a death.
    force_cold: Vec<bool>,
    dispatched_at: Instant,
    /// The slot span's context, shipped with every (re-)dispatch so
    /// worker-side solve spans join the slot's trace.
    ctx: Option<SpanContext>,
}

/// What joining a solve produced.
struct Collected {
    solved: SolvedSlot,
    /// The recovered fleet buffer (recycled into the next gather).
    buffer: Option<DeviceFleet>,
    /// Fleet-order → global device id mapping of the joined slot.
    device_ids: Vec<usize>,
}

struct WorkerHandle {
    commands: Option<Sender<WorkerMsg>>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn send(&self, msg: WorkerMsg) -> Result<(), ()> {
        match &self.commands {
            Some(tx) => tx.send(msg).map_err(|_| ()),
            None => Err(()),
        }
    }
}

/// The worker pool plus the routing state the hub keeps about it.
struct Hub {
    workers: Vec<WorkerHandle>,
    events: Receiver<WorkerEvent>,
    /// Kept so the supervisor can wire respawned workers onto the same
    /// event stream.
    event_tx: Sender<WorkerEvent>,
    /// Device → shard whose bank currently owns its estimator. Starts
    /// as the home partition; updated as migrations follow rebalances.
    owner: Vec<usize>,
    /// States recovered from permanently dead workers, pending the
    /// merge.
    lost: Vec<ShardState>,
    workers_lost: usize,
    /// Per-shard blackbox rings. Each worker pushes its last few
    /// actions here; the ring survives respawns (the replacement worker
    /// writes into the same ring), so a recording spans the death.
    rings: Vec<Arc<FlightRing>>,
    /// Shards whose next dispatch must invalidate the delta memo —
    /// set when an estimator migration moves γ state into or out of a
    /// shard's bank, drained at dispatch.
    force_cold: Vec<bool>,
}

impl Hub {
    fn all_alive(&self) -> bool {
        self.workers.iter().all(|w| w.commands.is_some())
    }

    /// Marks a shard permanently dead and keeps its shipped state for
    /// the merge.
    fn bury(&mut self, state: ShardState) {
        let s = state.shard;
        self.workers[s].commands = None;
        self.lost.push(state);
    }
}

/// Everything the supervisor tracks across a run: the checkpoint
/// store, the per-shard write-ahead journals, and the recovery
/// accounting.
struct Supervisor {
    store: Option<CheckpointStore>,
    journals: Vec<ShardJournal>,
    report: RecoveryReport,
}

/// Cap on blackbox recordings kept in one report — enough for every
/// death in a stormy run, bounded against unrecoverable repeat-faults.
const MAX_FLIGHT_RECORDINGS: usize = 32;

impl Supervisor {
    fn new(store: Option<CheckpointStore>, shards: usize) -> Self {
        Self {
            store,
            journals: (0..shards).map(|_| ShardJournal::new()).collect(),
            report: RecoveryReport::new(shards),
        }
    }

    /// Snapshots one shard's blackbox ring into the report.
    fn record_flight(
        &mut self,
        rings: &[Arc<FlightRing>],
        shard: usize,
        slot: usize,
        reason: FlightReason,
    ) {
        if self.report.flight.len() >= MAX_FLIGHT_RECORDINGS {
            return;
        }
        self.report.flight.push(FlightRecording {
            shard,
            slot,
            reason,
            events: rings[shard].snapshot(),
        });
        // Two shards can die in the same slot, and the hub observes
        // their Down messages in arrival order — which is racy. Keep
        // the report sorted by a deterministic key (stable, so a
        // death followed by a corrupt restore on the same shard keeps
        // its causal order) so replays compare equal.
        self.report.flight.sort_by_key(|r| (r.slot, r.shard));
    }

    /// Journals one shard-bound bank op (no-op without a store — the
    /// journal only exists to extend snapshots forward in time).
    fn journal(&mut self, shard: usize, op: JournalOp) {
        if self.store.is_some() {
            self.journals[shard].push(op);
        }
    }

    /// Persists one worker-encoded snapshot into the pending round.
    /// `pending` (when its slot matches) contributes the shard's
    /// in-flight fleet slice. On round completion the journals are
    /// truncated to the oldest generation still retained.
    fn persist(
        &mut self,
        shard: usize,
        slot: usize,
        bank_bytes: &[u8],
        memo_bytes: Option<&[u8]>,
        pending: Option<&PendingSolve>,
    ) {
        let Some(store) = self.store.as_mut() else { return };
        let fleet_ctx = pending.filter(|p| p.slot == slot).map(|p| {
            let ids: Vec<usize> =
                p.shards[shard].iter().map(|&i| p.gathered.device_ids[i]).collect();
            let slice = p.gathered.fleet.slice_rows(&p.shards[shard]);
            (ids, slice)
        });
        let fleet = fleet_ctx.as_ref().map(|(ids, fl)| (ids.as_slice(), fl));
        match store.persist_shard(shard, slot, bank_bytes, fleet, memo_bytes) {
            Ok(Some(marks)) => {
                for (journal, mark) in self.journals.iter_mut().zip(marks) {
                    journal.truncate_to(mark);
                }
            }
            Ok(None) => {}
            // A failed write just means this generation is missing; the
            // ladder falls through to an older one.
            Err(_) => {}
        }
    }

    /// Logs a joined decision for hub-restart replay.
    fn log_decision(&mut self, collected: &Collected) {
        let Some(store) = self.store.as_mut() else { return };
        let decision = LoggedDecision {
            slot: collected.solved.slot,
            tier: collected.solved.tier,
            device_ids: collected.device_ids.clone(),
            selected: collected.solved.schedule.selected.clone(),
        };
        let _ = store.log_decision(&decision);
    }

    /// Folds the store's counters into the report and returns it.
    fn into_report(self, resumed_at: Option<usize>) -> RecoveryReport {
        let mut report = self.report;
        if let Some(store) = self.store.as_ref() {
            report.checkpoints_written = store.checkpoints_written();
            report.checkpoints_corrupted = store.checkpoints_corrupted();
            report.generations_rejected = store.generations_rejected();
        }
        report.resumed_at = resumed_at;
        report
    }
}

/// The pipelined slot runtime.
pub struct SlotRuntime {
    config: RuntimeConfig,
    scheduler: FleetScheduler,
}

impl SlotRuntime {
    /// Creates a runtime.
    ///
    /// # Panics
    ///
    /// Panics if the fleet configuration names zero shards.
    pub fn new(config: RuntimeConfig) -> Self {
        let scheduler = FleetScheduler::new(config.fleet);
        Self { config, scheduler }
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Home shard of every device under the configured partitioner —
    /// the initial bank split, before any migration.
    pub fn home_shards(&self, devices: usize) -> Vec<usize> {
        let k = self.config.fleet.num_shards;
        let mut owner = vec![0usize; devices];
        match self.config.fleet.partitioner {
            Partitioner::Locality => {
                let base = devices / k;
                let extra = devices % k;
                let mut start = 0;
                for s in 0..k {
                    let size = base + usize::from(s < extra);
                    for o in &mut owner[start..start + size] {
                        *o = s;
                    }
                    start += size;
                }
            }
            Partitioner::Hash => {
                for (d, o) in owner.iter_mut().enumerate() {
                    let h = (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
                    *o = (h % k as u64) as usize;
                }
            }
        }
        owner
    }

    fn open_store(&self) -> Option<CheckpointStore> {
        self.config.checkpoints.as_ref().map(|cfg| {
            CheckpointStore::create(cfg, self.config.fleet.num_shards)
                .expect("checkpoint store directory must be creatable")
        })
    }

    /// Runs the driver through the staged pipeline. `estimators[d]` is
    /// device `d`'s γ estimator; they are split into shard-local banks
    /// up front and merged back into the report at the end.
    pub fn run<D: SlotSource + SlotSink>(
        &self,
        driver: &mut D,
        estimators: Vec<GammaEstimator>,
    ) -> RuntimeReport {
        let k = self.config.fleet.num_shards;
        let owner = self.home_shards(estimators.len());
        let shards = BayesBank::from_estimators(estimators)
            .split(k, |d| owner[d])
            .into_iter()
            .map(|bank| (bank, None))
            .collect();
        self.run_from(driver, shards, owner, 0, self.open_store(), None)
    }

    /// Resumes a halted run mid-horizon from the checkpoint store's
    /// manifest: restores each shard's bank from the manifest's
    /// snapshot generation, replays the logged decisions through the
    /// driver's [`SlotReplay`] implementation to rebuild its internal
    /// state, and re-enters the slot loop at the manifest slot. A
    /// resumed run is bit-identical to one that never stopped.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Manifest`] when no store is configured or no
    /// manifest exists; any store error from loading snapshots or the
    /// decision log.
    pub fn resume<D: SlotSource + SlotSink + SlotReplay>(
        &self,
        driver: &mut D,
    ) -> Result<RuntimeReport, CheckpointError> {
        let cfg = self
            .config
            .checkpoints
            .as_ref()
            .ok_or(CheckpointError::Manifest("resume requires a checkpoint store"))?;
        let k = self.config.fleet.num_shards;
        let mut store = CheckpointStore::create(cfg, k)?;
        let manifest = store
            .read_manifest()?
            .ok_or(CheckpointError::Manifest("no run manifest to resume from"))?;
        if manifest.generations.len() != k {
            return Err(CheckpointError::Manifest("manifest shard count mismatch"));
        }
        let restore_start = Instant::now();
        let mut shards = Vec::with_capacity(k);
        for (s, &gen) in manifest.generations.iter().enumerate() {
            let snapshot = store.load_generation(s, gen)?;
            // The snapshot's memo is the solve the shard completed just
            // before the checkpoint round, so a resumed run continues
            // the incremental chain exactly where the halted one left
            // it. A v1 snapshot has no memo and resumes cold.
            shards.push((snapshot.bank, snapshot.memo));
        }
        // The ownership map is implicit in the restored banks: whatever
        // shard holds a device's estimator owns it.
        let devices = shards
            .iter()
            .flat_map(|(bank, _)| bank.devices())
            .max()
            .map_or(0, |d| d + 1);
        let mut owner = vec![0usize; devices];
        for (s, (bank, _)) in shards.iter().enumerate() {
            for d in bank.devices() {
                owner[d] = s;
            }
        }
        // Replay the decided prefix: at original iteration `t` the hub
        // delivered solved(t−1) before playing slot t, so staging
        // mirrors that order, and the decision for `slot − 1` is staged
        // last, ready for the resumed loop's first apply.
        let decisions = store.read_decisions()?;
        let slot = manifest.slot;
        let stage = |driver: &mut D, t: usize| {
            if let Some(prev) = t.checked_sub(1) {
                if let Some(d) = decisions.iter().find(|d| d.slot == prev) {
                    driver.stage_decision(d.slot, &d.device_ids, &d.selected, d.tier);
                }
            }
        };
        for t in 0..slot {
            stage(driver, t);
            driver.replay_slot(t);
        }
        stage(driver, slot);
        if lpvs_obs::enabled() {
            lpvs_obs::observe("recovery_restore_seconds", restore_start.elapsed().as_secs_f64());
            lpvs_obs::gauge_set("recovery_restored_slots", slot as f64);
        }
        Ok(self.run_from(driver, shards, owner, slot, Some(store), Some(slot)))
    }

    /// The pipelined slot loop, entered at `start_slot` with one
    /// `(bank, delta memo)` pair per shard already split (memos all
    /// `None` on a fresh run) and `owner` routing devices to them.
    fn run_from<D: SlotSource + SlotSink>(
        &self,
        driver: &mut D,
        shards: Vec<(BayesBank, Option<crate::shard::ShardDeltaMemo>)>,
        owner: Vec<usize>,
        start_slot: usize,
        store: Option<CheckpointStore>,
        resumed_at: Option<usize>,
    ) -> RuntimeReport {
        let k = self.config.fleet.num_shards;
        let faults = self.config.stage_faults.map(|f| (f.rate, f.seed, f.repeat));

        let (event_tx, events) = bounded(4 * k + 4);
        let rings: Vec<Arc<FlightRing>> =
            (0..k).map(|_| Arc::new(FlightRing::with_default_capacity())).collect();
        let workers: Vec<WorkerHandle> = shards
            .into_iter()
            .enumerate()
            .map(|(s, (bank, memo))| {
                let (tx, rx) = bounded(self.config.command_depth.max(2));
                let thread = spawn_worker(
                    ShardState { shard: s, bank, memo },
                    self.config.fleet.scheduler,
                    faults,
                    Arc::clone(&rings[s]),
                    rx,
                    event_tx.clone(),
                );
                WorkerHandle { commands: Some(tx), thread: Some(thread) }
            })
            .collect();
        let mut hub = Hub {
            workers,
            events,
            event_tx,
            owner,
            lost: Vec::new(),
            workers_lost: 0,
            rings,
            force_cold: vec![false; k],
        };
        let mut sup = Supervisor::new(store, k);
        let interval = self.config.checkpoints.as_ref().map(|c| c.interval);

        let mut stats = RunStats::default();
        let mut in_flight: Option<PendingSolve> = None;
        let mut feedback: Vec<(usize, f64)> = Vec::new();
        let mut recycled: Option<DeviceFleet> = None;
        let mut inline: Option<BayesBank> = None;
        let mut slot = start_slot;
        // On a resume, the restored banks already hold `prepare(slot)`'s
        // maintenance (the snapshot was taken right after it), so the
        // first iteration must not re-apply forgets.
        let mut skip_maintenance = resumed_at.is_some();

        while let Some(ops) = driver.begin_slot(slot) {
            let mut ops = ops;
            if std::mem::take(&mut skip_maintenance) {
                ops.forgets.clear();
            }
            if let Some(bank) = inline.as_mut() {
                // Sequential fallback: the pipeline is gone, the merged
                // bank lives here, slots run inline.
                Self::inline_slot(
                    &self.scheduler,
                    driver,
                    bank,
                    slot,
                    &ops,
                    &mut feedback,
                    &mut recycled,
                    &mut stats,
                );
                slot += 1;
                continue;
            }

            let mut slot_span = lpvs_obs::span!("runtime.slot", "slot" => slot);
            // Captured once per slot; every channel hop out of the hub
            // (prepare, dispatch, re-dispatch) carries this context so
            // worker-side spans join the slot's trace.
            let slot_ctx = slot_span.context();
            let mut healthy = true;

            // --- join(t−1) ---------------------------------------------
            if let Some(pending) = in_flight.take() {
                if lpvs_obs::enabled() {
                    lpvs_obs::gauge_set("runtime_queue_depth", hub.events.len() as f64);
                }
                let wait = Instant::now();
                let collected = self.join_solve(&mut hub, &mut sup, pending, &mut stats);
                if lpvs_obs::enabled() {
                    let waited = wait.elapsed().as_secs_f64();
                    lpvs_obs::observe("runtime_solve_wait_seconds", waited);
                    lpvs_obs::observe_labeled("runtime_stage_seconds", &[("stage", "join")], waited);
                }
                slot_span.record("joined_migrations", collected.solved.schedule.migrations as f64);
                driver.solved(&collected.solved);
                sup.log_decision(&collected);
                healthy = hub.all_alive()
                    && self.migrate_estimators(&mut hub, &mut sup, &collected, &mut stats).is_ok();
                recycled = collected.buffer;
            }

            // --- prepare(t) --------------------------------------------
            // `ops_consumed`: whether banks saw this slot's maintenance,
            // so the fallback path knows whether to replay it.
            let mut ops_consumed = false;
            let posteriors = if healthy {
                ops_consumed = true;
                let observations = std::mem::take(&mut feedback);
                for &(d, ratio) in &observations {
                    sup.journal(hub.owner[d], JournalOp::Observe(d, ratio));
                }
                for &(d, stale) in &ops.forgets {
                    sup.journal(hub.owner[d], JournalOp::Forget(d, stale));
                }
                self.prepare(&hub, &ops, observations, slot_ctx).ok()
            } else {
                None
            };

            let Some(posteriors) = posteriors else {
                // --- sequential fallback -------------------------------
                lpvs_obs::inc("runtime_fallback_total");
                let mut bank = self.drain_and_merge(&mut hub, &mut sup);
                // Snapshot every shard's blackbox after the drain —
                // workers are quiescent, so the recording is the
                // deterministic tail of what each did before the
                // pipeline gave up (replay runs compare reports).
                for s in 0..k {
                    sup.record_flight(&hub.rings, s, slot, FlightReason::Fallback);
                }
                if !ops_consumed {
                    for (d, ratio) in feedback.drain(..) {
                        bank.observe_or_forget(d, ratio);
                    }
                    for &(d, stale) in &ops.forgets {
                        bank.forget(d, stale);
                    }
                }
                let posteriors: Vec<(f64, f64)> =
                    ops.queries.iter().map(|&d| bank.posterior(d)).collect();
                sup.report.fell_back = Some(slot);
                Self::inline_gather_solve_apply(
                    &self.scheduler,
                    driver,
                    slot,
                    &posteriors,
                    &mut feedback,
                    &mut recycled,
                    &mut stats,
                );
                inline = Some(bank);
                slot += 1;
                continue;
            };

            // --- checkpoint round(t) -----------------------------------
            if let Some(interval) = interval {
                if (slot - start_slot).is_multiple_of(interval) {
                    self.request_checkpoints(&mut hub, &mut sup, slot);
                }
            }

            // --- gather(t) + dispatch(t) -------------------------------
            let gather_start = Instant::now();
            let gathered = driver.gather(slot, &posteriors, recycled.take());
            if lpvs_obs::enabled() {
                let gathered_in = gather_start.elapsed().as_secs_f64();
                lpvs_obs::observe("runtime_gather_seconds", gathered_in);
                lpvs_obs::observe_labeled(
                    "runtime_stage_seconds",
                    &[("stage", "gather")],
                    gathered_in,
                );
            }
            if let Some(g) = gathered {
                in_flight = Some(self.dispatch(&mut hub, slot, g, slot_ctx));
            }

            // --- apply(t) — overlaps solve(t) --------------------------
            let apply_start = Instant::now();
            feedback = driver.apply(slot).observations;
            if lpvs_obs::enabled() {
                let applied_in = apply_start.elapsed().as_secs_f64();
                lpvs_obs::observe("runtime_apply_seconds", applied_in);
                lpvs_obs::observe_labeled("runtime_stage_seconds", &[("stage", "apply")], applied_in);
                lpvs_obs::inc("runtime_slots_total");
            }
            stats.slots += 1;
            if self.config.halt_after_slot == Some(slot) {
                // Simulated hub crash: stop driving, but drain cleanly
                // below so pending checkpoint bytes reach the store and
                // the manifest names the newest complete round.
                break;
            }
            slot += 1;
        }

        // --- drain -----------------------------------------------------
        let estimators = if let Some(mut bank) = inline.take() {
            for (d, ratio) in feedback.drain(..) {
                bank.observe_or_forget(d, ratio);
            }
            bank.into_dense()
        } else {
            if let Some(pending) = in_flight.take() {
                // The horizon ended with a solve in flight: join it so
                // the sink records its tier (its decision is never
                // applied — the sequential one-slot-ahead engine stages
                // its last decision the same way).
                let collected = self.join_solve(&mut hub, &mut sup, pending, &mut stats);
                driver.solved(&collected.solved);
                sup.log_decision(&collected);
            }
            // The last slot's observations still belong in the banks —
            // the sequential engine folds them during its final play.
            // Root a span for them so the worker-side prepare spans
            // stay parented (no orphans anywhere in the runtime).
            if !feedback.is_empty() {
                let tail_span =
                    lpvs_obs::span!("runtime.tail", "observations" => feedback.len());
                let _ = self.prepare(
                    &hub,
                    &BankOps::default(),
                    std::mem::take(&mut feedback),
                    tail_span.context(),
                );
            }
            self.drain_and_merge(&mut hub, &mut sup).into_dense()
        };
        if let Some(store) = sup.store.as_mut() {
            let _ = store.flush_decisions();
        }

        RuntimeReport {
            summary: RuntimeSummary {
                pipelined: true,
                shards: k,
                slots: stats.slots,
                solved_slots: stats.solved_slots,
                estimator_migrations: stats.estimator_migrations,
                workers_lost: hub.workers_lost,
                recovery: sup.into_report(resumed_at),
            },
            estimators,
            solve_runtime: stats.solve_runtime,
            slot_solve_runtimes: stats.slot_solve_runtimes,
        }
    }

    /// Runs the driver strictly sequentially — same one-slot-ahead
    /// delivery order as the pipeline (`solved(t)` lands before
    /// `apply(t)`, and staging sinks consume solves `< t`), but every
    /// stage on one thread with one global bank. The baseline the
    /// pipeline is benchmarked and determinism-tested against.
    pub fn run_sequential<D: SlotSource + SlotSink>(
        &self,
        driver: &mut D,
        estimators: Vec<GammaEstimator>,
    ) -> RuntimeReport {
        let mut bank = BayesBank::from_estimators(estimators);
        let mut stats = RunStats::default();
        let mut feedback: Vec<(usize, f64)> = Vec::new();
        let mut recycled: Option<DeviceFleet> = None;
        let mut slot = 0usize;
        while let Some(ops) = driver.begin_slot(slot) {
            Self::inline_slot(
                &self.scheduler,
                driver,
                &mut bank,
                slot,
                &ops,
                &mut feedback,
                &mut recycled,
                &mut stats,
            );
            slot += 1;
        }
        for (d, ratio) in feedback.drain(..) {
            bank.observe_or_forget(d, ratio);
        }
        RuntimeReport {
            summary: RuntimeSummary {
                pipelined: false,
                shards: self.config.fleet.num_shards,
                slots: stats.slots,
                solved_slots: stats.solved_slots,
                estimator_migrations: 0,
                workers_lost: 0,
                recovery: RecoveryReport::default(),
            },
            estimators: bank.into_dense(),
            solve_runtime: stats.solve_runtime,
            slot_solve_runtimes: stats.slot_solve_runtimes,
        }
    }

    /// One inline (non-pipelined) slot: bank maintenance, gather, solve
    /// through the scoped-thread fleet path, apply.
    #[allow(clippy::too_many_arguments)]
    fn inline_slot<D: SlotSource + SlotSink>(
        scheduler: &FleetScheduler,
        driver: &mut D,
        bank: &mut BayesBank,
        slot: usize,
        ops: &BankOps,
        feedback: &mut Vec<(usize, f64)>,
        recycled: &mut Option<DeviceFleet>,
        stats: &mut RunStats,
    ) {
        for (d, ratio) in feedback.drain(..) {
            bank.observe_or_forget(d, ratio);
        }
        for &(d, stale) in &ops.forgets {
            bank.forget(d, stale);
        }
        let posteriors: Vec<(f64, f64)> = ops.queries.iter().map(|&d| bank.posterior(d)).collect();
        Self::inline_gather_solve_apply(
            scheduler, driver, slot, &posteriors, feedback, recycled, stats,
        );
    }

    /// The gather → solve → solved → apply tail of an inline slot.
    fn inline_gather_solve_apply<D: SlotSource + SlotSink>(
        scheduler: &FleetScheduler,
        driver: &mut D,
        slot: usize,
        posteriors: &[(f64, f64)],
        feedback: &mut Vec<(usize, f64)>,
        recycled: &mut Option<DeviceFleet>,
        stats: &mut RunStats,
    ) {
        if let Some(g) = driver.gather(slot, posteriors, recycled.take()) {
            let server = EdgeServer::new(g.compute_capacity, g.storage_capacity_gb);
            let schedule =
                scheduler.schedule(&g.fleet, &server, g.lambda, &g.curve, g.warm.as_deref(), &g.budget);
            let tier = schedule
                .shards
                .iter()
                .map(|r| r.stats.degradation)
                .max()
                .unwrap_or(Degradation::Passthrough);
            stats.count_solved(slot, schedule.runtime);
            driver.solved(&SolvedSlot { slot, schedule, tier });
            *recycled = Some(g.fleet);
        }
        *feedback = driver.apply(slot).observations;
        stats.slots += 1;
    }

    /// Requests a checkpoint round: drains any checkpoint bytes still
    /// waiting from an earlier round (idle slots can keep a join from
    /// running), then asks every live worker to encode its bank. The
    /// request is queued between `Prepare(slot)` and `Solve(slot)`, so
    /// the snapshot is exactly the post-prepare bank.
    fn request_checkpoints(&self, hub: &mut Hub, sup: &mut Supervisor, slot: usize) {
        loop {
            match hub.events.try_recv() {
                Ok(WorkerEvent::Checkpointed { shard, slot: ckpt_slot, bank, memo }) => {
                    sup.persist(shard, ckpt_slot, &bank, memo.as_deref(), None);
                }
                Ok(WorkerEvent::Down { state } | WorkerEvent::Finished { state }) => {
                    // No solve is outstanding here, so this death has
                    // nothing to re-dispatch: it is permanent, and the
                    // next prepare touching the shard triggers the
                    // fallback.
                    sup.report.shards[state.shard].deaths += 1;
                    sup.record_flight(&hub.rings, state.shard, slot, FlightReason::WorkerDeath);
                    hub.workers_lost += 1;
                    hub.bury(*state);
                }
                Ok(WorkerEvent::Solved { .. }) | Err(_) => break,
            }
        }
        let marks: Vec<u64> = sup.journals.iter().map(|j| j.mark()).collect();
        if let Some(store) = sup.store.as_mut() {
            store.begin_round(slot, marks);
        }
        for worker in &hub.workers {
            let _ = worker.send(WorkerMsg::Checkpoint { slot });
        }
    }

    /// Builds shard `s`'s slice of `pending` (first dispatch and
    /// re-dispatch alike — the attempt counter comes from `pending`).
    fn shard_job(pending: &PendingSolve, s: usize) -> SolveJob {
        // Same guard as the scoped path: warm starts only carry over
        // when the population is unchanged.
        let warm = pending
            .gathered
            .warm
            .as_deref()
            .filter(|p| p.len() == pending.gathered.fleet.len());
        SolveJob {
            slot: pending.slot,
            attempt: pending.attempts[s],
            gathered: Arc::clone(&pending.gathered),
            indices: pending.shards[s].clone(),
            compute_capacity: pending.servers[s].compute_capacity(),
            storage_capacity_gb: pending.servers[s].storage_capacity_gb(),
            warm: warm.map(|p| pending.shards[s].iter().map(|&i| p[i]).collect()),
            force_cold: pending.force_cold[s],
            ctx: pending.ctx,
        }
    }

    /// Partitions a gathered slot and fans it out to the workers. Any
    /// pending per-shard memo invalidations (estimator migrations since
    /// the last dispatch) ride along as `force_cold` and are cleared.
    fn dispatch(
        &self,
        hub: &mut Hub,
        slot: usize,
        g: crate::GatheredSlot,
        ctx: Option<SpanContext>,
    ) -> PendingSolve {
        let k = hub.workers.len();
        let gathered = Arc::new(g);
        let shards = self.scheduler.partition(&gathered.fleet);
        let server = EdgeServer::new(gathered.compute_capacity, gathered.storage_capacity_gb);
        let servers = FleetScheduler::split_server(&server, k);
        let dispatched_at = Instant::now();
        let force_cold = std::mem::replace(&mut hub.force_cold, vec![false; k]);
        let pending = PendingSolve {
            slot,
            gathered,
            shards,
            servers,
            attempts: vec![0; k],
            force_cold,
            dispatched_at,
            ctx,
        };
        for (s, worker) in hub.workers.iter().enumerate() {
            // A send failure means the worker died; the join step will
            // see its Down event (or its pre-marked dead handle) and
            // degrade the shard to passthrough.
            let _ = worker.send(WorkerMsg::Solve(Self::shard_job(&pending, s)));
        }
        pending
    }

    /// Restores a dead shard's bank for respawn. With a checkpoint
    /// store: newest valid generation + journal replay since its mark
    /// (`None` when every generation fails its checksum — the ladder
    /// bottoms out). Without one: the state the dying worker shipped
    /// home.
    fn restore_bank(
        &self,
        sup: &mut Supervisor,
        rings: &[Arc<FlightRing>],
        shard: usize,
        pending: &PendingSolve,
        shipped: &ShardState,
    ) -> Option<BayesBank> {
        let started = Instant::now();
        let bank = if let Some(store) = sup.store.as_mut() {
            // `restore_latest` walks generations newest-first, skipping
            // any that fail checksum/decode. If it skipped (or ran out
            // of) generations, that is corruption worth a blackbox
            // snapshot, whether or not an older generation saved us.
            let rejected_before = store.generations_rejected();
            let restored = store.restore_latest(shard);
            let hit_corruption = store.generations_rejected() > rejected_before;
            if hit_corruption {
                sup.record_flight(rings, shard, pending.slot, FlightReason::CorruptCheckpoint);
            }
            let (generation, snapshot) = restored?;
            let mut bank = snapshot.bank;
            sup.journals[shard].replay_onto(&mut bank, generation.mark);
            // The checkpoint+journal reconstruction must agree with the
            // state the dying worker shipped home — the property that
            // makes snapshot-based respawn safe against double-applied
            // observations.
            debug_assert_eq!(
                bank, shipped.bank,
                "checkpoint+journal replay diverged from the shipped bank"
            );
            let rec = &mut sup.report.shards[shard];
            rec.generation_used = Some(generation.gen);
            rec.slots_replayed += pending.slot.saturating_sub(generation.slot);
            bank
        } else {
            sup.report.shards[shard].inflight_restores += 1;
            shipped.bank.clone()
        };
        if lpvs_obs::enabled() {
            lpvs_obs::observe("recovery_restore_seconds", started.elapsed().as_secs_f64());
        }
        Some(bank)
    }

    /// Blocks until every shard has reported on `pending`, then joins
    /// the results through [`FleetScheduler::assemble`]. A dying worker
    /// is respawned from its restored bank and the slot re-dispatched
    /// to it, until its retry budget runs out — only then does the
    /// shard degrade to passthrough (and the run to the sequential
    /// fallback, via the health check after this join). Checkpoint
    /// bytes arriving on the event stream are persisted along the way.
    fn join_solve(
        &self,
        hub: &mut Hub,
        sup: &mut Supervisor,
        mut pending: PendingSolve,
        stats: &mut RunStats,
    ) -> Collected {
        let k = hub.workers.len();
        let mut results: Vec<Option<Schedule>> = (0..k).map(|_| None).collect();
        // Shards already buried (e.g. a death noticed while requesting
        // checkpoints) are passthrough from the start.
        let mut accounted: Vec<bool> = hub.workers.iter().map(|w| w.commands.is_none()).collect();
        let mut remaining = accounted.iter().filter(|&&a| !a).count();
        while remaining > 0 {
            match hub.events.recv() {
                Ok(WorkerEvent::Solved { shard, slot, schedule }) => {
                    debug_assert_eq!(slot, pending.slot, "stale solve result");
                    results[shard] = schedule.map(|b| *b);
                    if !accounted[shard] {
                        accounted[shard] = true;
                        remaining -= 1;
                    }
                }
                Ok(WorkerEvent::Checkpointed { shard, slot, bank, memo }) => {
                    sup.persist(shard, slot, &bank, memo.as_deref(), Some(&pending));
                }
                Ok(WorkerEvent::Down { state }) => {
                    let s = state.shard;
                    hub.workers_lost += 1;
                    sup.report.shards[s].deaths += 1;
                    lpvs_obs::inc("recovery_deaths_total");
                    if lpvs_obs::enabled() {
                        lpvs_obs::inc_labeled(
                            "runtime_worker_deaths_total",
                            &[("shard", &s.to_string())],
                        );
                    }
                    // Blackbox first, before restore/respawn push new
                    // events into the ring: the recording holds what
                    // the worker did right up to its death.
                    sup.record_flight(&hub.rings, s, pending.slot, FlightReason::WorkerDeath);
                    let attempt = pending.attempts[s];
                    let restored = if accounted[s] || attempt >= self.config.recovery.max_retries {
                        None
                    } else {
                        self.restore_bank(sup, &hub.rings, s, &pending, &state)
                    };
                    match restored {
                        Some(bank) => {
                            // Exponential backoff before the respawn —
                            // the attempt bound keeps the shift sane.
                            std::thread::sleep(
                                self.config.recovery.backoff * (1u32 << attempt.min(10)),
                            );
                            if let Some(old) = hub.workers[s].thread.take() {
                                let _ = old.join();
                            }
                            let (tx, rx) = bounded(self.config.command_depth.max(2));
                            let faults =
                                self.config.stage_faults.map(|f| (f.rate, f.seed, f.repeat));
                            // The respawned worker starts with no delta
                            // memo, and the re-dispatch forces a cold
                            // solve: recovery correctness never depends
                            // on warm state.
                            let thread = spawn_worker(
                                ShardState::new(s, bank),
                                self.config.fleet.scheduler,
                                faults,
                                Arc::clone(&hub.rings[s]),
                                rx,
                                hub.event_tx.clone(),
                            );
                            hub.workers[s] =
                                WorkerHandle { commands: Some(tx), thread: Some(thread) };
                            sup.report.shards[s].retries += 1;
                            lpvs_obs::inc("recovery_respawns_total");
                            pending.attempts[s] = attempt + 1;
                            pending.force_cold[s] = true;
                            let _ = hub.workers[s].send(WorkerMsg::Solve(Self::shard_job(&pending, s)));
                            // Not accounted: the respawned worker's
                            // Solved event closes this shard out.
                        }
                        None => {
                            // Retry budget exhausted or no valid
                            // generation: the shard is gone for good.
                            hub.bury(*state);
                            if !accounted[s] {
                                accounted[s] = true;
                                remaining -= 1;
                            }
                        }
                    }
                }
                Ok(WorkerEvent::Finished { state }) => {
                    let s = state.shard;
                    hub.workers_lost += 1;
                    hub.bury(*state);
                    if !accounted[s] {
                        accounted[s] = true;
                        remaining -= 1;
                    }
                }
                Err(_) => break, // every worker gone; the rest are passthrough
            }
        }

        let PendingSolve { slot, gathered, shards, servers, dispatched_at, .. } = pending;
        let schedule = self.scheduler.assemble(
            &gathered.fleet,
            &servers,
            &shards,
            results,
            gathered.lambda,
            &gathered.curve,
            dispatched_at,
        );
        let tier = schedule
            .shards
            .iter()
            .map(|r| r.stats.degradation)
            .max()
            .unwrap_or(Degradation::Passthrough);
        stats.count_solved(slot, schedule.runtime);
        // Every worker dropped its handle before reporting, so ours is
        // unique and the buffer comes back for the next gather.
        let (buffer, device_ids) = match Arc::try_unwrap(gathered) {
            Ok(g) => (Some(g.fleet), g.device_ids),
            Err(arc) => (None, arc.device_ids.clone()),
        };
        Collected { solved: SolvedSlot { slot, schedule, tier }, buffer, device_ids }
    }

    /// Moves estimators between shard banks to follow the cross-shard
    /// rebalance: a device migrated into a foreign shard takes its γ
    /// state along, keeping γ routing shard-local. Round-trips are
    /// sequenced through the hub in shard order for determinism; each
    /// hop is journaled so snapshots can be replayed forward across it.
    fn migrate_estimators(
        &self,
        hub: &mut Hub,
        sup: &mut Supervisor,
        collected: &Collected,
        stats: &mut RunStats,
    ) -> Result<(), ()> {
        for report in &collected.solved.schedule.shards {
            for &fleet_idx in &report.migrated_in {
                let device = collected.device_ids[fleet_idx];
                let from = hub.owner[device];
                let to = report.shard;
                if from == to {
                    continue;
                }
                let (reply_tx, reply_rx) = bounded(1);
                hub.workers[from].send(WorkerMsg::MigrateOut { device, reply: reply_tx })?;
                let estimator = reply_rx.recv().map_err(|_| ())?;
                sup.journal(from, JournalOp::Take(device));
                sup.journal(to, JournalOp::Insert(device, estimator.clone()));
                hub.workers[to].send(WorkerMsg::MigrateIn { device, estimator })?;
                hub.owner[device] = to;
                // γ state moved across banks: both shards' standing
                // solves are built on posteriors that no longer live
                // where the memo assumed, so their next dispatch is
                // forced cold (all-dirty).
                hub.force_cold[from] = true;
                hub.force_cold[to] = true;
                stats.estimator_migrations += 1;
                lpvs_obs::inc("runtime_migrations_total");
            }
        }
        Ok(())
    }

    /// Routes one slot's bank maintenance and γ queries to the owning
    /// shards and gathers the posterior answers back in query order.
    /// Per-message order (observations, then forgets, then queries)
    /// mirrors the sequential engine's per-device operation order.
    fn prepare(
        &self,
        hub: &Hub,
        ops: &BankOps,
        observations: Vec<(usize, f64)>,
        ctx: Option<SpanContext>,
    ) -> Result<Vec<(f64, f64)>, ()> {
        let k = hub.workers.len();
        let mut per_obs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        let mut per_forgets: Vec<Vec<(usize, u32)>> = vec![Vec::new(); k];
        let mut per_queries: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut query_slots: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (d, ratio) in observations {
            per_obs[hub.owner[d]].push((d, ratio));
        }
        for &(d, stale) in &ops.forgets {
            per_forgets[hub.owner[d]].push((d, stale));
        }
        for (pos, &d) in ops.queries.iter().enumerate() {
            let s = hub.owner[d];
            per_queries[s].push(d);
            query_slots[s].push(pos);
        }

        // Fan out first so shards work concurrently, then await replies
        // in shard order.
        type PosteriorReply = Receiver<Vec<(f64, f64)>>;
        let mut pending: Vec<(usize, PosteriorReply)> = Vec::new();
        for s in 0..k {
            if per_obs[s].is_empty() && per_forgets[s].is_empty() && per_queries[s].is_empty() {
                continue;
            }
            let (reply_tx, reply_rx) = bounded(1);
            hub.workers[s].send(WorkerMsg::Prepare {
                observations: std::mem::take(&mut per_obs[s]),
                forgets: std::mem::take(&mut per_forgets[s]),
                queries: std::mem::take(&mut per_queries[s]),
                reply: reply_tx,
                ctx,
            })?;
            pending.push((s, reply_rx));
        }
        let mut posteriors = vec![(0.0, 0.0); ops.queries.len()];
        for (s, reply_rx) in pending {
            let answers = reply_rx.recv().map_err(|_| ())?;
            for (&pos, answer) in query_slots[s].iter().zip(answers) {
                posteriors[pos] = answer;
            }
        }
        Ok(posteriors)
    }

    /// Finishes every live worker, collects every bank (clean exits and
    /// casualties alike), joins the threads, and merges the banks.
    /// Checkpoint bytes still in the event stream are persisted on the
    /// way — a halted hub flushes its last round here, which is what
    /// makes `halt_after_slot` + [`SlotRuntime::resume`] seamless.
    fn drain_and_merge(&self, hub: &mut Hub, sup: &mut Supervisor) -> BayesBank {
        for worker in &mut hub.workers {
            if let Some(tx) = worker.commands.take() {
                let _ = tx.send(WorkerMsg::Finish);
            }
        }
        // The hub's own event_tx clone keeps the channel open, so drain
        // by count, not disconnection.
        let mut states = std::mem::take(&mut hub.lost);
        while states.len() < hub.workers.len() {
            match hub.events.recv() {
                Ok(WorkerEvent::Finished { state } | WorkerEvent::Down { state }) => {
                    states.push(*state);
                }
                Ok(WorkerEvent::Checkpointed { shard, slot, bank, memo }) => {
                    sup.persist(shard, slot, &bank, memo.as_deref(), None);
                }
                Ok(WorkerEvent::Solved { .. }) => continue,
                Err(_) => break,
            }
        }
        // Late checkpoint bytes can still be queued behind the final
        // states (a worker checkpoints, then finishes).
        while let Ok(event) = hub.events.try_recv() {
            if let WorkerEvent::Checkpointed { shard, slot, bank, memo } = event {
                sup.persist(shard, slot, &bank, memo.as_deref(), None);
            }
        }
        for worker in &mut hub.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
        BayesBank::merge(states.into_iter().map(|s| s.bank))
    }
}
