//! Persistent shard workers and the state they own.
//!
//! Each worker thread owns a [`ShardState`] — its shard id plus the
//! [`BayesBank`] of γ estimators for the devices it is home to — and
//! serves a FIFO command stream from the hub:
//!
//! * [`WorkerMsg::Prepare`] — fold last slot's observations, apply
//!   staleness forgets, answer posterior queries;
//! * [`WorkerMsg::Solve`] — run the resilient scheduler on this shard's
//!   slice of the shared [`GatheredSlot`] (solver panics are contained:
//!   the shard degrades to passthrough, the worker survives);
//! * [`WorkerMsg::MigrateOut`]/[`WorkerMsg::MigrateIn`] — move one
//!   estimator to follow a cross-shard rebalance migration;
//! * [`WorkerMsg::Finish`] — ship the bank home and exit.
//!
//! FIFO ordering is the determinism backbone: a `Prepare` queued behind
//! a `Solve` is answered only after the solve completed, which is
//! exactly the synchronization the one-slot-ahead pipeline needs.
//!
//! If the worker itself dies — an injected stage fault, or a panic
//! outside the contained solver — the bank is **not** lost: the worker
//! ships its [`ShardState`] back to the hub on the way down
//! ([`WorkerEvent::Down`]), so the hub can merge it and fall back to
//! the sequential path.

use crate::GatheredSlot;
use crossbeam::channel::{Receiver, Sender};
use lpvs_bayes::{BayesBank, GammaEstimator};
use lpvs_core::scheduler::{LpvsScheduler, Schedule, SchedulerConfig};
use lpvs_obs::{FlightKind, FlightRing, SpanContext};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything a shard worker owns: identity plus its γ bank. Migrated
/// wholesale when a worker dies or finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard index.
    pub shard: usize,
    /// γ estimators for the devices this shard is home to.
    pub bank: BayesBank,
}

/// One shard's slice of a dispatched solve.
pub(crate) struct SolveJob {
    pub slot: usize,
    /// Zero on first dispatch; incremented each time the supervisor
    /// re-dispatches the slot to a respawned worker. Stage faults only
    /// kill attempts `<= repeat`, so a bounded retry budget converges.
    pub attempt: u32,
    /// The shared gathered slot; the worker drops this handle *before*
    /// announcing its result, so once every shard has reported, the
    /// hub's handle is unique and the buffer can be recycled.
    pub gathered: Arc<GatheredSlot>,
    /// Global fleet indices of this shard's devices.
    pub indices: Vec<usize>,
    /// This shard's split of the edge compute capacity.
    pub compute_capacity: f64,
    /// This shard's split of the edge storage capacity (GB).
    pub storage_capacity_gb: f64,
    /// Warm start for this shard's slice, in slice order.
    pub warm: Option<Vec<bool>>,
    /// The hub's `runtime.slot` span context, handed across the
    /// channel so the worker's solve span joins the slot's trace.
    pub ctx: Option<SpanContext>,
}

/// Commands the hub sends a worker (FIFO per worker).
pub(crate) enum WorkerMsg {
    /// Estimator maintenance + posterior queries for one slot. Order
    /// inside the message matters: observations (from the *previous*
    /// slot's playback) are folded before forgets (this slot's
    /// staleness), matching the sequential engine's per-device order.
    Prepare {
        observations: Vec<(usize, f64)>,
        forgets: Vec<(usize, u32)>,
        queries: Vec<usize>,
        reply: Sender<Vec<(f64, f64)>>,
        /// Slot-span context for causal attribution of the worker-side
        /// maintenance span.
        ctx: Option<SpanContext>,
    },
    /// Solve this shard's slice of a gathered slot.
    Solve(SolveJob),
    /// Encode the bank and ship the bytes home
    /// ([`WorkerEvent::Checkpointed`]); the hub seals and persists
    /// them. Queued between `Prepare` and `Solve`, so the snapshot
    /// captures the bank exactly as of `prepare(slot)`.
    Checkpoint { slot: usize },
    /// Hand device `device`'s estimator to the hub (it is moving to
    /// another shard).
    MigrateOut { device: usize, reply: Sender<GammaEstimator> },
    /// Adopt device `device`'s estimator from another shard.
    MigrateIn { device: usize, estimator: GammaEstimator },
    /// Ship the bank home ([`WorkerEvent::Finished`]) and exit.
    Finish,
}

/// Events workers send the hub on the shared event channel.
pub(crate) enum WorkerEvent {
    /// A solve completed. `None` means the solver panicked and the
    /// shard degrades to passthrough for this slot.
    Solved { shard: usize, slot: usize, schedule: Option<Box<Schedule>> },
    /// The worker's bank, encoded for checkpointing as of
    /// `prepare(slot)`.
    Checkpointed { shard: usize, slot: usize, bank: Vec<u8> },
    /// The worker is exiting abnormally; its state rides along so no
    /// posterior is lost.
    Down { state: Box<ShardState> },
    /// Clean exit after [`WorkerMsg::Finish`].
    Finished { state: Box<ShardState> },
}

/// Deterministic per-(seed, slot, shard) stage-fault decision, made
/// without an RNG stream so worker death reproduces bit-for-bit.
pub(crate) fn stage_fault_hits(seed: u64, slot: usize, shard: usize, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    // splitmix64 over the (seed, slot, shard) triple.
    let mut z = seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((shard as u64) << 32);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64) / ((1u64 << 53) as f64) < rate
}

/// Ships the shard state home if the worker unwinds or returns without
/// a clean [`WorkerMsg::Finish`].
struct BankCourier {
    events: Sender<WorkerEvent>,
    state: Option<Box<ShardState>>,
}

impl Drop for BankCourier {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let _ = self.events.send(WorkerEvent::Down { state });
        }
    }
}

/// Spawns one persistent shard worker.
pub(crate) fn spawn_worker(
    state: ShardState,
    scheduler: SchedulerConfig,
    stage_faults: Option<(f64, u64, u32)>,
    ring: Arc<FlightRing>,
    commands: Receiver<WorkerMsg>,
    events: Sender<WorkerEvent>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let shard = state.shard;
        let scheduler = LpvsScheduler::new(scheduler);
        let mut courier = BankCourier { events: events.clone(), state: Some(Box::new(state)) };
        while let Ok(msg) = commands.recv() {
            let state = courier.state.as_mut().expect("state is present until Finish");
            match msg {
                WorkerMsg::Prepare { observations, forgets, queries, reply, ctx } => {
                    let _span = lpvs_obs::span_in!(
                        ctx, "runtime.prepare",
                        "shard" => shard,
                        "observations" => observations.len(),
                        "forgets" => forgets.len()
                    );
                    ring.push(
                        FlightKind::BankOp,
                        "prepare",
                        observations.len() as f64,
                        forgets.len() as f64,
                    );
                    for (d, ratio) in observations {
                        state.bank.observe_or_forget(d, ratio);
                    }
                    for (d, stale) in forgets {
                        state.bank.forget(d, stale);
                    }
                    let posteriors = queries.iter().map(|&d| state.bank.posterior(d)).collect();
                    if reply.send(posteriors).is_err() {
                        return; // hub gone; courier ships the bank
                    }
                }
                WorkerMsg::Solve(job) => {
                    ring.push(
                        FlightKind::SpanBegin,
                        "solve",
                        job.slot as f64,
                        job.indices.len() as f64,
                    );
                    if let Some((rate, seed, repeat)) = stage_faults {
                        if job.attempt <= repeat && stage_fault_hits(seed, job.slot, shard, rate) {
                            // Simulated worker crash mid-slot: exit
                            // without solving. The courier ships the
                            // bank home; the supervisor respawns the
                            // shard and re-dispatches with attempt+1,
                            // which dies again while attempt <= repeat.
                            // The last ring entry is the solve begin
                            // with no matching end — exactly what a
                            // blackbox should show after a crash.
                            ring.push(
                                FlightKind::Death,
                                "stage_fault",
                                job.slot as f64,
                                job.attempt as f64,
                            );
                            return;
                        }
                    }
                    let slot = job.slot;
                    let schedule = solve_slice(&scheduler, shard, &job);
                    // Release the shared buffer before announcing, so
                    // the hub's handle is unique once all shards report.
                    drop(job);
                    ring.push(
                        FlightKind::SpanEnd,
                        "solve",
                        slot as f64,
                        if schedule.is_some() { 1.0 } else { 0.0 },
                    );
                    let event =
                        WorkerEvent::Solved { shard, slot, schedule: schedule.map(Box::new) };
                    if events.send(event).is_err() {
                        return;
                    }
                }
                WorkerMsg::Checkpoint { slot } => {
                    let bank = lpvs_bayes::codec::bank_to_bytes(&state.bank);
                    ring.push(FlightKind::CheckpointSeal, "seal", slot as f64, bank.len() as f64);
                    if events.send(WorkerEvent::Checkpointed { shard, slot, bank }).is_err() {
                        return;
                    }
                }
                WorkerMsg::MigrateOut { device, reply } => {
                    let est = state
                        .bank
                        .take(device)
                        .expect("migration routed through the ownership map");
                    ring.push(FlightKind::Migrate, "out", device as f64, 0.0);
                    if reply.send(est).is_err() {
                        return;
                    }
                }
                WorkerMsg::MigrateIn { device, estimator } => {
                    ring.push(FlightKind::Migrate, "in", device as f64, 0.0);
                    state.bank.insert(device, estimator);
                }
                WorkerMsg::Finish => {
                    let state = courier.state.take().expect("state present at Finish");
                    let _ = events.send(WorkerEvent::Finished { state });
                    return;
                }
            }
        }
        // Command channel disconnected (hub dropped early): the courier
        // ships the bank on the way out.
    })
}

/// Runs the resilient scheduler on one shard's slice. A solver panic is
/// contained here — the shard reports `None` (→ passthrough) and the
/// worker stays up, mirroring the scoped-thread fleet path where a dead
/// shard thread degrades the same way.
fn solve_slice(scheduler: &LpvsScheduler, shard: usize, job: &SolveJob) -> Option<Schedule> {
    // Parented on the hub's slot span via the shipped context, so the
    // solve shows up under its slot's trace instead of as an orphan
    // root on the worker thread.
    let mut span = lpvs_obs::span_in!(
        job.ctx, "runtime.solve",
        "shard" => shard, "slot" => job.slot, "devices" => job.indices.len()
    );
    let started = std::time::Instant::now();
    let problem = job.gathered.fleet.subproblem(
        &job.indices,
        job.compute_capacity,
        job.storage_capacity_gb,
        job.gathered.lambda,
        &job.gathered.curve,
    );
    let schedule = catch_unwind(AssertUnwindSafe(|| {
        scheduler.schedule_resilient(&problem, job.warm.as_deref(), &job.gathered.budget)
    }))
    .ok();
    span.record("ok", if schedule.is_some() { 1.0 } else { 0.0 });
    if lpvs_obs::enabled() {
        lpvs_obs::observe_labeled(
            "runtime_stage_seconds",
            &[("stage", "solve"), ("shard", &shard.to_string())],
            started.elapsed().as_secs_f64(),
        );
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_faults_are_deterministic_and_rate_shaped() {
        for slot in 0..64 {
            for shard in 0..4 {
                assert_eq!(
                    stage_fault_hits(7, slot, shard, 0.3),
                    stage_fault_hits(7, slot, shard, 0.3)
                );
                assert!(!stage_fault_hits(7, slot, shard, 0.0));
                assert!(stage_fault_hits(7, slot, shard, 1.0));
            }
        }
        let hits = (0..1000)
            .filter(|&slot| stage_fault_hits(3, slot, 0, 0.1))
            .count();
        assert!((50..200).contains(&hits), "10% rate produced {hits}/1000 hits");
    }
}
